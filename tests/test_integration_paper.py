"""End-to-end walkthrough of every example in the paper, in order.

Covers: the JDBC 2.0 features section, Part 0 (embedded SQL, typed
iterators, connection contexts, profiles, customization, binary
portability), Part 1 (install_jar→install_par, region/correct_states,
best2 OUT parameters, ranked_emps result sets, privileges, error
handling, paths, deployment descriptors), and Part 2 (Address types,
``>>`` access, substitutability, update of attributes).
"""

import decimal
import importlib
import os
import sys

import pytest

from repro import errors
from repro import DriverManager
from repro import Database
from repro.profiles.customizer import customize_pjar
from repro.profiles.pjar import unpack_pjar
from repro import ConnectionContext
from repro.sqltypes import typecodes
from repro.translator import TranslationOptions, Translator

from tests import paper_assets

D = decimal.Decimal


class TestPart1Walkthrough:
    def test_region_function_matches_reference(self, payroll):
        result = payroll.execute(
            "select name, state, region_of(state) from emps"
        )
        for name, state, region in result.rows:
            assert region == paper_assets.region_of(state.strip()), name

    def test_paper_select_with_function_predicate(self, payroll):
        # "select name, region_of(state) as region from emps
        #  where region_of(state) = 3"
        result = payroll.execute(
            "select name, region_of(state) as region from emps "
            "where region_of(state) = 3 order by name"
        )
        assert result.rows == [
            ["Alice", 3], ["Carol", 3], ["Hank", 3],
        ]
        assert result.column_names() == ["name", "region"]

    def test_paper_call_correct_states(self, payroll):
        payroll.execute("insert into emps values ('Old', 'E9', 'CAL', 1)")
        payroll.execute("call correct_states ('CAL', 'CA')")
        states = {
            r[0].strip()
            for r in payroll.execute("select state from emps").rows
        }
        assert "CAL" not in states

    def test_grants_from_paper(self, payroll, db):
        # "grant usage on routines1_jar to Smith"
        payroll.execute("grant usage on routines_par to smith")
        # "grant execute on correct_states to Smith"
        payroll.execute("grant execute on correct_states to smith")
        smith = db.create_session(user="smith", autocommit=True)
        smith.execute("call correct_states('TX', 'CA')")


class TestPart1CallableStatements:
    def test_best2_invocation_matches_paper(self, payroll, db):
        conn = DriverManager.get_connection("pydbc:standard:x",
                                            database=db)
        stmt = conn.prepare_call("{call best2(?,?,?,?,?,?,?,?,?)}")
        stmt.register_out_parameter(1, typecodes.VARCHAR)
        stmt.register_out_parameter(2, typecodes.VARCHAR)
        stmt.register_out_parameter(3, typecodes.INTEGER)
        stmt.register_out_parameter(4, typecodes.DECIMAL)
        stmt.register_out_parameter(5, typecodes.VARCHAR)
        stmt.register_out_parameter(6, typecodes.VARCHAR)
        stmt.register_out_parameter(7, typecodes.INTEGER)
        stmt.register_out_parameter(8, typecodes.DECIMAL)
        stmt.set_int(9, 3)
        stmt.execute_update()
        # Region > 3 means region 4 (unmapped states) with sales: none
        # except Frank (NULL, excluded) -> "****" sentinel per the paper.
        assert stmt.get_string(1) == "****"

    def test_ranked_emps_loop_matches_paper(self, payroll, db):
        conn = DriverManager.get_connection("pydbc:standard:x",
                                            database=db)
        stmt = conn.prepare_call("{call ranked_emps(?)}")
        stmt.set_int(1, 1)
        rs_available = stmt.execute()
        assert rs_available
        rs = stmt.get_result_set()
        printed = []
        while rs.next():
            printed.append(
                (rs.get_string(1), rs.get_int(2), rs.get_decimal(3))
            )
        # All employees with region > 1 and non-null sales by sales desc.
        expected_names = ["Dan", "Grace", "Alice", "Hank", "Carol"]
        assert [p[0] for p in printed] == expected_names
        assert printed[0][2] == D("200.00")


class TestPart2Walkthrough:
    @pytest.fixture
    def bobs_table(self, address_types):
        session = address_types
        session.execute(paper_assets.PEOPLE_WITH_ADDRESSES_DDL)
        session.execute(
            "insert into emps_addr values('Bob Smith',"
            " new addr('432 Elm Street', '95123'),"
            " new addr_2_line('PO Box 99', 'attn: Bob Smith',"
            " '95123-0099'))"
        )
        return session

    def test_paper_select_and_update_sequence(self, bobs_table):
        session = bobs_table
        # select with >> in projection and predicate
        rows = session.execute(
            "select name, home_addr>>zip_attr, mailing_addr>>zip_attr "
            "from emps_addr "
            "where home_addr>>zip_attr <> mailing_addr>>zip_attr"
        ).rows
        assert len(rows) == 1
        # methods and comparison
        rows = session.execute(
            "select name from emps_addr "
            "where home_addr <> mailing_addr"
        ).rows
        assert rows == [["Bob Smith"]]
        # update one attribute
        session.execute(
            "update emps_addr set home_addr>>zip_attr = '99123' "
            "where name = 'Bob Smith'"
        )
        assert session.execute(
            "select home_addr>>zip_attr from emps_addr"
        ).rows[0][0].strip() == "99123"
        # normal substitutability
        session.execute(
            "update emps_addr set home_addr = mailing_addr "
            "where home_addr is not null"
        )
        assert "Line2=" in session.execute(
            "select home_addr>>to_string() from emps_addr"
        ).rows[0][0]

    def test_usage_grants_from_paper(self, address_types):
        address_types.execute("grant usage on datatype addr to public")
        address_types.execute(
            "grant usage on datatype addr_2_line to admin"
        )

    def test_get_udts_metadata(self, address_types, db):
        conn = DriverManager.get_connection("pydbc:standard:x",
                                            database=db)
        types = [typecodes.JAVA_OBJECT]
        rs = conn.get_meta_data().get_udts(
            "catalog-name", "schema-name", "%", types
        )
        names = {r.get_string("type_name") for r in rs}
        assert names == {"addr", "addr_2_line"}


PART0_PROGRAM = """
#sql iterator ByPos (str, int);
#sql public iterator ByName (int year, str name);
#sql context PeopleCtx;

def fill(ctx, rows):
    for n, y in rows:
        #sql [ctx] { INSERT INTO people VALUES (:n, :y) };
        pass

def positional(ctx):
    out = []
    positer: ByPos
    #sql [ctx] positer = { SELECT name, year FROM people };
    name = None
    year = 0
    while True:
        #sql { FETCH :positer INTO :name, :year };
        if positer.endfetch():
            break
        out.append((name, year))
    positer.close()
    return out

def named(ctx):
    out = []
    namiter: ByName
    #sql [ctx] namiter = { SELECT name, year FROM people };
    while namiter.next():
        out.append((namiter.name(), namiter.year()))
    namiter.close()
    return out
"""


class TestPart0Walkthrough:
    def make_exemplar(self, name="part0_db", dialect="standard"):
        database = Database(name=name, dialect=dialect)
        session = database.create_session(autocommit=True)
        if dialect == "standard":
            ddl = "create table people (name varchar(50), year integer)"
        else:
            ddl = "create table people (name varchar(50), year integer)"
        session.execute(ddl)
        return database, session

    def test_full_pipeline_translate_package_customize_run(
        self, tmp_path
    ):
        exemplar, _session = self.make_exemplar()
        source_path = tmp_path / "peopleapp.psqlj"
        source_path.write_text(PART0_PROGRAM)

        # Translation phase (with online checking) + packaging.
        translator = Translator(TranslationOptions(exemplar=exemplar))
        result = translator.translate_file(
            str(source_path), output_dir=str(tmp_path / "build"),
            package=True,
        )
        assert result.pjar_path

        # Customization phase: one binary, three vendors.
        customize_pjar(result.pjar_path, ["standard", "acme", "zenith"])

        # Installation phase: deploy and import the binary once.
        deploy_dir = tmp_path / "deploy"
        unpack_pjar(result.pjar_path, str(deploy_dir))
        sys.path.insert(0, str(deploy_dir))
        try:
            module = importlib.import_module("peopleapp")
            module = importlib.reload(module)
        finally:
            sys.path.remove(str(deploy_dir))

        # Run against all three dialect engines — binary portability.
        outputs = {}
        for dialect in ("standard", "acme", "zenith"):
            database, session = self.make_exemplar(
                name=f"deploy_{dialect}", dialect=dialect
            )
            ctx = module.PeopleCtx(database)
            module.fill(ctx, [("Ann", 1990), ("Ben", 1995)])
            outputs[dialect] = (
                module.positional(ctx), module.named(ctx)
            )
        assert outputs["standard"] == outputs["acme"] == \
            outputs["zenith"]
        assert outputs["standard"][0] == [("Ann", 1990), ("Ben", 1995)]
        assert outputs["standard"][1] == [("Ann", 1990), ("Ben", 1995)]

    def test_default_context(self, tmp_path):
        exemplar, session = self.make_exemplar(name="default_ctx_db")
        session.execute("insert into people values ('Zed', 2001)")
        source = (
            "#sql iterator OneCol (str);\n"
            "def read():\n"
            "    out = []\n"
            "    it: OneCol\n"
            "    #sql it = { SELECT name FROM people };\n"
            "    row = None\n"
            "    while True:\n"
            "        #sql { FETCH :it INTO :row };\n"
            "        if it.endfetch():\n"
            "            break\n"
            "        out.append(row)\n"
            "    return out\n"
        )
        translator = Translator(TranslationOptions(exemplar=exemplar))
        result = translator.translate_source(source, "defaultctx_mod")
        module_path = tmp_path / "defaultctx_mod.py"
        module_path.write_text(result.python_source)
        from repro.profiles.serialization import save_profile

        for profile in result.profiles:
            save_profile(profile, str(tmp_path))
        ConnectionContext.set_default_context(
            ConnectionContext(exemplar)
        )
        sys.path.insert(0, str(tmp_path))
        try:
            module = importlib.import_module("defaultctx_mod")
            module = importlib.reload(module)
        finally:
            sys.path.remove(str(tmp_path))
        assert module.read() == ["Zed"]


class TestSqljMoreConciseThanJdbc:
    """The paper's side-by-side INSERT example (slide 7)."""

    SQLJ_VERSION = (
        "def insert(n):\n"
        "    #sql { INSERT INTO emp VALUES (:n) };\n"
        "    pass\n"
    )

    def jdbc_version(self, conn, n):
        stmt = conn.prepare_statement("INSERT INTO emp VALUES (?)")
        stmt.set_int(1, n)
        stmt.execute()
        stmt.close()

    def test_both_produce_the_same_rows(self, tmp_path):
        database = Database(name="concise")
        session = database.create_session(autocommit=True)
        session.execute("create table emp (n integer)")

        translator = Translator(TranslationOptions(exemplar=database))
        result = translator.translate_source(
            self.SQLJ_VERSION, "concise_mod"
        )
        module_path = tmp_path / "concise_mod.py"
        module_path.write_text(result.python_source)
        from repro.profiles.serialization import save_profile

        for profile in result.profiles:
            save_profile(profile, str(tmp_path))
        ConnectionContext.set_default_context(
            ConnectionContext(database)
        )
        sys.path.insert(0, str(tmp_path))
        try:
            module = importlib.import_module("concise_mod")
            module = importlib.reload(module)
        finally:
            sys.path.remove(str(tmp_path))
        module.insert(1)

        conn = DriverManager.get_connection("pydbc:standard:x",
                                            database=database)
        self.jdbc_version(conn, 2)
        assert session.execute(
            "select n from emp order by n"
        ).rows == [[1], [2]]

    def test_sqlj_source_is_shorter(self):
        sqlj_statements = 1  # one #sql clause
        jdbc_statements = 4  # prepare, set, execute, close
        assert sqlj_statements < jdbc_statements
