"""Transaction and durability primitives.

The MVCC core — row versions, snapshots, the transaction manager with
its commit-sequence counter — lives in :mod:`repro.engine.mvcc`; the
undo-log implementation next to the row heaps in
:mod:`repro.engine.storage`, the engine's reader-writer lock in
:mod:`repro.engine.locks`, and the redo half — write-ahead log,
group commit, checkpointing and crash recovery — in
:mod:`repro.engine.wal` and :mod:`repro.engine.durability`; this module
re-exports them under the names the architecture documentation uses.
"""

from repro.engine.durability import DurabilityManager, open_database
from repro.engine.locks import ReadWriteLock
from repro.engine.mvcc import (
    MvccTransaction,
    RowVersion,
    TransactionManager,
    WriteConflict,
)
from repro.engine.storage import RowStore, TransactionLog
from repro.engine.wal import WalRecord, WriteAheadLog

__all__ = [
    "TransactionLog",
    "RowStore",
    "RowVersion",
    "MvccTransaction",
    "TransactionManager",
    "WriteConflict",
    "ReadWriteLock",
    "WriteAheadLog",
    "WalRecord",
    "DurabilityManager",
    "open_database",
]
