"""Process-wide counters and histograms.

The registry is the measurement substrate the ROADMAP's performance work
builds on: every layer of the pipeline (engine, dbapi, SQLJ runtime,
procedures) increments named counters as it executes, and
``repro.observability.snapshot()`` returns one consolidated view.

Counters are always on — a disabled tracer silences *span* output, but
counting stays active because a dict lookup plus an integer add is
negligible next to parsing or executing a statement.  Registry mutation
(creating a counter the first time a name is seen) is guarded by a lock;
the hot increment path is lock-free and relies on the GIL for
consistency, which is the standard CPython trade-off for metrics that
tolerate rare lost updates under free-threading.

Well-known names used across the codebase:

==============================  ============================================
name                            meaning
==============================  ============================================
``statements.<kind>``           statements executed, by AST node kind
``rows.returned``               rows materialised for rowset results
``rows.scanned``                rows read by SeqScan from base tables
``rows.fetched``                rows pulled through SQLJ ``FETCH``
``sqlj.clauses``                profile entries executed (``#sql`` clauses)
``dbapi.executions``            Statement / PreparedStatement executions
``procedures.calls``            external procedure invocations
``functions.calls``             external function invocations
``profile.statement_cache.*``   RTStatement cache ``hits`` / ``misses``
``errors.<sqlstate>``           SQLExceptions raised, by SQLSTATE
``statement.seconds``           histogram of per-statement wall time
==============================  ============================================
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "increment",
    "observe",
    "snapshot",
    "reset",
]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount


class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean).

    Full bucketed histograms are overkill for an in-process engine; the
    four running aggregates answer the questions the benchmarks ask
    (how many, how much in total, best and worst case).
    """

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named counters and histograms, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter())
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(name, Histogram())
        return histogram

    # ------------------------------------------------------------------
    # hot-path convenience
    # ------------------------------------------------------------------
    def increment(self, name: str, amount: int = 1) -> None:
        self.counter(name).increment(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # ------------------------------------------------------------------
    # inspection / lifecycle
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Point-in-time copy: plain dicts, safe to mutate or serialise."""
        with self._lock:
            counters = {
                name: counter.value
                for name, counter in self._counters.items()
            }
            histograms = {
                name: histogram.summary()
                for name, histogram in self._histograms.items()
            }
        return {"counters": counters, "histograms": histograms}

    def reset(self) -> None:
        """Zero all recorded values (tests and benchmark reruns).

        Resets in place rather than dropping the objects: hot paths
        cache :class:`Counter` instances at import time, and those
        cached handles must keep pointing at live registry entries.
        """
        with self._lock:
            for counter in self._counters.values():
                counter.value = 0
            for histogram in self._histograms.values():
                histogram.count = 0
                histogram.total = 0.0
                histogram.minimum = None
                histogram.maximum = None


#: The process-wide registry every layer reports into.
registry = MetricsRegistry()


def increment(name: str, amount: int = 1) -> None:
    registry.increment(name, amount)


def observe(name: str, value: float) -> None:
    registry.observe(name, value)


def snapshot() -> Dict[str, Any]:
    return registry.snapshot()


def reset() -> None:
    registry.reset()
