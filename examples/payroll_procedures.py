"""SQLJ Part 1: Python functions as SQL stored procedures and functions.

Reproduces the paper's complete Part 1 walkthrough: the ``emps`` table,
the Routines1/2/3 classes packaged into an archive, ``sqlj.install_par``
(the paper's ``install_jar``), CREATE FUNCTION / PROCEDURE with EXTERNAL
NAME, invocation from queries, CALL with OUT parameters through a
CallableStatement, and a dynamic result set.

Run:  python examples/payroll_procedures.py
"""

import os
import tempfile

from repro import DriverManager
from repro import Database
from repro.procedures import build_par
from repro.sqltypes import typecodes

ROUTINES1 = '''
"""Routines1: region (no SQL) and correct_states (SQL update)."""
from repro import DriverManager


def region(s):
    if s in ("MN", "VT", "NH"):
        return 1
    if s in ("FL", "GA", "AL"):
        return 2
    if s in ("CA", "AZ", "NV"):
        return 3
    return 4


def correct_states(old_spelling, new_spelling):
    conn = DriverManager.get_connection("JDBC:DEFAULT:CONNECTION")
    stmt = conn.prepare_statement(
        "UPDATE emps SET state = ? WHERE state = ?")
    stmt.set_string(1, new_spelling)
    stmt.set_string(2, old_spelling)
    stmt.execute_update()
'''

ROUTINES2 = '''
"""Routines2: best_two_emps with OUT-parameter containers."""
from repro import DriverManager


def best_two_emps(n1, id1, r1, s1, n2, id2, r2, s2, region_parm):
    conn = DriverManager.get_connection("DBAPI:DEFAULT:CONNECTION")
    stmt = conn.prepare_statement(
        "SELECT name, id, region_of(state) as region, sales FROM emps "
        "WHERE region_of(state) > ? AND sales IS NOT NULL "
        "ORDER BY sales DESC")
    stmt.set_int(1, region_parm)
    r = stmt.execute_query()
    if r.next():
        n1[0] = r.get_string("name")
        id1[0] = r.get_string("id")
        r1[0] = r.get_int("region")
        s1[0] = r.get_decimal("sales")
    else:
        n1[0] = "****"
        return
    if r.next():
        n2[0] = r.get_string("name")
        id2[0] = r.get_string("id")
        r2[0] = r.get_int("region")
        s2[0] = r.get_decimal("sales")
    else:
        n2[0] = "****"
'''

ROUTINES3 = '''
"""Routines3: ordered_emps returning a dynamic result set."""
from repro import DriverManager


def ordered_emps(region_parm, rs):
    conn = DriverManager.get_connection("DBAPI:DEFAULT:CONNECTION")
    stmt = conn.prepare_statement(
        "SELECT name, region_of(state) as region, sales FROM emps "
        "WHERE region_of(state) > ? AND sales IS NOT NULL "
        "ORDER BY sales DESC")
    stmt.set_int(1, region_parm)
    rs[0] = stmt.execute_query()
'''


def main():
    database = Database(name="payroll")
    session = database.create_session(autocommit=True)

    # The paper's example table, with a misspelled state to correct.
    session.execute(
        "create table emps (name varchar(50), id char(5), "
        "state char(20), sales decimal(6,2))"
    )
    for row in [
        "('Alice', 'E1', 'CA', 100.50)",
        "('Bob', 'E2', 'MN', 50.25)",
        "('Carol', 'E3', 'CAL', 75.00)",  # misspelled CA
        "('Dan', 'E4', 'FL', 200.00)",
        "('Eve', 'E5', 'VT', 10.00)",
    ]:
        session.execute(f"insert into emps values {row}")

    # Package and install the routines archive.
    with tempfile.TemporaryDirectory() as workdir:
        par_path = build_par(
            os.path.join(workdir, "routines1.par"),
            {
                "routines1": ROUTINES1,
                "routines2": ROUTINES2,
                "routines3": ROUTINES3,
            },
        )
        session.execute(
            f"call sqlj.install_par('file:{par_path}', 'routines1_par')"
        )
    print("installed archive 'routines1_par'")

    # SQL names for the Python callables (paper syntax).
    session.execute(
        "create function region_of(state char(20)) returns integer "
        "no sql external name 'routines1_par:routines1.region' "
        "language python parameter style python"
    )
    session.execute(
        "create procedure correct_states(old char(20), new char(20)) "
        "modifies sql data "
        "external name 'routines1_par:routines1.correct_states' "
        "language python parameter style python"
    )
    session.execute(
        "create procedure best2 ("
        "out n1 varchar(50), out id1 varchar(5), out r1 integer, "
        "out s1 decimal(6,2), out n2 varchar(50), out id2 varchar(5), "
        "out r2 integer, out s2 decimal(6,2), region integer) "
        "reads sql data "
        "external name 'routines1_par:routines2.best_two_emps' "
        "language python parameter style python"
    )
    session.execute(
        "create procedure ranked_emps (region integer) "
        "dynamic result sets 1 reads sql data "
        "external name 'routines1_par:routines3.ordered_emps' "
        "language python parameter style python"
    )

    # Invoking: functions in queries, procedures via CALL.
    print("\nemployees in region 3:")
    result = session.execute(
        "select name, region_of(state) as region from emps "
        "where region_of(state) = 3"
    )
    for name, region in result.rows:
        print(f"  {name}: region {region}")

    session.execute("call correct_states ('CAL', 'CA')")
    print("\nafter correct_states('CAL', 'CA'):")
    for (name,) in session.execute(
        "select name from emps where state = 'CA' order by name"
    ).rows:
        print(f"  {name} is now in CA")

    # OUT parameters through a CallableStatement (paper's JDBC caller).
    conn = DriverManager.get_connection(
        "pydbc:standard:unused", database=database
    )
    stmt = conn.prepare_call("{call best2(?,?,?,?,?,?,?,?,?)}")
    for index, code in [
        (1, typecodes.VARCHAR), (2, typecodes.VARCHAR),
        (3, typecodes.INTEGER), (4, typecodes.DECIMAL),
        (5, typecodes.VARCHAR), (6, typecodes.VARCHAR),
        (7, typecodes.INTEGER), (8, typecodes.DECIMAL),
    ]:
        stmt.register_out_parameter(index, code)
    stmt.set_int(9, 2)
    stmt.execute()
    print("\nbest two employees in regions above 2:")
    print(f"  1. {stmt.get_string(1)} "
          f"(id {stmt.get_string(2).strip()}, "
          f"region {stmt.get_int(3)}, sales {stmt.get_decimal(4)})")
    print(f"  2. {stmt.get_string(5)} "
          f"(id {stmt.get_string(6).strip()}, "
          f"region {stmt.get_int(7)}, sales {stmt.get_decimal(8)})")

    # Dynamic result set (the paper's ranked_emps loop).
    stmt = conn.prepare_call("{call ranked_emps(?)}")
    stmt.set_int(1, 1)
    stmt.execute()
    rs = stmt.get_result_set()
    print("\nranked employees (regions above 1):")
    while rs.next():
        print(
            f"  Name = {rs.get_string(1)}  "
            f"Region = {rs.get_int(2)}  "
            f"Sales = {rs.get_decimal(3)}"
        )


if __name__ == "__main__":
    main()
