#!/usr/bin/env python
"""Compare the two most recent benchmark reports; fail on regressions.

``benchmarks/run_all.py`` writes ``BENCH_<tag>.json`` reports.  This
tool finds the two most recent reports with the same ``mode`` (a smoke
run is never compared against a full run), pairs their experiments by
name, and compares every *headline* metric — the higher-is-better
numbers each experiment leads with:

* ``speedup``
* anything matching ``*_per_second*``
* ``commits_per_fsync``
* anything matching ``*_hit_rate``
* anything matching ``*_scaling`` (e.g. the ``server_writes``
  multi-writer commit-throughput ratio)

A headline metric that drops by more than the threshold (default 25%)
fails the run with exit code 1 and a per-metric report.  Experiments or
metrics present in only one report are noted but never fail the diff —
adding a benchmark must not break CI retroactively.

With fewer than two same-mode reports the tool exits 0 with a note:
the first run on a fresh checkout has nothing to compare against.

Usage::

    python tools/bench_diff.py [--dir .] [--threshold 0.25]
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

#: Metric-name predicates that identify headline (higher-is-better)
#: numbers.  Raw second counts and row totals are deliberately not
#: compared: wall times swing with CI load, while the ratios the
#: benchmarks are *about* (speedups, throughput, hit rates) are the
#: contract.
def is_headline(name: str) -> bool:
    return (
        name == "speedup"
        or name == "commits_per_fsync"
        or "_per_second" in name
        or name.endswith("_hit_rate")
        or name.endswith("_scaling")
    )


def load_reports(directory: str) -> List[Tuple[str, Dict[str, Any]]]:
    """All parseable BENCH_*.json reports, most recent first."""
    paths = glob.glob(os.path.join(directory, "BENCH_*.json"))
    reports: List[Tuple[float, str, Dict[str, Any]]] = []
    for path in paths:
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"bench_diff: skipping unreadable {path}: {exc}")
            continue
        if not isinstance(data, dict):
            continue
        reports.append((os.path.getmtime(path), path, data))
    reports.sort(key=lambda item: item[0], reverse=True)
    return [(path, data) for _mtime, path, data in reports]


def pick_pair(
    reports: List[Tuple[str, Dict[str, Any]]]
) -> Optional[Tuple[Tuple[str, Dict[str, Any]], Tuple[str, Dict[str, Any]]]]:
    """The most recent report and the next report sharing its mode."""
    if not reports:
        return None
    current_path, current = reports[0]
    mode = current.get("mode")
    for path, data in reports[1:]:
        if data.get("mode") == mode:
            return (current_path, current), (path, data)
    return None


def experiments_by_name(data: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    result: Dict[str, Dict[str, Any]] = {}
    for experiment in data.get("experiments") or []:
        if isinstance(experiment, dict) and "experiment" in experiment:
            result[str(experiment["experiment"])] = experiment
    return result


def diff(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float,
) -> Tuple[List[str], List[str]]:
    """Compare headline metrics; returns (regressions, notes)."""
    regressions: List[str] = []
    notes: List[str] = []
    current_experiments = experiments_by_name(current)
    baseline_experiments = experiments_by_name(baseline)
    for name in sorted(set(current_experiments) | set(baseline_experiments)):
        if name not in current_experiments:
            notes.append(f"{name}: only in baseline (experiment removed?)")
            continue
        if name not in baseline_experiments:
            notes.append(f"{name}: new experiment, no baseline")
            continue
        now = current_experiments[name]
        then = baseline_experiments[name]
        for metric in sorted(set(now) | set(then)):
            if not is_headline(metric):
                continue
            new_value = now.get(metric)
            old_value = then.get(metric)
            if not isinstance(new_value, (int, float)) or not isinstance(
                old_value, (int, float)
            ):
                notes.append(f"{name}.{metric}: present in only one report")
                continue
            if old_value <= 0:
                continue
            change = (new_value - old_value) / old_value
            line = (
                f"{name}.{metric}: {old_value:.4g} -> {new_value:.4g} "
                f"({change:+.1%})"
            )
            if change < -threshold:
                regressions.append(line)
            else:
                notes.append(line)
    return regressions, notes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a headline benchmark metric regresses "
        "against the previous same-mode report."
    )
    parser.add_argument(
        "--dir", default=".",
        help="directory holding BENCH_*.json reports (default .)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="maximum tolerated fractional drop (default 0.25 = 25%%)",
    )
    options = parser.parse_args(argv)
    pair = pick_pair(load_reports(options.dir))
    if pair is None:
        print(
            "bench_diff: fewer than two comparable reports, nothing to "
            "diff (OK)"
        )
        return 0
    (current_path, current), (baseline_path, baseline) = pair
    print(f"bench_diff: {baseline_path} -> {current_path}")
    regressions, notes = diff(current, baseline, options.threshold)
    for note in notes:
        print(f"  {note}")
    if regressions:
        print(
            f"bench_diff: {len(regressions)} headline metric(s) regressed "
            f"more than {options.threshold:.0%}:"
        )
        for line in regressions:
            print(f"  REGRESSION {line}")
        return 1
    print("bench_diff: no headline regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
