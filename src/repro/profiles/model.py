"""Profile object model.

Mirrors the paper's "SQLJ profile objects" slide: ``Profile``,
``ProfileData``, ``EntryInfo``, ``TypeInfo`` (the runtime-side
``Customization``, ``ConnectedProfile`` and ``RTStatement`` live in
:mod:`repro.profiles.customization`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

__all__ = ["TypeInfo", "EntryInfo", "ProfileData", "Profile", "ROLES"]

#: Statement roles recorded in entries.
ROLES = ("QUERY", "UPDATE", "CALL", "DDL", "TXN")


@dataclass
class TypeInfo:
    """Type of one parameter or result column of a profile entry.

    ``sql_type`` is the SQL spelling from describe-time analysis (may be
    None when the translator checked offline only); ``python_type_name``
    is the host-side type name the program declared or that describe
    inferred; ``name`` is the column/parameter name when known.
    """

    name: Optional[str] = None
    sql_type: Optional[str] = None
    python_type_name: Optional[str] = None
    mode: str = "IN"  # IN / OUT / INOUT for CALL entries


@dataclass
class EntryInfo:
    """One ``#sql`` clause as recorded in a profile.

    ``sql`` is the canonical SQL text with host variables replaced by
    ``?`` markers, in host-variable order.  ``role`` classifies the
    statement; ``result_types`` describe the rowset for QUERY entries;
    ``iterator_class`` names the typed-iterator class a query entry binds
    to (if any); ``source_line`` points back into the ``.psqlj`` source.
    """

    index: int
    sql: str
    role: str
    param_types: List[TypeInfo] = field(default_factory=list)
    result_types: List[TypeInfo] = field(default_factory=list)
    iterator_class: Optional[str] = None
    source_line: int = 0

    def describe(self) -> str:
        """One-line human-readable summary."""
        return f"#{self.index} [{self.role}] {self.sql}"


@dataclass
class ProfileData:
    """The ordered entries of one profile."""

    entries: List[EntryInfo] = field(default_factory=list)

    def add(self, entry: EntryInfo) -> None:
        self.entries.append(entry)

    def get_entry(self, index: int) -> EntryInfo:
        return self.entries[index]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)


@dataclass
class Profile:
    """A translated program's SQL operations for one connection context.

    ``customizations`` is the ordered list a customizer utility has
    installed; at run time the first customization accepting the target
    connection wins (see
    :class:`repro.profiles.customization.ConnectedProfile`).
    """

    name: str
    context_type: str
    data: ProfileData = field(default_factory=ProfileData)
    customizations: List[Any] = field(default_factory=list)
    #: translator version stamp, for forward-compat checks on load
    version: str = "1.0"

    def add_customization(self, customization: Any) -> None:
        """Install (or replace same-keyed) customization."""
        key = getattr(customization, "key", None)
        if key is not None:
            self.customizations = [
                c for c in self.customizations
                if getattr(c, "key", None) != key
            ]
        self.customizations.append(customization)

    def entry_count(self) -> int:
        return len(self.data)

    def get_entry(self, index: int) -> EntryInfo:
        return self.data.get_entry(index)
