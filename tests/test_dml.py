"""Tests for INSERT / UPDATE / DELETE and transaction semantics."""

import decimal

import pytest

from repro import errors

D = decimal.Decimal


class TestInsert:
    def test_insert_returns_count(self, emps):
        result = emps.execute(
            "insert into emps values ('X', 'E9', 'CA', 1), "
            "('Y', 'EA', 'MN', 2)"
        )
        assert result.update_count == 2

    def test_insert_with_column_list(self, emps):
        emps.execute("insert into emps (name, id) values ('Z', 'EB')")
        row = emps.execute(
            "select name, state, sales from emps where id = 'EB'"
        ).rows[0]
        assert row == ["Z", None, None]

    def test_insert_coerces_types(self, emps):
        emps.execute("insert into emps values ('W', 'EC', 'CA', 7)")
        value = emps.execute(
            "select sales from emps where id = 'EC'"
        ).rows[0][0]
        assert value == D("7.00")
        assert isinstance(value, D)

    def test_insert_char_padding(self, emps):
        emps.execute("insert into emps values ('V', 'ED', 'CA', 1)")
        state = emps.execute(
            "select state from emps where id = 'ED'"
        ).rows[0][0]
        assert state == "CA".ljust(20)

    def test_insert_wrong_arity(self, emps):
        with pytest.raises(errors.SQLSyntaxError):
            emps.execute("insert into emps values ('only-name')")

    def test_insert_type_error(self, emps):
        with pytest.raises(errors.InvalidCastError):
            emps.execute(
                "insert into emps values ('A', 'E9', 'CA', 'lots')"
            )

    def test_insert_overflow(self, emps):
        with pytest.raises(errors.NumericOverflowError):
            emps.execute(
                "insert into emps values ('A', 'E9', 'CA', 99999.00)"
            )

    def test_insert_string_truncation(self, emps):
        with pytest.raises(errors.StringTruncationError):
            emps.execute(
                f"insert into emps values ('{'x' * 51}', 'E9', 'CA', 1)"
            )

    def test_insert_select(self, emps):
        emps.execute(
            "create table archive (name varchar(50), sales decimal(6,2))"
        )
        result = emps.execute(
            "insert into archive select name, sales from emps "
            "where sales > 100"
        )
        assert result.update_count == 3

    def test_insert_select_self_terminates(self, session):
        session.execute("create table t (a integer)")
        session.execute("insert into t values (1), (2)")
        session.execute("insert into t select a + 10 from t")
        assert len(session.execute("select * from t").rows) == 4

    def test_insert_with_parameters(self, emps):
        emps.execute(
            "insert into emps values (?, ?, ?, ?)",
            ["Paula", "EP", "NV", D("33.33")],
        )
        assert emps.execute(
            "select sales from emps where name = 'Paula'"
        ).rows == [[D("33.33")]]

    def test_not_null_enforced(self, session):
        session.execute(
            "create table strict_t (a integer not null, b integer)"
        )
        with pytest.raises(errors.NotNullViolationError):
            session.execute("insert into strict_t values (null, 1)")
        with pytest.raises(errors.NotNullViolationError):
            session.execute("insert into strict_t (b) values (1)")

    def test_default_values(self, session):
        session.execute(
            "create table with_default (a integer, b integer default 42)"
        )
        session.execute("insert into with_default (a) values (1)")
        assert session.execute(
            "select b from with_default"
        ).rows == [[42]]

    def test_duplicate_insert_column_rejected(self, session):
        session.execute("create table t2 (a integer)")
        with pytest.raises(errors.SQLSyntaxError):
            session.execute("insert into t2 (a, a) values (1, 2)")


class TestUpdate:
    def test_update_count(self, emps):
        result = emps.execute(
            "update emps set sales = 0 where sales is null"
        )
        assert result.update_count == 1

    def test_update_expression_uses_old_values(self, emps):
        emps.execute("update emps set sales = sales * 2")
        assert emps.execute(
            "select sales from emps where name = 'Alice'"
        ).rows == [[D("201.00")]]

    def test_update_multiple_assignments(self, emps):
        emps.execute(
            "update emps set state = 'WA', sales = 1 where name = 'Bob'"
        )
        row = emps.execute(
            "select state, sales from emps where name = 'Bob'"
        ).rows[0]
        assert row[0].strip() == "WA"
        assert row[1] == D("1.00")

    def test_update_swap_semantics(self, session):
        # All assignments read the pre-update row.
        session.execute("create table pair (a integer, b integer)")
        session.execute("insert into pair values (1, 2)")
        session.execute("update pair set a = b, b = a")
        assert session.execute("select a, b from pair").rows == [[2, 1]]

    def test_update_not_null_violation(self, session):
        session.execute("create table nn (a integer not null)")
        session.execute("insert into nn values (1)")
        with pytest.raises(errors.NotNullViolationError):
            session.execute("update nn set a = null")

    def test_update_no_match_returns_zero(self, emps):
        assert emps.execute(
            "update emps set sales = 1 where name = 'Nobody'"
        ).update_count == 0

    def test_update_with_parameters(self, emps):
        emps.execute(
            "update emps set sales = ? where name = ?", [D("9"), "Eve"]
        )
        assert emps.execute(
            "select sales from emps where name = 'Eve'"
        ).rows == [[D("9.00")]]


class TestDelete:
    def test_delete_with_predicate(self, emps):
        result = emps.execute("delete from emps where sales < 60")
        assert result.update_count == 2  # Bob and Eve
        assert len(emps.execute("select * from emps").rows) == 6

    def test_delete_all(self, emps):
        assert emps.execute("delete from emps").update_count == 8
        assert emps.execute("select count(*) from emps").rows == [[0]]

    def test_delete_null_predicate_rows_survive(self, emps):
        emps.execute("delete from emps where sales < 1000")
        # Frank's NULL sales comparison is unknown -> not deleted.
        assert [r[0] for r in emps.execute(
            "select name from emps").rows] == ["Frank"]


class TestTransactions:
    @pytest.fixture
    def txn_session(self, db):
        session = db.create_session(autocommit=False)
        session.execute("create table accounts (owner varchar(10), "
                        "balance integer)")
        session.execute("insert into accounts values ('a', 100), "
                        "('b', 50)")
        session.commit()
        return session

    def test_rollback_undoes_insert(self, txn_session):
        txn_session.execute("insert into accounts values ('c', 10)")
        txn_session.rollback()
        assert len(txn_session.execute(
            "select * from accounts").rows) == 2

    def test_rollback_undoes_update(self, txn_session):
        txn_session.execute(
            "update accounts set balance = 0 where owner = 'a'"
        )
        txn_session.rollback()
        assert txn_session.execute(
            "select balance from accounts where owner = 'a'"
        ).rows == [[100]]

    def test_rollback_undoes_delete(self, txn_session):
        txn_session.execute("delete from accounts")
        txn_session.rollback()
        assert len(txn_session.execute(
            "select * from accounts").rows) == 2

    def test_rollback_restores_row_order(self, txn_session):
        txn_session.execute(
            "delete from accounts where owner = 'a'"
        )
        txn_session.rollback()
        assert [r[0] for r in txn_session.execute(
            "select owner from accounts").rows] == ["a", "b"]

    def test_commit_makes_changes_permanent(self, txn_session):
        txn_session.execute("insert into accounts values ('c', 10)")
        txn_session.commit()
        txn_session.rollback()  # no-op
        assert len(txn_session.execute(
            "select * from accounts").rows) == 3

    def test_multi_statement_transaction_rolls_back_atomically(
        self, txn_session
    ):
        txn_session.execute(
            "update accounts set balance = balance - 10 "
            "where owner = 'a'"
        )
        txn_session.execute(
            "update accounts set balance = balance + 10 "
            "where owner = 'b'"
        )
        txn_session.rollback()
        result = txn_session.execute(
            "select balance from accounts order by owner"
        ).rows
        assert result == [[100], [50]]

    def test_sql_level_commit_and_rollback(self, txn_session):
        txn_session.execute("insert into accounts values ('c', 10)")
        txn_session.execute("commit")
        txn_session.execute("delete from accounts")
        txn_session.execute("rollback")
        assert len(txn_session.execute(
            "select * from accounts").rows) == 3

    def test_autocommit_session(self, db):
        session = db.create_session(autocommit=True)
        session.execute("create table t (a integer)")
        session.execute("insert into t values (1)")
        session.rollback()  # nothing pending
        assert session.execute("select * from t").rows == [[1]]

    def test_closed_session_rejects_statements(self, db):
        session = db.create_session()
        session.close()
        with pytest.raises(errors.ConnectionClosedError):
            session.execute("select 1")

    def test_close_rolls_back_open_transaction(self, db):
        writer = db.create_session(autocommit=False)
        writer.execute("create table t (a integer)")
        writer.execute("insert into t values (1)")
        writer.close()
        reader = db.create_session()
        assert reader.execute("select count(*) from t").rows == [[0]]


class TestDrop:
    def test_drop_table(self, emps):
        emps.execute("drop table emps")
        with pytest.raises(errors.UndefinedTableError):
            emps.execute("select * from emps")

    def test_drop_missing_table(self, session):
        with pytest.raises(errors.UndefinedTableError):
            session.execute("drop table ghost")

    def test_drop_view(self, emps):
        emps.execute("create view v as select 1")
        emps.execute("drop view v")
        with pytest.raises(errors.UndefinedTableError):
            emps.execute("select * from v")

    def test_duplicate_table_rejected(self, emps):
        with pytest.raises(errors.DuplicateObjectError):
            emps.execute("create table emps (a integer)")


class TestConstraints:
    @pytest.fixture
    def keyed(self, session):
        session.execute(
            "create table users (id integer primary key, "
            "email varchar(50) unique, name varchar(50))"
        )
        session.execute(
            "insert into users values (1, 'a@x.com', 'Ann')"
        )
        return session

    def test_primary_key_rejects_duplicates(self, keyed):
        with pytest.raises(errors.UniqueViolationError):
            keyed.execute("insert into users values (1, 'b@x.com', 'B')")

    def test_primary_key_implies_not_null(self, keyed):
        with pytest.raises(errors.NotNullViolationError):
            keyed.execute(
                "insert into users values (null, 'c@x.com', 'C')"
            )

    def test_unique_rejects_duplicates(self, keyed):
        with pytest.raises(errors.UniqueViolationError):
            keyed.execute("insert into users values (2, 'a@x.com', 'D')")

    def test_unique_allows_multiple_nulls(self, keyed):
        keyed.execute("insert into users values (2, null, 'E')")
        keyed.execute("insert into users values (3, null, 'F')")
        assert keyed.execute(
            "select count(*) from users"
        ).rows == [[3]]

    def test_duplicate_within_one_statement(self, keyed):
        with pytest.raises(errors.UniqueViolationError):
            keyed.execute(
                "insert into users values (2, 'x@x.com', 'X'), "
                "(2, 'y@x.com', 'Y')"
            )

    def test_update_cannot_create_duplicate(self, keyed):
        keyed.execute("insert into users values (2, 'b@x.com', 'B')")
        with pytest.raises(errors.UniqueViolationError):
            keyed.execute("update users set id = 1 where id = 2")

    def test_update_swap_of_unique_values_allowed(self, session):
        # Updating every row at once may permute unique values freely.
        session.execute("create table s (k integer unique)")
        session.execute("insert into s values (1), (2)")
        session.execute("update s set k = 3 - k")
        assert sorted(
            r[0] for r in session.execute("select k from s").rows
        ) == [1, 2]

    def test_update_to_same_value_allowed(self, keyed):
        keyed.execute("update users set id = 1 where id = 1")

    def test_multiple_primary_keys_rejected(self, session):
        with pytest.raises(errors.SQLSyntaxError):
            session.execute(
                "create table broken (a integer primary key, "
                "b integer primary key)"
            )

    def test_char_padding_in_unique_comparison(self, session):
        session.execute("create table cu (code char(5) unique)")
        session.execute("insert into cu values ('AB')")
        with pytest.raises(errors.UniqueViolationError):
            session.execute("insert into cu values ('AB   ')")

    def test_insert_select_checks_unique(self, keyed):
        keyed.execute("create table staging (id integer, email varchar(50), name varchar(50))")
        keyed.execute("insert into staging values (1, 'z@x.com', 'Z')")
        with pytest.raises(errors.UniqueViolationError):
            keyed.execute("insert into users select * from staging")


class TestAlterTable:
    def test_add_column_backfills_null(self, emps):
        emps.execute("alter table emps add column bonus decimal(6,2)")
        rows = emps.execute("select bonus from emps").rows
        assert all(r == [None] for r in rows)
        emps.execute(
            "update emps set bonus = 5 where name = 'Alice'"
        )
        assert emps.execute(
            "select bonus from emps where name = 'Alice'"
        ).rows[0][0] is not None

    def test_add_column_with_default_backfills(self, emps):
        emps.execute(
            "alter table emps add column region integer default 0"
        )
        assert emps.execute(
            "select count(*) from emps where region = 0"
        ).rows == [[8]]

    def test_add_not_null_requires_default_when_rows_exist(self, emps):
        with pytest.raises(errors.NotNullViolationError):
            emps.execute(
                "alter table emps add column must integer not null"
            )
        emps.execute(
            "alter table emps add column must integer not null default 1"
        )

    def test_add_duplicate_column_rejected(self, emps):
        with pytest.raises(errors.DuplicateObjectError):
            emps.execute("alter table emps add column name varchar(10)")

    def test_drop_column(self, emps):
        emps.execute("alter table emps drop column sales")
        result = emps.execute("select * from emps limit 1")
        assert result.column_names() == ["name", "id", "state"]
        with pytest.raises(errors.UndefinedColumnError):
            emps.execute("select sales from emps")

    def test_drop_only_column_rejected(self, session):
        session.execute("create table solo (a integer)")
        with pytest.raises(errors.CatalogError):
            session.execute("alter table solo drop column a")

    def test_add_unique_column_on_populated_table(self, emps):
        with pytest.raises(errors.UniqueViolationError):
            emps.execute(
                "alter table emps add column code integer "
                "unique default 7"
            )
        emps.execute("alter table emps add column code integer unique")

    def test_only_owner_alters(self, emps, db):
        smith = db.create_session(user="smith", autocommit=True)
        with pytest.raises(errors.PrivilegeError):
            smith.execute("alter table emps add column x integer")

    def test_explain_after_alter(self, emps):
        emps.execute("alter table emps add column extra integer")
        # Plans observe the new shape.
        rows = emps.execute("select extra from emps limit 1").rows
        assert rows == [[None]]


class TestSavepoints:
    @pytest.fixture
    def txn(self, db):
        session = db.create_session(autocommit=False)
        session.execute("create table t (a integer)")
        session.execute("insert into t values (1)")
        session.commit()
        return session

    def values(self, session):
        return sorted(
            r[0] for r in session.execute("select a from t").rows
        )

    def test_rollback_to_savepoint(self, txn):
        txn.execute("insert into t values (2)")
        txn.execute("savepoint sp1")
        txn.execute("insert into t values (3)")
        txn.execute("rollback to savepoint sp1")
        assert self.values(txn) == [1, 2]
        txn.commit()
        assert self.values(txn) == [1, 2]

    def test_rollback_to_keeps_transaction_open(self, txn):
        txn.execute("savepoint sp1")
        txn.execute("insert into t values (2)")
        txn.execute("rollback to savepoint sp1")
        txn.execute("insert into t values (9)")
        txn.rollback()
        assert self.values(txn) == [1]

    def test_nested_savepoints(self, txn):
        txn.execute("savepoint outer_sp")
        txn.execute("insert into t values (2)")
        txn.execute("savepoint inner_sp")
        txn.execute("insert into t values (3)")
        txn.execute("rollback to savepoint outer_sp")
        assert self.values(txn) == [1]
        # inner savepoint vanished with the rollback
        with pytest.raises(errors.TransactionError):
            txn.execute("rollback to savepoint inner_sp")

    def test_repeated_rollback_to_same_savepoint(self, txn):
        txn.execute("savepoint sp")
        txn.execute("insert into t values (2)")
        txn.execute("rollback to savepoint sp")
        txn.execute("insert into t values (3)")
        txn.execute("rollback to savepoint sp")
        assert self.values(txn) == [1]

    def test_release(self, txn):
        txn.execute("savepoint sp")
        txn.execute("insert into t values (2)")
        txn.execute("release savepoint sp")
        with pytest.raises(errors.TransactionError):
            txn.execute("rollback to savepoint sp")
        txn.rollback()  # full rollback still works
        assert self.values(txn) == [1]

    def test_unknown_savepoint(self, txn):
        with pytest.raises(errors.TransactionError):
            txn.execute("rollback to savepoint ghost")
        with pytest.raises(errors.TransactionError):
            txn.execute("release savepoint ghost")

    def test_commit_clears_savepoints(self, txn):
        txn.execute("savepoint sp")
        txn.commit()
        with pytest.raises(errors.TransactionError):
            txn.execute("rollback to savepoint sp")
