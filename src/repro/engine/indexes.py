"""Secondary index structures.

An :class:`Index` shadows one table with a hash map from normalised key
tuples to the row *versions* holding them, plus a sorted key list for
range probes.  Keys are built with
:func:`repro.sqltypes.values.sort_key`, so an index probe equates
exactly what ``=`` equates: ``1``, ``1.0`` and ``Decimal("1")`` share a
bucket, CHAR values ignore trailing pad spaces, and SQL NULL never
matches an equality probe (it compares UNKNOWN, not TRUE).

Buckets hold :class:`repro.engine.mvcc.RowVersion` objects (the same
instances stored in ``Table.versions``), matched by identity on
removal.  The index mirrors the heap *including* provisional and dead
versions — probes return candidates, and the executor filters them
through the reading transaction's snapshot exactly as a sequential
scan would.  :class:`repro.engine.storage.RowStore` DML keeps indexes
synchronised and registers symmetric undo actions, so a rolled-back
statement leaves its indexes exactly as they were; vacuum removes the
entries of reclaimed versions.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.sqltypes.values import sort_key

__all__ = ["Index"]

#: sort_key() output for SQL NULL; any key tuple containing it is kept
#: in the structure (so rebuilds stay cheap) but equality probes skip
#: NULL keys and range probes stop before them.
_NULL_KEY = sort_key(None)


class Index:
    """A secondary index over one or more columns of a table."""

    def __init__(self, name: str, table: Any,
                 column_names: List[str]) -> None:
        self.name = name
        self.table = table
        self.column_names = list(column_names)
        #: column positions in the owning table; refreshed by rebuild()
        #: because ALTER TABLE shifts positions.
        self.positions: List[int] = []
        self._buckets: Dict[tuple, List[Any]] = {}
        self._ordered: List[tuple] = []  # sorted bucket keys
        self.rebuild()

    # ------------------------------------------------------------------
    # key construction
    # ------------------------------------------------------------------
    def key_of_row(self, row: List[Any]) -> tuple:
        return tuple(sort_key(row[p]) for p in self.positions)

    @staticmethod
    def key_of_values(values: Tuple[Any, ...]) -> tuple:
        return tuple(sort_key(v) for v in values)

    @staticmethod
    def _has_null(key: tuple) -> bool:
        return any(part == _NULL_KEY for part in key)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        """Re-derive the whole structure from the table's heap.

        Used at CREATE INDEX time (versions may predate the index) and
        after ALTER TABLE ADD/DROP COLUMN (positions shift).  Every
        version is indexed, whatever its visibility — probes are
        snapshot-filtered downstream.
        """
        self.positions = [
            self.table.column_position(name)
            for name in self.column_names
        ]
        self._buckets = {}
        for version in self.table.versions:
            self._buckets.setdefault(
                self.key_of_row(version.row), []
            ).append(version)
        self._ordered = sorted(self._buckets)

    def add(self, version: Any) -> None:
        key = self.key_of_row(version.row)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [version]
            bisect.insort(self._ordered, key)
        else:
            bucket.append(version)

    def remove(self, version: Any) -> None:
        key = self.key_of_row(version.row)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        for position, candidate in enumerate(bucket):
            if candidate is version:
                del bucket[position]
                break
        if not bucket:
            del self._buckets[key]
            ordered_at = bisect.bisect_left(self._ordered, key)
            if ordered_at < len(self._ordered) and \
                    self._ordered[ordered_at] == key:
                del self._ordered[ordered_at]

    def covers_column(self, column_name: str) -> bool:
        return column_name in self.column_names

    def verify_against_heap(self) -> None:
        """Assert the index agrees exactly with the table heap.

        Used by crash recovery (:mod:`repro.engine.durability`) after
        replaying the write-ahead log: replay maintains indexes through
        the ordinary DML path, and this check proves it — every heap
        version present in its bucket (by identity), no phantom
        entries, matching cardinality.  Raises
        :class:`repro.errors.DataError` on any divergence.
        """
        from repro import errors

        entries = len(self)
        heap = len(self.table.versions)
        if entries != heap:
            raise errors.DataError(
                f"index {self.name!r} on {self.table.name!r} holds "
                f"{entries} entries for {heap} heap versions"
            )
        for version in self.table.versions:
            bucket = self._buckets.get(self.key_of_row(version.row), ())
            if not any(candidate is version for candidate in bucket):
                raise errors.DataError(
                    f"index {self.name!r} on {self.table.name!r} is "
                    f"missing a heap version "
                    f"(key {self.key_of_row(version.row)!r})"
                )

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    def lookup(self, values: Tuple[Any, ...]) -> Iterator[Any]:
        """Versions whose key columns equal ``values`` (SQL equality).

        Yields candidate :class:`RowVersion` objects across all
        snapshots; the caller filters for visibility.
        """
        key = self.key_of_values(values)
        if self._has_null(key):
            return iter(())  # NULL = anything is UNKNOWN
        return iter(self._buckets.get(key, ()))

    def range(self, lower: Optional[Any], upper: Optional[Any],
              lower_inclusive: bool = True,
              upper_inclusive: bool = True) -> Iterator[Any]:
        """Versions of a single-column index within [lower, upper].

        ``None`` bounds mean unbounded on that side; NULL-keyed entries
        are never yielded (no SQL comparison is TRUE for NULL).  Yields
        candidate versions; the caller filters for visibility.
        """
        lo = 0
        if lower is not None:
            probe = (sort_key(lower),)
            lo = (bisect.bisect_left(self._ordered, probe)
                  if lower_inclusive
                  else bisect.bisect_right(self._ordered, probe))
        hi = len(self._ordered)
        if upper is not None:
            probe = (sort_key(upper),)
            hi = (bisect.bisect_right(self._ordered, probe)
                  if upper_inclusive
                  else bisect.bisect_left(self._ordered, probe))
        for key in self._ordered[lo:hi]:
            if self._has_null(key):
                continue
            for version in self._buckets[key]:
                yield version

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cols = ", ".join(self.column_names)
        return (f"<Index {self.name} on {self.table.name}({cols}) "
                f"{len(self)} entries>")
