"""ANALYZE statistics: per-table row counts and per-column distributions.

``ANALYZE [table]`` walks the snapshot-visible rows of a table and
records, per column, the number of distinct values (NDV), the fraction
of NULLs, the min/max, and an equi-width histogram over numeric
columns.  The resulting :class:`TableStatistics` live in the catalog
(``Catalog.statistics``), survive checkpoints (they are pickled into the
``DatabaseImage``) and WAL replay (ANALYZE is WAL-logged and re-executed
on recovery), and feed the cost-based planner's selectivity estimates
(:mod:`repro.engine.planner`).

Everything here is deliberately plain data — dataclasses of ints,
floats, and lists — so statistics serialise through the checkpoint
pickle and render cleanly in the ``repro_stats.statistics`` view.
"""

from __future__ import annotations

import datetime
import decimal
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "ColumnStatistics",
    "TableStatistics",
    "collect_table_statistics",
    "DEFAULT_HISTOGRAM_BUCKETS",
]

#: Number of equi-width buckets collected for numeric columns.
DEFAULT_HISTOGRAM_BUCKETS = 32

#: Selectivity assumed for predicates we cannot estimate from data.
DEFAULT_SELECTIVITY = 1.0 / 3.0


def _numeric(value: Any) -> Optional[float]:
    """Project ``value`` onto the real line for histogram math.

    Returns ``None`` for values with no useful linear embedding
    (strings, composites); those columns keep NDV/null stats only.
    """
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, decimal.Decimal):
        return float(value)
    if isinstance(value, datetime.datetime):
        return value.timestamp()
    if isinstance(value, datetime.date):
        return float(value.toordinal())
    return None


@dataclass
class ColumnStatistics:
    """Distribution summary for one column."""

    name: str
    ndv: int = 0
    null_fraction: float = 0.0
    min_value: Any = None
    max_value: Any = None
    #: ``len(bounds) == len(counts) + 1``; ``None`` for non-numeric columns.
    histogram_bounds: Optional[List[float]] = None
    histogram_counts: Optional[List[int]] = None

    # -- selectivity estimates -----------------------------------------
    def eq_selectivity(self) -> float:
        """Fraction of rows expected to match ``col = <literal>``."""
        if self.ndv <= 0:
            return DEFAULT_SELECTIVITY
        return max((1.0 - self.null_fraction) / self.ndv, 1e-9)

    def range_selectivity(self, op: str, value: Any) -> float:
        """Fraction of rows expected to match ``col <op> <literal>``.

        Uses the equi-width histogram with linear interpolation inside
        the containing bucket; falls back to a min/max ratio, then to
        :data:`DEFAULT_SELECTIVITY`.
        """
        point = _numeric(value)
        if point is None:
            return DEFAULT_SELECTIVITY
        below = self._fraction_below(point)
        if below is None:
            return DEFAULT_SELECTIVITY
        non_null = 1.0 - self.null_fraction
        if op in ("<", "<="):
            fraction = below
        elif op in (">", ">="):
            fraction = 1.0 - below
        else:
            return DEFAULT_SELECTIVITY
        return min(max(fraction * non_null, 1e-9), 1.0)

    def _fraction_below(self, point: float) -> Optional[float]:
        bounds = self.histogram_bounds
        counts = self.histogram_counts
        if not bounds or not counts:
            lo = _numeric(self.min_value)
            hi = _numeric(self.max_value)
            if lo is None or hi is None:
                return None
            if hi <= lo:
                return 0.5
            return min(max((point - lo) / (hi - lo), 0.0), 1.0)
        total = sum(counts)
        if total <= 0:
            return None
        if point <= bounds[0]:
            return 0.0
        if point >= bounds[-1]:
            return 1.0
        running = 0.0
        for i, count in enumerate(counts):
            lo, hi = bounds[i], bounds[i + 1]
            if point < hi:
                width = hi - lo
                inside = (point - lo) / width if width > 0 else 0.5
                return (running + count * inside) / total
            running += count
        return 1.0


@dataclass
class TableStatistics:
    """ANALYZE output for one table."""

    table: str
    row_count: int = 0
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)
    #: ``Catalog.stats_version`` value assigned when these stats landed.
    version: int = 0
    #: MVCC transaction id whose snapshot ANALYZE read.
    analyzed_txn: int = 0

    def column(self, name: str) -> Optional[ColumnStatistics]:
        return self.columns.get(name)


def _build_histogram(
    points: List[float], buckets: int
) -> Tuple[Optional[List[float]], Optional[List[int]]]:
    if len(points) < 2:
        return None, None
    lo, hi = min(points), max(points)
    if hi <= lo:
        return None, None
    buckets = max(1, min(buckets, len(points)))
    width = (hi - lo) / buckets
    bounds = [lo + width * i for i in range(buckets)] + [hi]
    counts = [0] * buckets
    for point in points:
        index = int((point - lo) / width)
        if index >= buckets:
            index = buckets - 1
        counts[index] += 1
    return bounds, counts


def collect_table_statistics(
    table: Any,
    rows: List[List[Any]],
    *,
    buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
    version: int = 0,
    analyzed_txn: int = 0,
) -> TableStatistics:
    """Summarise ``rows`` (the snapshot-visible rows of ``table``)."""
    stats = TableStatistics(
        table=table.name,
        row_count=len(rows),
        version=version,
        analyzed_txn=analyzed_txn,
    )
    for position, column in enumerate(table.columns):
        values = [row[position] for row in rows]
        non_null = [value for value in values if value is not None]
        nulls = len(values) - len(non_null)
        col = ColumnStatistics(
            name=column.name,
            null_fraction=(nulls / len(values)) if values else 0.0,
        )
        try:
            col.ndv = len(set(non_null))
        except TypeError:  # unhashable values: count by repr
            col.ndv = len({repr(value) for value in non_null})
        if non_null:
            try:
                col.min_value = min(non_null)
                col.max_value = max(non_null)
            except TypeError:
                pass
            points = [
                point
                for point in (_numeric(value) for value in non_null)
                if point is not None
            ]
            if len(points) == len(non_null):
                col.histogram_bounds, col.histogram_counts = (
                    _build_histogram(points, buckets)
                )
        stats.columns[column.name] = col
    return stats
