"""SQL type system for PySQLJ.

Provides the descriptor objects used by the engine catalog, the dbapi
metadata layer, and the SQLJ translator's type checker, plus the
JDBC-2.0-style type codes the paper highlights (``JAVA_OBJECT`` — here
``PY_OBJECT`` — ``STRUCT``, ``BLOB``, ...).
"""

from repro.sqltypes import typecodes
from repro.sqltypes.core import (
    BigIntType,
    BlobType,
    BooleanType,
    CharType,
    ClobType,
    DateType,
    DecimalType,
    DoubleType,
    IntegerType,
    ObjectType,
    RealType,
    SmallIntType,
    TimestampType,
    TimeType,
    TypeDescriptor,
    VarCharType,
    parse_type,
    type_from_python_value,
)
from repro.sqltypes.values import (
    NULL,
    coerce,
    common_supertype,
    compare_values,
    is_null,
)

__all__ = [
    "typecodes",
    "TypeDescriptor",
    "CharType",
    "VarCharType",
    "ClobType",
    "BlobType",
    "SmallIntType",
    "IntegerType",
    "BigIntType",
    "DecimalType",
    "RealType",
    "DoubleType",
    "BooleanType",
    "DateType",
    "TimeType",
    "TimestampType",
    "ObjectType",
    "parse_type",
    "type_from_python_value",
    "NULL",
    "is_null",
    "coerce",
    "common_supertype",
    "compare_values",
]
