"""E6 — Part 1: "Convenience and performance comparable with SQL
routines"; procedures move logic to the data (paper slide 20).

Two workloads from the paper, each written twice:

* ``correct_states`` — one CALL that runs a single UPDATE inside the
  database vs a client that scans the rows and updates each misspelled
  one with an individual statement (the pre-stored-procedure style).
* ``region_of`` in a query — the external function evaluated inside the
  engine per row vs a client that pulls every row out and computes the
  region host-side.

Expected shape: the stored-procedure/UDF formulations win as the table
grows, because they avoid per-row client round trips; for tiny tables the
difference is negligible (the paper's "comparable performance").
"""

import time

import pytest

from benchmarks.common import (
    install_paper_routines,
    make_emps_db,
    report,
)
from repro import DriverManager


def build(rows):
    database, session = make_emps_db(rows)
    install_paper_routines(database, session)
    conn = DriverManager.get_connection(
        "pydbc:standard:x", database=database
    )
    return database, session, conn


def misspell_states(session, count):
    session.execute(
        "update emps set state = 'CAL' where id = ? and 1 = 1",
        ["E0000"],
    )
    # Misspell a deterministic subset.
    session.execute(
        "update emps set state = 'CAL' where sales < ?", [count / 100]
    )


def correct_via_procedure(session):
    session.execute("call correct_states('CAL', 'CA')")


def correct_via_client_loop(conn):
    """Row-at-a-time client correction (no stored procedure)."""
    rs = conn.create_statement().execute_query(
        "select id, state from emps"
    )
    update = conn.prepare_statement(
        "update emps set state = ? where id = ?"
    )
    fixed = 0
    while rs.next():
        if rs.get_string("state").strip() == "CAL":
            update.set_string(1, "CA")
            update.set_string(2, rs.get_string("id"))
            update.execute_update()
            fixed += 1
    return fixed


def regions_via_function(session):
    return session.execute(
        "select region_of(state) as region, count(*) from emps "
        "group by region_of(state) order by region"
    ).rows


def regions_via_client(conn):
    rs = conn.create_statement().execute_query("select state from emps")
    counts = {}
    while rs.next():
        state = rs.get_string(1).strip()
        if state in ("MN", "VT", "NH"):
            region = 1
        elif state in ("FL", "GA", "AL"):
            region = 2
        elif state in ("CA", "AZ", "NV"):
            region = 3
        else:
            region = 4
        counts[region] = counts.get(region, 0) + 1
    return [[region, counts[region]] for region in sorted(counts)]


class TestProcedureShape:
    def test_results_agree(self):
        _database, session, conn = build(300)
        assert regions_via_function(session) == regions_via_client(conn)

    def test_correct_states_equivalence(self):
        _database, session, conn = build(300)
        misspell_states(session, 300)
        before = session.execute(
            "select count(*) from emps where state = 'CAL'"
        ).rows[0][0]
        assert before > 0
        correct_via_procedure(session)
        after = session.execute(
            "select count(*) from emps where state = 'CAL'"
        ).rows[0][0]
        assert after == 0

    def test_procedure_wins_at_scale(self):
        rows = []
        for size in (100, 1000):
            _database, session, conn = build(size)

            misspell_states(session, size)
            start = time.perf_counter()
            correct_via_procedure(session)
            proc_time = time.perf_counter() - start

            misspell_states(session, size)
            start = time.perf_counter()
            correct_via_client_loop(conn)
            client_time = time.perf_counter() - start

            rows.append(
                (
                    size,
                    f"{proc_time * 1000:.2f}ms",
                    f"{client_time * 1000:.2f}ms",
                    f"{client_time / proc_time:.1f}x",
                )
            )
            assert proc_time < client_time
        report(
            "E6: correct_states — procedure vs client loop",
            rows,
            ("rows", "procedure", "client loop", "speedup"),
        )


@pytest.fixture(scope="module", params=[100, 1000])
def sized_engine(request):
    return request.param, build(request.param)


@pytest.mark.benchmark(group="e6-region")
def test_region_function_in_query(benchmark, sized_engine):
    size, (_db, session, _conn) = sized_engine
    result = benchmark(regions_via_function, session)
    assert sum(r[1] for r in result) == size


@pytest.mark.benchmark(group="e6-region")
def test_region_computed_client_side(benchmark, sized_engine):
    size, (_db, _session, conn) = sized_engine
    result = benchmark(regions_via_client, conn)
    assert sum(r[1] for r in result) == size


@pytest.mark.benchmark(group="e6-call-overhead")
def test_bare_call_overhead(benchmark, sized_engine):
    _size, (_db, session, _conn) = sized_engine
    # A CALL whose body updates nothing: isolates invocation cost.
    benchmark(session.execute, "call correct_states('ZZ', 'ZZ')")
