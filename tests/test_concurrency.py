"""Concurrency stress tests: locking, pooling, and fault injection.

These are the ISSUE-2 acceptance checks: a 16-thread mixed workload
with zero lost updates or torn reads, pool exhaustion surfacing as a
typed SQLSTATE timeout (never a hang), recycling of dead connections,
concurrent DDL vs DML, and deterministic fault replay.
"""

from __future__ import annotations

import threading

import pytest

from repro import errors
from repro.dbapi.driver import DriverManager
from repro.dbapi.pool import ConnectionPool
from repro import Database
from repro.observability import metrics as _metrics
from repro.testing import (
    FaultPlan,
    WorkloadGenerator,
    retry_serialization,
    run_concurrent,
)

N_THREADS = 16


@pytest.fixture
def pooled_db():
    db = Database(name="pooldb")
    admin = db.create_session(autocommit=True)
    yield db, admin
    admin.close()


class TestLostUpdates:
    def test_16_thread_counter_has_no_lost_updates(self, pooled_db):
        db, admin = pooled_db
        admin.execute("CREATE TABLE counter (n INTEGER)")
        admin.execute("INSERT INTO counter VALUES (0)")
        pool = ConnectionPool(db, max_size=8, timeout=30.0)
        increments = 25

        def bump(_thread_index):
            conn = pool.checkout(timeout=30.0)
            try:
                conn.session.execute("UPDATE counter SET n = n + 1")
            finally:
                conn.close()

        result = run_concurrent(
            N_THREADS, bump, repeat=increments
        ).raise_first()
        assert result.ok
        rows = admin.execute("SELECT n FROM counter").rows
        assert rows == [[N_THREADS * increments]]
        pool.close()

    def test_retry_helper_recovers_pinned_snapshot_conflicts(
        self, pooled_db
    ):
        """Explicit read-modify-write transactions pin their snapshot,
        so racing threads hit genuine 40001 serialization failures;
        :func:`repro.testing.retry_serialization` must absorb every one
        of them and still produce the exact serial count."""
        db, admin = pooled_db
        admin.execute("CREATE TABLE acct (id INTEGER, n INTEGER)")
        admin.execute("INSERT INTO acct VALUES (1, 0)")
        threads, increments = 8, 10

        def bump(_thread_index):
            session = db.create_session(autocommit=False)
            session.lock_timeout = 2.0
            try:
                for _ in range(increments):

                    def txn():
                        [[n]] = session.execute(
                            "SELECT n FROM acct WHERE id = 1"
                        ).rows
                        session.execute(
                            "UPDATE acct SET n = ? WHERE id = 1",
                            (n + 1,),
                        )
                        session.commit()

                    retry_serialization(
                        txn, attempts=200, on_failure=session.rollback
                    )
            finally:
                session.close()

        run_concurrent(threads, bump, timeout=120.0).raise_first()
        assert admin.execute("SELECT n FROM acct").rows == [
            [threads * increments]
        ]

    def test_concurrent_inserts_all_land(self, pooled_db):
        db, admin = pooled_db
        admin.execute("CREATE TABLE log (thread INTEGER, seq INTEGER)")
        pool = ConnectionPool(db, max_size=6, timeout=30.0)
        per_thread = 20

        def writer(i):
            for seq in range(per_thread):
                conn = pool.checkout(timeout=30.0)
                try:
                    conn.session.execute(
                        f"INSERT INTO log VALUES ({i}, {seq})"
                    )
                finally:
                    conn.close()

        run_concurrent(N_THREADS, writer).raise_first()
        rows = admin.execute("SELECT COUNT(*) FROM log").rows
        assert rows == [[N_THREADS * per_thread]]
        # Every (thread, seq) pair exactly once: no torn/duplicated writes.
        distinct = admin.execute(
            "SELECT COUNT(*) FROM log WHERE seq >= 0"
        ).rows
        assert distinct == [[N_THREADS * per_thread]]
        pool.close()


class TestUniqueUnderConcurrency:
    def test_duplicate_key_race_admits_exactly_one_row(self, pooled_db):
        """Unique check and heap append are one atomic step.

        All threads race to INSERT the same PRIMARY KEY value per
        round; without the check running under the table's mutation
        lock, two inserts could both scan before either appends and
        both commit a duplicate.  Exactly one row per key must land,
        every loser getting SQLSTATE 23505.
        """
        db, admin = pooled_db
        admin.execute(
            "CREATE TABLE reg (id INTEGER PRIMARY KEY, who INTEGER)"
        )
        rounds = 10
        wins = []
        wins_lock = threading.Lock()

        def contender(i):
            session = db.create_session(autocommit=True)
            try:
                for key in range(rounds):
                    try:
                        session.execute(
                            f"INSERT INTO reg VALUES ({key}, {i})"
                        )
                        with wins_lock:
                            wins.append(key)
                    except errors.UniqueViolationError as exc:
                        assert exc.sqlstate == "23505"
            finally:
                session.close()

        run_concurrent(N_THREADS, contender).raise_first()
        assert sorted(wins) == list(range(rounds))
        assert admin.execute("SELECT COUNT(*) FROM reg").rows == [[rounds]]

    def test_check_and_append_atomic_under_injected_delay(self, pooled_db):
        """Deterministic replay of the unique-check TOCTOU window.

        The ``storage.insert`` fault site fires before the heap append;
        injecting a delay there held both racing inserts between a
        *non-atomic* unique scan and their appends, letting both pass
        the check and commit a duplicate key.  With the check running
        under the table's mutation lock the delay is harmless: exactly
        one row commits, the other insert fails with 23505.
        """
        db, admin = pooled_db
        admin.execute("CREATE TABLE slot (id INTEGER PRIMARY KEY)")
        plan = FaultPlan(seed=7).inject(
            "storage.insert", delay=0.05, times=2
        )
        outcomes = []
        outcomes_lock = threading.Lock()

        def contender(_i):
            session = db.create_session(autocommit=True)
            try:
                try:
                    session.execute("INSERT INTO slot VALUES (1)")
                    result = "ok"
                except errors.UniqueViolationError:
                    result = "dup"
                with outcomes_lock:
                    outcomes.append(result)
            finally:
                session.close()

        with plan.armed():
            run_concurrent(2, contender).raise_first()
        assert sorted(outcomes) == ["dup", "ok"]
        assert admin.execute("SELECT COUNT(*) FROM slot").rows == [[1]]


class TestTornReads:
    def test_readers_never_observe_partial_statement(self, pooled_db):
        """A single-statement flip keeps SUM(balance) = 100 invariant.

        ``UPDATE accounts SET balance = 100 - balance`` mutates both
        rows inside one exclusive-lock statement; shared-lock readers
        must never observe one row flipped and the other not.
        """
        db, admin = pooled_db
        admin.execute("CREATE TABLE accounts (id INTEGER, balance INTEGER)")
        admin.execute("INSERT INTO accounts VALUES (1, 30)")
        admin.execute("INSERT INTO accounts VALUES (2, 70)")
        sums = []
        sums_lock = threading.Lock()

        def worker(i):
            session = db.create_session(autocommit=True)
            try:
                for _ in range(40):
                    if i % 2 == 0:
                        session.execute(
                            "UPDATE accounts SET balance = 100 - balance"
                        )
                    else:
                        rows = session.execute(
                            "SELECT SUM(balance) FROM accounts"
                        ).rows
                        with sums_lock:
                            sums.append(rows[0][0])
            finally:
                session.close()

        run_concurrent(N_THREADS, worker).raise_first()
        assert sums, "reader threads observed nothing"
        assert set(sums) == {100}


class TestPoolLimits:
    def test_exhaustion_times_out_with_sqlstate(self, pooled_db):
        db, _admin = pooled_db
        pool = ConnectionPool(db, max_size=2, timeout=0.05)
        held = [pool.checkout(), pool.checkout()]
        with pytest.raises(errors.PoolTimeoutError) as excinfo:
            pool.checkout(timeout=0.05)
        assert excinfo.value.sqlstate == "08004"
        for conn in held:
            conn.close()
        # Capacity is back after the holders return.
        pool.checkout().close()
        pool.close()

    def test_waiter_gets_connection_when_one_frees(self, pooled_db):
        db, _admin = pooled_db
        pool = ConnectionPool(db, max_size=1, timeout=10.0)
        first = pool.checkout()
        release = threading.Timer(0.05, first.close)
        release.start()
        try:
            second = pool.checkout(timeout=10.0)  # must not time out
            second.close()
        finally:
            release.cancel()
        pool.close()

    def test_dead_connection_is_recycled(self, pooled_db):
        db, _admin = pooled_db
        pool = ConnectionPool(db, max_size=2)
        recycled_before = _metrics.registry.counter("pool.recycled").value
        conn = pool.checkout()
        conn.session.close()  # the connection "dies" while checked out
        conn.close()  # health check on return discards it
        assert (
            _metrics.registry.counter("pool.recycled").value
            == recycled_before + 1
        )
        # The slot is free again and the replacement session works.
        fresh = pool.checkout()
        assert fresh.session.execute("SELECT 1").rows == [[1]]
        fresh.close()
        assert pool.stats()["in_use"] == 0
        pool.close()

    def test_returned_transaction_is_rolled_back(self, pooled_db):
        db, admin = pooled_db
        admin.execute("CREATE TABLE t (a INTEGER)")
        pool = ConnectionPool(db, max_size=1, autocommit=False)
        conn = pool.checkout()
        conn.session.execute("INSERT INTO t VALUES (1)")
        conn.close()  # uncommitted work must not leak to the next client
        reused = pool.checkout()
        reused.session.autocommit = True
        assert reused.session.execute(
            "SELECT COUNT(*) FROM t"
        ).rows == [[0]]
        reused.close()
        pool.close()


class TestPoolFaults:
    def test_checkout_fault_does_not_leak_slot(self, pooled_db):
        db, _admin = pooled_db
        pool = ConnectionPool(db, max_size=1, timeout=0.2)
        plan = FaultPlan(seed=3).inject(
            "pool.checkout",
            error=errors.ConnectionError_,
            times=1,
        )
        with plan.armed():
            with pytest.raises(errors.ConnectionError_):
                pool.checkout()
        assert plan.fired["pool.checkout"] == 1
        assert pool.stats()["in_use"] == 0
        # The single slot survived the injected failure.
        pool.checkout().close()
        pool.close()

    def test_checkin_pipe_can_kill_connection(self, pooled_db):
        db, _admin = pooled_db
        pool = ConnectionPool(db, max_size=2)

        def kill(session):
            session.close()
            return session

        plan = FaultPlan(seed=4).inject(
            "pool.checkin", corrupt=kill, times=1
        )
        recycled_before = _metrics.registry.counter("pool.recycled").value
        with plan.armed():
            pool.checkout().close()
        assert (
            _metrics.registry.counter("pool.recycled").value
            == recycled_before + 1
        )
        pool.checkout().close()  # pool still serves healthy sessions
        pool.close()


class TestConcurrentDDL:
    def test_ddl_races_dml_without_corruption(self, pooled_db):
        """CREATE/DROP on private tables races DML on a shared table.

        Any error must be a typed SQLException; afterwards the shared
        table's contents must equal exactly what the DML threads wrote.
        """
        db, admin = pooled_db
        admin.execute("CREATE TABLE shared (thread INTEGER)")
        sql_errors = []

        def ddl_worker(i):
            session = db.create_session(autocommit=True)
            try:
                for round_no in range(15):
                    name = f"scratch_{i}"
                    try:
                        session.execute(
                            f"CREATE TABLE {name} (a INTEGER)"
                        )
                        session.execute(
                            f"INSERT INTO {name} VALUES ({round_no})"
                        )
                        session.execute(f"DROP TABLE {name}")
                    except errors.SQLException as exc:
                        sql_errors.append(exc)
            finally:
                session.close()

        def dml_worker(i):
            session = db.create_session(autocommit=True)
            try:
                for _ in range(15):
                    session.execute(
                        f"INSERT INTO shared VALUES ({i})"
                    )
                    session.execute("SELECT COUNT(*) FROM shared")
            finally:
                session.close()

        ops = [
            (lambda i=i: ddl_worker(i)) if i < 4
            else (lambda i=i: dml_worker(i))
            for i in range(N_THREADS)
        ]
        run_concurrent(N_THREADS, ops).raise_first()
        rows = admin.execute("SELECT COUNT(*) FROM shared").rows
        assert rows == [[(N_THREADS - 4) * 15]]
        # DDL threads dropped everything they created.
        for i in range(4):
            with pytest.raises(errors.SQLException):
                admin.execute(f"SELECT * FROM scratch_{i}")


class TestMixedWorkloadUnderFaults:
    def test_16_thread_generated_workload_with_faults_never_hangs(
        self, pooled_db
    ):
        """Random faults across executor and storage sites surface as
        typed SQLExceptions; no thread hangs, and the database stays
        queryable afterwards."""
        db, admin = pooled_db
        gen = WorkloadGenerator(seed=11)
        admin.execute(gen.ddl())
        for stmt in gen.seed_statements(30):
            admin.execute(stmt)
        pool = ConnectionPool(db, max_size=8, timeout=30.0)
        plan = (
            FaultPlan(seed=11)
            .inject(
                "executor.run",
                error=errors.OperatorExecutionError,
                probability=0.05,
            )
            .inject(
                "storage.insert",
                error=errors.OperatorExecutionError,
                probability=0.05,
            )
            .inject("storage.update", delay=0.0005, probability=0.1)
        )
        workloads = [
            WorkloadGenerator(seed=100 + i).statements(30)
            for i in range(N_THREADS)
        ]
        foreign = []
        foreign_lock = threading.Lock()

        def worker(i):
            for stmt in workloads[i]:
                conn = pool.checkout(timeout=30.0)
                try:
                    conn.session.execute(stmt)
                except errors.SQLException:
                    pass  # injected or legitimate SQL error: fine
                except BaseException as exc:  # noqa: BLE001
                    with foreign_lock:
                        foreign.append(exc)
                finally:
                    conn.close()

        with plan.armed():
            result = run_concurrent(N_THREADS, worker, timeout=120.0)
        assert result.stragglers == 0, "a worker thread hung"
        assert not result.failures
        assert not foreign, f"non-SQL exceptions escaped: {foreign!r}"
        assert sum(plan.fired.values()) > 0, "no fault ever fired"
        # Engine is still consistent and serving.
        count = admin.execute("SELECT COUNT(*) FROM workload").rows
        assert count[0][0] >= 0
        pool.close()


class TestFaultReplay:
    def test_same_seed_same_failures(self):
        """A seeded probabilistic plan fails the same statements when
        replayed over the same single-threaded workload."""

        def run_once():
            db = Database(name="replaydb")
            session = db.create_session(autocommit=True)
            session.execute("CREATE TABLE r (a INTEGER)")
            plan = FaultPlan(seed=21).inject(
                "storage.insert",
                error=errors.OperatorExecutionError,
                probability=0.3,
            )
            failed = []
            with plan.armed():
                for i in range(50):
                    try:
                        session.execute(f"INSERT INTO r VALUES ({i})")
                    except errors.OperatorExecutionError:
                        failed.append(i)
            surviving = session.execute("SELECT COUNT(*) FROM r").rows
            session.close()
            return failed, surviving

        first_failed, first_rows = run_once()
        second_failed, second_rows = run_once()
        assert first_failed, "plan never fired at p=0.3 over 50 inserts"
        assert first_failed == second_failed
        assert first_rows == second_rows
        assert first_rows == [[50 - len(first_failed)]]

    def test_failed_statement_leaves_no_partial_row(self):
        db = Database(name="atomdb")
        session = db.create_session(autocommit=True)
        session.execute("CREATE TABLE a (x INTEGER)")
        plan = FaultPlan(seed=5).inject(
            "storage.insert",
            error=errors.OperatorExecutionError,
            after=1,
            times=1,
        )
        # Second insert of the same statement batch faults; the
        # statement-level undo mark must remove the first row too.
        with plan.armed():
            with pytest.raises(errors.OperatorExecutionError):
                session.execute("INSERT INTO a VALUES (1), (2)")
        assert session.execute("SELECT COUNT(*) FROM a").rows == [[0]]
        session.close()


class TestSharedPoolWiring:
    def test_pooled_contexts_share_one_pool(self, pooled_db):
        from repro import ConnectionContext

        db, _admin = pooled_db
        ctx1 = ConnectionContext(db, pooled=True)
        ctx2 = ConnectionContext(db, pooled=True)
        pool = DriverManager.get_pool(f"pool:{db.name}", database=db)
        assert pool.stats()["in_use"] == 2
        ctx1.close()
        ctx2.close()
        assert pool.stats()["in_use"] == 0
        assert pool.stats()["idle"] == 2  # sessions were kept, not closed
