"""Cost-based planner benchmark: join order on an adversarial query.

A star schema (two dimension tables plus a fact table) is queried with
the join written in the worst possible FROM order::

    SELECT ... FROM dim1, dim2, fact
    WHERE fact.d1 = dim1.id AND fact.d2 = dim2.id
      AND fact.id < <selective bound>

The rule-based planner folds strictly in FROM order, so its first step
is ``dim1 x dim2`` — a cross product of |dim1| * |dim2| pairs that no
join predicate constrains — before the fact table finally joins both
dimensions away.  The cost-based planner (after ``ANALYZE``) starts
from a dimension, hash-joins the fact table next, and never crosses;
it also picks the smaller input as each hash join's build side.

Two arms run the identical query stream over identical data:

* **rule_based** — ``PlannerOptions.cost_based=False`` (the pre-ANALYZE
  planner, plan cache cleared so the arm really plans its own way);
* **cost_based** — statistics collected via ``ANALYZE``, default
  options.

``speedup`` is rule-based wall time over cost-based wall time.  The
run also asserts the introspection contract: ``EXPLAIN (FORMAT JSON)``
on the cost-based arm must report the rejected FROM-order plan with a
higher estimated cost than the chosen plan — the planner has to *show*
why it won, not just win.

Usage::

    PYTHONPATH=src python benchmarks/bench_planner.py [--facts N]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from typing import Any, Dict

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro import Database  # noqa: E402

QUERY = (
    "select dim1.name, dim2.name, fact.qty from dim1, dim2, fact "
    "where fact.d1 = dim1.id and fact.d2 = dim2.id and fact.id < {bound}"
)


def _load(session, dims: int, facts: int) -> None:
    session.execute("create table dim1 (id int, name varchar(16))")
    session.execute("create table dim2 (id int, name varchar(16))")
    session.execute(
        "create table fact (id int, d1 int, d2 int, qty int)"
    )
    session.execute_batch(
        "insert into dim1 values (?, ?)",
        [(i, "a%d" % i) for i in range(dims)],
    )
    session.execute_batch(
        "insert into dim2 values (?, ?)",
        [(i, "b%d" % i) for i in range(dims)],
    )
    session.execute_batch(
        "insert into fact values (?, ?, ?, ?)",
        [(i, i % dims, (i * 7) % dims, i % 100) for i in range(facts)],
    )


def _run(session, sql: str, repeats: int) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        rows = session.execute(sql).rows
        assert rows, "benchmark query returned no rows"
    return time.perf_counter() - start


def _assert_rejected_plan_shown(session, sql: str) -> Dict[str, Any]:
    """The JSON EXPLAIN must carry the rejected FROM-order plan, at a
    higher estimated cost than the plan that ran."""
    result = session.execute(f"explain (format json) {sql}")
    document = json.loads(result.rows[0][0])

    def nodes(node):
        yield node
        for child in node.get("children", ()):
            yield from nodes(child)

    plan = document["plan"]
    rejected = [
        alt
        for node in nodes(plan)
        for alt in node.get("rejected", ())
        if "FROM order" in alt["description"]
    ]
    assert rejected, "cost-based plan does not show the rejected " \
        "rule-based join order"
    chosen_cost = next(
        node["estimated_cost"]
        for node in nodes(plan)
        if node.get("estimated_cost") is not None
    )
    assert rejected[0]["estimated_cost"] > chosen_cost, (
        "rejected rule-based plan should cost more than the chosen one"
    )
    return {
        "chosen_cost": chosen_cost,
        "rejected_cost": rejected[0]["estimated_cost"],
    }


def bench_planner(
    facts: int, dims: int = 400, repeats: int = 3
) -> Dict[str, Any]:
    sql = QUERY.format(bound=max(facts // 20, 1))

    session = Database(name="bench_planner").create_session(
        autocommit=True
    )
    _load(session, dims, facts)

    # Arm 1: rule-based (FROM-order fold, cross product first).
    database = session.database
    default_options = database.planner_options
    database.planner_options = dataclasses.replace(
        default_options, cost_based=False
    )
    database.plan_cache.clear()
    rule_seconds = _run(session, sql, repeats)
    rule_rows = sorted(
        tuple(r) for r in session.execute(sql).rows
    )

    # Arm 2: cost-based, with fresh statistics.
    database.planner_options = default_options
    database.plan_cache.clear()
    session.execute("analyze")
    cost_seconds = _run(session, sql, repeats)
    cost_rows = sorted(
        tuple(r) for r in session.execute(sql).rows
    )
    assert cost_rows == rule_rows, (
        "cost-based and rule-based plans returned different rows"
    )

    costs = _assert_rejected_plan_shown(session, sql)

    return {
        "experiment": "planner",
        "dims": dims,
        "facts": facts,
        "repeats": repeats,
        "rule_based_seconds": rule_seconds,
        "cost_based_seconds": cost_seconds,
        "result_rows": len(cost_rows),
        "chosen_cost": costs["chosen_cost"],
        "rejected_cost": costs["rejected_cost"],
        "speedup": rule_seconds / cost_seconds,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--facts", type=int, default=20_000)
    parser.add_argument("--dims", type=int, default=400)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    outcome = bench_planner(args.facts, args.dims, args.repeats)
    print(json.dumps(outcome, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
