"""Isolation-anomaly battery for MVCC snapshot isolation.

Each classic anomaly gets a seeded, deterministic scenario asserting
the *exact* outcome snapshot isolation promises: dirty reads, non-
repeatable reads, phantoms and lost updates are impossible; write-write
conflicts resolve first-committer-wins with SQLSTATE 40001 for the
loser; readers never block writers and writers never block readers.

Every scenario runs four ways — against in-process engine sessions
(pure in-memory, durable on the snapshot engine, durable on the LSM
engine) and over ``repro://`` through the network server — behind one
small harness facade, proving the guarantees survive both the wire
protocol and either storage engine unchanged (the paper's location
transparency, applied to transaction semantics).  The durable modes
use a tiny checkpoint interval so snapshot checkpoints / LSM flushes
actually interleave with the battery.
"""

from __future__ import annotations

import threading

import pytest

import repro
from repro import errors
from repro.engine.database import Database
from repro.engine.durability import open_database
from repro.server import ReproServer
from repro.testing import retry_serialization, run_concurrent


# ---------------------------------------------------------------------------
# harness: one facade over engine sessions and remote connections
# ---------------------------------------------------------------------------


class EngineHandle:
    def __init__(self, session):
        self.session = session

    def execute(self, sql, params=()):
        result = self.session.execute(sql, params)
        return [list(row) for row in result.rows]

    def commit(self):
        self.session.commit()

    def rollback(self):
        self.session.rollback()

    def close(self):
        self.session.close()


class RemoteHandle:
    def __init__(self, connection):
        self.connection = connection
        self.statement = connection.create_statement()

    def execute(self, sql, params=()):
        if params:
            prepared = self.connection.prepare_statement(sql)
            for position, value in enumerate(params, start=1):
                prepared.set_object(position, value)
            if not prepared.execute():
                return []
            rows = self._drain(prepared.get_result_set())
            prepared.close()
            return rows
        if not self.statement.execute(sql):
            return []
        return self._drain(self.statement.get_result_set())

    @staticmethod
    def _drain(result_set):
        width = result_set.get_meta_data().get_column_count()
        rows = []
        while result_set.next():
            rows.append(
                [result_set.get_object(i) for i in range(1, width + 1)]
            )
        return rows

    def commit(self):
        self.connection.commit()

    def rollback(self):
        self.connection.rollback()

    def close(self):
        self.connection.close()


class Harness:
    """Opens transactional handles against one shared database."""

    def __init__(
        self, mode, server=None, name="iso",
        directory=None, storage="snapshot",
    ):
        self.mode = mode
        self.server = server
        self.name = name
        if mode == "engine":
            self.database = Database(name=name)
        elif mode == "durable":
            # checkpoint_interval=8: checkpoints (snapshot engine) /
            # memtable flushes (LSM engine) interleave with the
            # anomaly scenarios instead of only firing at close.
            self.database = open_database(
                directory, name=name, storage=storage,
                sync=False, checkpoint_interval=8,
            )
        else:
            self.database = None

    def open(self, autocommit=False):
        if self.database is not None:
            session = self.database.create_session(
                "dba", autocommit=autocommit
            )
            return EngineHandle(session)
        url = f"repro://127.0.0.1:{self.server.port}/{self.name}"
        connection = repro.connect(url)
        connection.set_auto_commit(autocommit)
        return RemoteHandle(connection)

    def close(self):
        if self.database is not None:
            self.database.close()


@pytest.fixture(
    params=["engine", "engine-snapshot", "engine-lsm", "remote"]
)
def iso(request, tmp_path):
    if request.param == "engine":
        harness = Harness("engine")
        yield harness
        harness.close()
    elif request.param.startswith("engine-"):
        harness = Harness(
            "durable",
            directory=str(tmp_path / "iso"),
            storage=request.param.split("-", 1)[1],
        )
        yield harness
        harness.close()
    else:
        server = ReproServer().start_background()
        harness = Harness(
            "remote", server=server, name=f"iso_{request.node.name}"
        )
        try:
            yield harness
        finally:
            server.stop_background()


def seed_accounts(handle):
    handle.execute(
        "create table accounts (id int primary key, balance int)"
    )
    handle.execute("insert into accounts values (1, 100), (2, 200)")
    handle.commit()


def balances(handle):
    return handle.execute(
        "select id, balance from accounts order by id"
    )


# ---------------------------------------------------------------------------
# the battery
# ---------------------------------------------------------------------------


class TestDirtyRead:
    def test_uncommitted_update_is_invisible(self, iso):
        setup = iso.open()
        seed_accounts(setup)
        writer = iso.open()
        reader = iso.open()
        writer.execute("update accounts set balance = 999 where id = 1")
        # The reader's snapshot must show the committed value, not the
        # in-flight one — and reading must not block on the writer.
        assert balances(reader) == [[1, 100], [2, 200]]
        writer.rollback()
        reader.rollback()
        assert balances(setup) == [[1, 100], [2, 200]]
        for handle in (setup, writer, reader):
            handle.close()

    def test_uncommitted_insert_is_invisible(self, iso):
        setup = iso.open()
        seed_accounts(setup)
        writer = iso.open()
        reader = iso.open()
        writer.execute("insert into accounts values (3, 300)")
        assert balances(reader) == [[1, 100], [2, 200]]
        # The writer sees its own uncommitted insert.
        assert balances(writer) == [[1, 100], [2, 200], [3, 300]]
        writer.rollback()
        assert balances(reader) == [[1, 100], [2, 200]]
        for handle in (setup, writer, reader):
            handle.close()


class TestNonRepeatableRead:
    def test_reread_returns_snapshot_value(self, iso):
        setup = iso.open()
        seed_accounts(setup)
        reader = iso.open()
        writer = iso.open(autocommit=True)
        first = balances(reader)  # pins the reader's snapshot
        writer.execute("update accounts set balance = 150 where id = 1")
        # A new transaction sees the committed change...
        fresh = iso.open()
        assert balances(fresh) == [[1, 150], [2, 200]]
        # ...but the pinned snapshot rereads the original value.
        assert balances(reader) == first == [[1, 100], [2, 200]]
        reader.commit()
        assert balances(reader) == [[1, 150], [2, 200]]
        for handle in (setup, reader, writer, fresh):
            handle.close()


class TestPhantom:
    def test_predicate_reread_sees_no_phantom(self, iso):
        setup = iso.open()
        seed_accounts(setup)
        reader = iso.open()
        writer = iso.open(autocommit=True)
        count_sql = (
            "select count(*) from accounts where balance >= 100"
        )
        assert reader.execute(count_sql) == [[2]]
        writer.execute("insert into accounts values (3, 300)")
        writer.execute("update accounts set balance = 400 where id = 1")
        # Neither the new matching row nor the updated one leaks into
        # the open snapshot.
        assert reader.execute(count_sql) == [[2]]
        assert balances(reader) == [[1, 100], [2, 200]]
        reader.commit()
        assert reader.execute(count_sql) == [[3]]
        for handle in (setup, reader, writer):
            handle.close()


class TestLostUpdate:
    def test_second_writer_gets_40001(self, iso):
        """Read-modify-write on a pinned snapshot: the first committer
        wins, the second writer fails with SQLSTATE 40001 rather than
        silently overwriting."""
        setup = iso.open()
        seed_accounts(setup)
        first = iso.open()
        second = iso.open()
        # Both transactions read (pinning their snapshots)...
        assert balances(first)[0] == [1, 100]
        assert balances(second)[0] == [1, 100]
        # ...the first updates and commits...
        first.execute(
            "update accounts set balance = balance + 10 where id = 1"
        )
        first.commit()
        # ...so the second's conflicting update must fail, retryably.
        with pytest.raises(errors.SerializationFailureError) as info:
            second.execute(
                "update accounts set balance = balance + 5 where id = 1"
            )
            second.commit()
        assert info.value.sqlstate == "40001"
        second.rollback()
        # The committed outcome is exactly the first writer's update.
        assert balances(setup)[0] == [1, 110]
        for handle in (setup, first, second):
            handle.close()

    def test_retry_loop_recovers_both_updates(self, iso):
        setup = iso.open()
        seed_accounts(setup)
        second = iso.open()

        def transfer():
            [[balance]] = second.execute(
                "select balance from accounts where id = 1"
            )
            if balance == 100:
                # Only on the first attempt: a rival commits in the
                # middle of our read-modify-write.
                rival = iso.open()
                rival.execute(
                    "update accounts set balance = balance + 10 "
                    "where id = 1"
                )
                rival.commit()
                rival.close()
            second.execute(
                "update accounts set balance = ? where id = 1",
                (balance + 5,),
            )
            second.commit()

        retry_serialization(transfer, on_failure=second.rollback)
        # Both increments survive: 100 + 10 (rival) + 5 (retried).
        assert balances(setup)[0] == [1, 115]
        for handle in (setup, second):
            handle.close()


class TestFirstCommitterWins:
    def test_concurrent_claims_one_wins(self, iso):
        """Two transactions race to update the same row with pinned
        snapshots: exactly one commits, the loser gets 40001 while the
        winner's value is the committed outcome."""
        setup = iso.open()
        seed_accounts(setup)

        gate = threading.Barrier(2, timeout=30)

        def contender(index):
            handle = iso.open()
            try:
                balances(handle)  # pin the snapshot
                gate.wait()
                handle.execute(
                    "update accounts set balance = ? where id = 2",
                    (1000 + index,),
                )
                handle.commit()
                return 1000 + index
            except errors.SerializationFailureError as exc:
                assert exc.sqlstate == "40001"
                handle.rollback()
                return None
            finally:
                handle.close()

        outcome = run_concurrent(2, contender, barrier=True)
        outcome.raise_first()
        winners = [value for value in outcome.values if value is not None]
        assert len(winners) == 1
        assert balances(setup)[1] == [2, winners[0]]
        setup.close()


class TestReadersAndWritersDontBlock:
    def test_reader_completes_while_writer_holds_claims(self, iso):
        setup = iso.open()
        seed_accounts(setup)
        writer = iso.open()
        writer.execute("update accounts set balance = 0 where id = 1")

        finished = threading.Event()

        def read():
            reader = iso.open()
            try:
                assert balances(reader) == [[1, 100], [2, 200]]
            finally:
                reader.rollback()
                reader.close()
            finished.set()

        thread = threading.Thread(target=read)
        thread.start()
        thread.join(timeout=10)
        assert finished.is_set(), "reader blocked behind a writer"
        writer.rollback()
        for handle in (setup, writer):
            handle.close()

    def test_writer_commits_while_reader_snapshot_open(self, iso):
        setup = iso.open()
        seed_accounts(setup)
        reader = iso.open()
        assert balances(reader) == [[1, 100], [2, 200]]

        finished = threading.Event()

        def write():
            writer = iso.open()
            try:
                writer.execute(
                    "update accounts set balance = 500 where id = 2"
                )
                writer.commit()
            finally:
                writer.close()
            finished.set()

        thread = threading.Thread(target=write)
        thread.start()
        thread.join(timeout=10)
        assert finished.is_set(), "writer blocked behind a reader"
        # The open snapshot still reads the old state.
        assert balances(reader) == [[1, 100], [2, 200]]
        reader.commit()
        assert balances(reader) == [[1, 100], [2, 500]]
        for handle in (setup, reader):
            handle.close()
