"""INSERT / UPDATE / DELETE execution.

Each function takes the parsed statement, the executing session and the
dynamic parameter values, performs privilege and constraint checks, and
mutates the target table through the transactional
:class:`~repro.engine.storage.RowStore`.

UPDATE supports the SQLJ Part 2 attribute-path targets from the paper::

    update emps set home_addr>>zip = '99123' where name = 'Bob Smith'

which copy the stored object, mutate the mapped Python field, and store
the result back (value semantics).
"""

from __future__ import annotations

import copy
from typing import Any, List, Optional, Sequence, Tuple

from repro import errors
from repro.engine import ast
from repro.engine.catalog import Column, Table
from repro.engine.expressions import Env, ExpressionCompiler, RowShape
from repro.engine.mvcc import MvccTransaction, RowVersion, WriteConflict
from repro.engine.planner import plan_query, table_shape
from repro.engine.storage import RowStore, store_value
from repro.engine.virtual import VirtualTable
from repro.sqltypes import ObjectType

__all__ = [
    "execute_insert",
    "execute_insert_batch",
    "execute_update",
    "execute_delete",
]


def _check_not_null(column: Column, value: Any, table: Table) -> None:
    if value is None and column.not_null:
        raise errors.NotNullViolationError(
            f"column {column.name!r} of table {table.name!r} is NOT NULL"
        )


def _unique_columns(table: Table) -> List[int]:
    return [
        position
        for position, column in enumerate(table.columns)
        if column.unique
    ]


def _values_collide(left: Any, right: Any) -> bool:
    from repro.sqltypes import compare_values

    if left is None or right is None:
        return False  # NULLs never collide (SQL UNIQUE semantics)
    try:
        return compare_values(left, right) == 0
    except errors.SQLException:
        return False


def _check_unique(
    table: Table,
    row: List[Any],
    txn: MvccTransaction,
    extra_rows: Sequence[List[Any]] = (),
) -> None:
    """Raise if ``row`` collides on a UNIQUE/PRIMARY KEY column.

    Callers pass this as the ``precondition`` of the matching
    :meth:`RowStore.insert`/:meth:`RowStore.replace` so the scan and
    the heap append happen atomically under the table's mutation lock;
    checking first and appending later would let two concurrent
    inserts of the same key both pass.

    Unique enforcement reads the *latest* heap state, not the
    transaction's snapshot — like PostgreSQL, a constraint must hold
    against what is actually committed, even when the colliding row is
    invisible to this snapshot.  Per colliding live version:

    * our own pending insert (or an ``extra_rows`` entry of the same
      statement) → :class:`~repro.errors.UniqueViolationError`;
    * claimed or inserted by another *in-flight* transaction →
      :class:`~repro.engine.mvcc.WriteConflict` — the outcome depends
      on whether that transaction commits, so the session waits for it
      and re-runs the statement;
    * committed live (and not being replaced by us) →
      :class:`~repro.errors.UniqueViolationError`.

    Versions this transaction has claimed (``xmax == txn.id``) are the
    rows it is deleting or replacing — they no longer count.
    """
    unique_positions = _unique_columns(table)
    if not unique_positions:
        return
    heap = list(table.versions)
    for position in unique_positions:
        value = row[position]
        if value is None:
            continue
        column = table.columns[position]
        label = "PRIMARY KEY" if column.primary_key else "UNIQUE"
        message = (
            f"duplicate value for {label} column "
            f"{column.name!r} of table {table.name!r}"
        )
        for version in heap:
            if version.end is not None:
                continue  # committed-deleted: slot is free
            if version.xmax == txn.id:
                continue  # being deleted/replaced by this statement
            if version.row is row:
                continue
            if not _values_collide(version.row[position], value):
                continue
            if version.begin is None and version.xmin != txn.id:
                # Another transaction's uncommitted insert: wait for
                # it — only then do we know whether this is a
                # duplicate or a free slot.
                raise WriteConflict(version.xmin)
            if version.xmax is not None and version.begin is not None:
                # Committed row claimed by a live transaction that may
                # be deleting it; wait for the claimant.
                raise WriteConflict(version.xmax)
            raise errors.UniqueViolationError(message)
        for pending in extra_rows:
            if pending is not row and _values_collide(
                pending[position], value
            ):
                raise errors.UniqueViolationError(message)


def _check_unique_batch(
    table: Table, rows: List[List[Any]], txn: MvccTransaction
) -> None:
    """Batch-amortized unique check: one heap pass per UNIQUE column.

    Runs as the ``precondition`` of :meth:`RowStore.insert_many`, under
    the table's mutation lock and *before* any of ``rows`` is appended,
    so a violation leaves the heap untouched (all-or-nothing).

    Semantics match :func:`_check_unique` exactly — same skip rules,
    same :class:`WriteConflict` escalation for in-flight colliders —
    but the cost is O(heap + batch) per unique column instead of
    O(heap × batch): live values are folded into a dict once and each
    new row is a hash probe, with a batch-local ``seen`` set catching
    intra-batch duplicates.  Values that cannot be hashed (or whose
    equality may disagree with ``compare_values``) fall back to the
    per-row linear check.
    """
    unique_positions = _unique_columns(table)
    if not unique_positions:
        return

    def fallback() -> None:
        for row in rows:
            _check_unique(table, row, txn, extra_rows=rows)

    heap = list(table.versions)
    for position in unique_positions:
        column = table.columns[position]
        label = "PRIMARY KEY" if column.primary_key else "UNIQUE"
        message = (
            f"duplicate value for {label} column "
            f"{column.name!r} of table {table.name!r}"
        )
        live: dict = {}
        try:
            for version in heap:
                if version.end is not None:
                    continue  # committed-deleted: slot is free
                if version.xmax == txn.id:
                    continue  # being deleted/replaced by this txn
                value = version.row[position]
                if value is None:
                    continue  # NULLs never collide
                live[value] = version
        except TypeError:
            return fallback()  # unhashable stored value
        seen: set = set()
        for row in rows:
            value = row[position]
            if value is None:
                continue
            try:
                collider = live.get(value)
                duplicate_in_batch = value in seen
                seen.add(value)
            except TypeError:
                return fallback()  # unhashable batch value
            if duplicate_in_batch:
                raise errors.UniqueViolationError(message)
            if collider is None:
                continue
            if collider.begin is None and collider.xmin != txn.id:
                # Another transaction's uncommitted insert: wait for
                # it — only then do we know whether this is a
                # duplicate or a free slot.
                raise WriteConflict(collider.xmin)
            if collider.xmax is not None and collider.begin is not None:
                # Committed row claimed by a live transaction that may
                # be deleting it; wait for the claimant.
                raise WriteConflict(collider.xmax)
            raise errors.UniqueViolationError(message)


def _default_value(
    column: Column, session: Any, params: Sequence[Any]
) -> Any:
    if column.default is None:
        return None
    compiler = ExpressionCompiler(RowShape([]), session)
    return compiler.compile(column.default).fn(Env([], params, None, session))


def _reject_virtual(table: Table) -> None:
    if isinstance(table, VirtualTable):
        raise table.readonly_error("modify")


def execute_insert(
    stmt: ast.Insert, session: Any, params: Sequence[Any]
) -> int:
    table = session.catalog.get_table(stmt.table)
    session.check_table_privilege("INSERT", stmt.table)
    _reject_virtual(table)

    if stmt.columns is None:
        target_positions = list(range(len(table.columns)))
    else:
        target_positions = [
            table.column_position(name) for name in stmt.columns
        ]
        if len(set(target_positions)) != len(target_positions):
            raise errors.SQLSyntaxError(
                "duplicate column in INSERT column list"
            )

    store = RowStore(table, session)
    inserted = 0

    if isinstance(stmt.source, ast.ValuesSource):
        compiler = ExpressionCompiler(RowShape([]), session)
        for value_row in stmt.source.rows:
            if len(value_row) != len(target_positions):
                raise errors.SQLSyntaxError(
                    f"INSERT expects {len(target_positions)} values, "
                    f"got {len(value_row)}"
                )
            env = Env([], params, None, session)
            values = [compiler.compile(expr).fn(env) for expr in value_row]
            row = _build_row(
                table, target_positions, values, session, params
            )
            store.insert(
                row,
                precondition=lambda row=row: _check_unique(
                    table, row, store.txn
                ),
            )
            inserted += 1
        session.after_mutation(rows=inserted)
        return inserted

    plan, shape = plan_query(stmt.source, session)
    if len(shape) != len(target_positions):
        raise errors.SQLSyntaxError(
            f"INSERT expects {len(target_positions)} columns, the query "
            f"supplies {len(shape)}"
        )
    for source_row in plan.run(session, params):
        row = _build_row(
            table, target_positions, source_row, session, params
        )
        store.insert(
            row,
            precondition=lambda row=row: _check_unique(
                table, row, store.txn
            ),
        )
        inserted += 1
    session.after_mutation(rows=inserted)
    return inserted


def execute_insert_batch(
    stmt: ast.Insert,
    session: Any,
    param_rows: Sequence[Sequence[Any]],
) -> List[int]:
    """Bulk ``INSERT ... VALUES`` fast path: one parse, one plan, one
    heap pass.

    Executes the already-parsed statement once per parameter row, but
    amortizes every per-statement cost over the batch: the VALUES
    expressions are compiled once, all rows are built up front, the
    unique check is one heap pass per constrained column
    (:func:`_check_unique_batch`), and every version lands in the heap
    under a single ``mutation_lock`` acquisition with one deferred
    index-maintenance pass (:meth:`RowStore.insert_many`).

    Returns the per-parameter-row insert counts (JDBC
    ``executeBatch``-style ``updateCounts``).  Any failure — constraint
    violation, coercion error, injected fault — propagates with the
    heap untouched, so the caller's statement-level rollback makes the
    batch all-or-nothing.
    """
    table = session.catalog.get_table(stmt.table)
    session.check_table_privilege("INSERT", stmt.table)
    _reject_virtual(table)

    if stmt.columns is None:
        target_positions = list(range(len(table.columns)))
    else:
        target_positions = [
            table.column_position(name) for name in stmt.columns
        ]
        if len(set(target_positions)) != len(target_positions):
            raise errors.SQLSyntaxError(
                "duplicate column in INSERT column list"
            )

    source = stmt.source
    if not isinstance(source, ast.ValuesSource):
        raise errors.FeatureNotSupportedError(
            "batch INSERT requires a VALUES source"
        )
    compiler = ExpressionCompiler(RowShape([]), session)
    compiled_rows = []
    for value_row in source.rows:
        if len(value_row) != len(target_positions):
            raise errors.SQLSyntaxError(
                f"INSERT expects {len(target_positions)} values, "
                f"got {len(value_row)}"
            )
        compiled_rows.append(
            [compiler.compile(expr).fn for expr in value_row]
        )

    built: List[List[Any]] = []
    counts: List[int] = []
    for params in param_rows:
        for value_fns in compiled_rows:
            env = Env([], params, None, session)
            values = [fn(env) for fn in value_fns]
            built.append(
                _build_row(table, target_positions, values, session, params)
            )
        counts.append(len(compiled_rows))

    store = RowStore(table, session)
    store.insert_many(
        built,
        precondition=lambda: _check_unique_batch(table, built, store.txn),
    )
    session.after_mutation(rows=len(built))
    return counts


def _build_row(
    table: Table,
    target_positions: List[int],
    values: Sequence[Any],
    session: Any,
    params: Sequence[Any],
) -> List[Any]:
    row: List[Any] = [None] * len(table.columns)
    supplied = set(target_positions)
    for position, value in zip(target_positions, values):
        column = table.columns[position]
        coerced = column.descriptor.coerce(value)
        _check_udt_usage(session, column)
        row[position] = store_value(coerced, column.descriptor)
    for position, column in enumerate(table.columns):
        if position not in supplied:
            default = _default_value(column, session, params)
            row[position] = store_value(
                column.descriptor.coerce(default), column.descriptor
            )
    for position, column in enumerate(table.columns):
        _check_not_null(column, row[position], table)
    return row


def _check_udt_usage(session: Any, column: Column) -> None:
    descriptor = column.descriptor
    if isinstance(descriptor, ObjectType):
        udt = session.catalog.types.get(descriptor.udt_name)
        if udt is not None:
            session.check_usage_privilege(udt)


def _matching_versions(
    table: Table,
    where: Optional[ast.Expression],
    session: Any,
    params: Sequence[Any],
) -> List[RowVersion]:
    """Heap versions visible to the session's snapshot matching WHERE."""
    txn = session.mvcc_txn
    visible = [v for v in list(table.versions) if txn.sees(v)]
    if where is None:
        return visible
    shape = table_shape(table)
    compiler = ExpressionCompiler(shape, session)
    predicate = compiler.compile_predicate(where)
    return [
        version
        for version in visible
        if predicate(Env(version.row, params, None, session))
    ]


def execute_delete(
    stmt: ast.Delete, session: Any, params: Sequence[Any]
) -> int:
    table = session.catalog.get_table(stmt.table)
    session.check_table_privilege("DELETE", stmt.table)
    _reject_virtual(table)
    versions = _matching_versions(table, stmt.where, session, params)
    if versions:
        RowStore(table, session).delete(versions)
    session.after_mutation(rows=len(versions))
    return len(versions)


def execute_update(
    stmt: ast.Update, session: Any, params: Sequence[Any]
) -> int:
    table = session.catalog.get_table(stmt.table)
    session.check_table_privilege("UPDATE", stmt.table)
    _reject_virtual(table)
    shape = table_shape(table)
    compiler = ExpressionCompiler(shape, session)

    # Compile and validate assignments up front, independent of row
    # matches: target columns must exist and value types must be
    # assignable (strong typing at plan time, not first-match time).
    compiled: List[Tuple[ast.Assignment, Any]] = []
    for assignment in stmt.assignments:
        value = compiler.compile(assignment.value)
        target = assignment.target
        if isinstance(target, str):
            position = table.column_position(target)
            column = table.columns[position]
            if isinstance(assignment.value, ast.Literal):
                column.descriptor.coerce(assignment.value.value)
            elif value.descriptor is not None and not \
                    column.descriptor.assignable_from(value.descriptor):
                raise errors.InvalidCastError(
                    f"cannot store {value.descriptor.sql_spelling()} "
                    f"into column {column.name!r} "
                    f"({column.descriptor.sql_spelling()})"
                )
        else:
            position = table.column_position(target.column)
            descriptor = table.columns[position].descriptor
            if not isinstance(descriptor, ObjectType):
                raise errors.SQLSyntaxError(
                    f"column {target.column!r} is not of an object type; "
                    ">> assignment is not applicable"
                )
        compiled.append((assignment, value.fn))

    targets = _matching_versions(table, stmt.where, session, params)
    store = RowStore(table, session)

    # Claim every target first (first-updater-wins conflict detection),
    # then evaluate all replacement rows against pre-update state —
    # old versions are immutable, so the images cannot shift under us.
    for version in targets:
        store.claim(version)

    replacements: List[Tuple[RowVersion, List[Any]]] = []
    for version in targets:
        old_row = version.row
        env = Env(old_row, params, None, session)
        new_row = list(old_row)
        for assignment, value_fn in compiled:
            value = value_fn(env)
            _apply_assignment(table, new_row, assignment, value, session)
        for column, cell in zip(table.columns, new_row):
            _check_not_null(column, cell, table)
        replacements.append((version, new_row))

    # Unique validation runs as each replacement's insert precondition
    # (atomically with the append, under the table's mutation lock):
    # claimed old versions are excluded by their xmax stamp, earlier
    # replacements of this statement are already in the heap, and later
    # ones not yet appended are cross-checked via extra_rows.
    pending_rows = [row for _version, row in replacements]
    for _version, new_row in replacements:
        store.replace(
            new_row,
            precondition=lambda row=new_row: _check_unique(
                table, row, store.txn, extra_rows=pending_rows
            ),
        )
    session.after_mutation(rows=len(replacements))
    return len(replacements)


def _apply_assignment(
    table: Table,
    row: List[Any],
    assignment: ast.Assignment,
    value: Any,
    session: Any,
) -> None:
    target = assignment.target
    if isinstance(target, str):
        position = table.column_position(target)
        column = table.columns[position]
        _check_udt_usage(session, column)
        row[position] = store_value(
            column.descriptor.coerce(value), column.descriptor
        )
        return

    # Part 2 attribute path: copy object, set the mapped field, store back.
    position = table.column_position(target.column)
    column = table.columns[position]
    descriptor = column.descriptor
    if not isinstance(descriptor, ObjectType):
        raise errors.SQLSyntaxError(
            f"column {target.column!r} is not of an object type; "
            ">> assignment is not applicable"
        )
    current = row[position]
    if current is None:
        raise errors.NullValueError(
            f"cannot assign attribute of NULL value in column "
            f"{target.column!r}"
        )
    updated = copy.deepcopy(current)
    node = updated
    path = target.attributes
    for attr_name in path[:-1]:
        node = _read_attribute(session, node, attr_name)
        if node is None:
            raise errors.NullValueError(
                f"intermediate attribute {attr_name!r} is NULL"
            )
    _write_attribute(session, node, path[-1], value)
    row[position] = updated


def _binding_for(session: Any, obj: Any, attr_name: str):
    udt = session.catalog.type_for_class(type(obj))
    if udt is None:
        raise errors.UndefinedTypeError(
            f"class {type(obj).__name__!r} is not registered as a SQL type"
        )
    binding = udt.find_attribute(attr_name)
    if binding is None:
        raise errors.UndefinedColumnError(
            f"type {udt.name!r} has no attribute {attr_name!r}"
        )
    return binding


def _read_attribute(session: Any, obj: Any, attr_name: str) -> Any:
    return getattr(obj, _binding_for(session, obj, attr_name).field_name)


def _write_attribute(
    session: Any, obj: Any, attr_name: str, value: Any
) -> None:
    binding = _binding_for(session, obj, attr_name)
    setattr(obj, binding.field_name, binding.descriptor.coerce(value))
