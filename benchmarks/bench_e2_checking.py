"""E2 — "Ahead-of-time syntax and type checking" (paper slide 6).

A corpus of SQLJ programs is seeded with the four static error classes a
DBA cares about: SQL syntax errors, unknown tables, unknown columns, and
type mismatches (plus iterator shape errors, which only SQLJ can have).
We measure what fraction each approach catches *before the program
runs*:

* the SQLJ translator with online checking (syntax + semantics),
* the SQLJ translator offline (syntax only),
* the dynamic dbapi path (nothing is checked until execution).

Expected shape: online translator ~100% of the corpus, offline catches
the syntax subset, dynamic API 0% (every error surfaces at run time).
The pytest-benchmark group measures the cost of checking itself.
"""

import pytest

from repro import errors
from repro import Database
from repro.translator import (
    TranslationOptions,
    Translator,
    translate_source,
)
from benchmarks.common import fresh_name, report


def exemplar():
    database = Database(name=fresh_name("e2"))
    session = database.create_session(autocommit=True)
    session.execute(
        "create table emps (name varchar(50), id char(5), "
        "state char(20), sales decimal(6,2))"
    )
    return database


def clause_program(sql: str) -> str:
    return f"#sql {{ {sql} }};\n"


#: (label, error class, program source)
CORPUS = [
    ("syntax-1", "syntax",
     clause_program("SELEKT name FROM emps")),
    ("syntax-2", "syntax",
     clause_program("SELECT name FROM WHERE x")),
    ("syntax-3", "syntax",
     clause_program("INSERT INTO emps VALUES (")),
    ("table-1", "semantic",
     clause_program("SELECT name FROM employees")),
    ("table-2", "semantic",
     clause_program("DELETE FROM emp")),
    ("table-3", "semantic",
     clause_program("UPDATE people SET name = 'x'")),
    ("column-1", "semantic",
     clause_program("SELECT wages FROM emps")),
    ("column-2", "semantic",
     clause_program("UPDATE emps SET salary = 1")),
    ("column-3", "semantic",
     clause_program("SELECT name FROM emps ORDER BY wages")),
    ("type-1", "semantic",
     clause_program("SELECT name FROM emps WHERE sales = 'lots'")),
    ("type-2", "semantic",
     clause_program("UPDATE emps SET sales = 'many'")),
    ("type-3", "semantic",
     clause_program(
         "INSERT INTO emps VALUES ('A', 'E1', 'CA', 'not-a-number')"
     )),
    ("arity-1", "semantic",
     clause_program("INSERT INTO emps VALUES ('A', 'E1')")),
    ("iterator-1", "iterator",
     "#sql iterator It (int, int);\n"
     "it: It\n"
     "#sql it = { SELECT name, sales FROM emps };\n"),
    ("iterator-2", "iterator",
     "#sql iterator It (str name, int wages);\n"
     "it: It\n"
     "#sql it = { SELECT name, sales FROM emps };\n"),
]

#: Equivalent dynamic-SQL texts for the dbapi run-time comparison (the
#: iterator errors have no dynamic equivalent: nothing declares types).
DYNAMIC_CORPUS = [
    (label, kind, source.split("{", 1)[1].rsplit("}", 1)[0].strip())
    for label, kind, source in CORPUS
    if kind in ("syntax", "semantic")
]


def translator_catches(source: str, online: bool) -> bool:
    options = TranslationOptions(
        exemplar=exemplar() if online else None
    )
    try:
        translate_source(source, "corpus_mod", options)
        return False
    except errors.TranslationError:
        return True


class TestCheckingCoverage:
    def test_online_translator_catches_everything(self):
        caught = {
            label: translator_catches(source, online=True)
            for label, _kind, source in CORPUS
        }
        missed = [label for label, ok in caught.items() if not ok]
        assert not missed, f"online checking missed: {missed}"

    def test_offline_translator_catches_exactly_syntax(self):
        rows = []
        for label, kind, source in CORPUS:
            caught = translator_catches(source, online=False)
            rows.append((label, kind, caught))
            if kind == "syntax":
                assert caught, f"offline checking missed {label}"
        syntax_only = [
            label for label, kind, caught in rows
            if caught and kind != "syntax"
        ]
        assert not syntax_only

    def test_dynamic_api_catches_nothing_before_execution(self):
        # Preparing is the last chance before execution; parse-time
        # errors surface at prepare, but semantic errors only when the
        # statement actually runs — and *nothing* is reported while the
        # program text merely exists, which is the paper's point.
        database = exemplar()
        session = database.create_session(autocommit=True)
        before_run = 0
        at_run = 0
        for _label, _kind, sql in DYNAMIC_CORPUS:
            # Phase "program exists, has not run": no API was called, no
            # error can have surfaced.
            try:
                session.execute(sql)
                raise AssertionError(f"corpus SQL ran cleanly: {sql}")
            except errors.SQLException:
                at_run += 1
        assert before_run == 0
        assert at_run == len(DYNAMIC_CORPUS)

    def test_summary_table(self):
        online = sum(
            translator_catches(s, True) for _l, _k, s in CORPUS
        )
        offline = sum(
            translator_catches(s, False) for _l, _k, s in CORPUS
        )
        report(
            "E2: errors caught before run time",
            [
                ("sqlj online", f"{online}/{len(CORPUS)}",
                 f"{100 * online // len(CORPUS)}%"),
                ("sqlj offline", f"{offline}/{len(CORPUS)}",
                 f"{100 * offline // len(CORPUS)}%"),
                ("dynamic dbapi", f"0/{len(CORPUS)}", "0%"),
            ],
            ("approach", "caught", "rate"),
        )
        assert online == len(CORPUS)
        assert 0 < offline < online


GOOD_PROGRAM = (
    "#sql iterator It (str name, int region);\n"
    "it: It\n"
    "#sql it = { SELECT name, 1 AS region FROM emps WHERE sales > :x };\n"
    "#sql { UPDATE emps SET sales = sales + :y WHERE state = :s };\n"
    "#sql { DELETE FROM emps WHERE sales IS NULL };\n"
)


@pytest.mark.benchmark(group="e2-translate")
def test_translation_with_online_checking(benchmark):
    database = exemplar()

    def translate():
        translator = Translator(TranslationOptions(exemplar=database))
        return translator.translate_source(GOOD_PROGRAM, "good_mod")

    result = benchmark(translate)
    assert result.profiles


@pytest.mark.benchmark(group="e2-translate")
def test_translation_offline_only(benchmark):
    def translate():
        return translate_source(GOOD_PROGRAM, "good_mod")

    result = benchmark(translate)
    assert result.profiles
