"""Immutable sorted-run (SSTable) files for the LSM storage engine.

A run holds one flush (or one compaction merge) of a single table as a
sequence of *entries* sorted by row id:

* ``("d", rid, begin, row)`` — a committed row image with its MVCC
  ``begin`` stamp.  Each rid's data entry exists in exactly one live
  run.
* ``("t", rid, end)`` — a tombstone: the row named by ``rid`` was
  deleted (or replaced) at commit stamp ``end``.  A tombstone is always
  written to a run at least as new as its data entry, so a newest-first
  merge that unions tombstones *before* scanning a run's data entries
  never resurrects a deleted row.

On-disk layout (all frames CRC-checked)::

    magic                 b"RLSM1\\0"
    block*                [u32 len][u32 crc32][pickle([entry, ...])]
    footer                [u32 len][u32 crc32][pickle(footer dict)]
    trailer               [u64 footer offset][b"LSMFOOT\\0"]

The footer carries a *sparse index* — ``(first rid, file offset)`` per
block — and a Bloom filter over the data rids, so a point lookup reads
the footer plus at most one block: ``might_contain`` filters misses
without touching a block at all, then a binary search over the sparse
index names the single candidate block.

Writes are crash-atomic the same way checkpoints are: the run is
written to ``<path>.tmp``, fsynced, and ``os.replace``d into place; the
manifest (:mod:`repro.engine.lsm.manifest`) only ever references
completed files, and orphaned temp files are swept at open.
"""

from __future__ import annotations

import bisect
import os
import pickle
import struct
import zlib
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro import errors

__all__ = ["write_sstable", "SSTableReader", "Entry"]

#: One entry: ("d", rid, begin, row) or ("t", rid, end).
Entry = Tuple[Any, ...]

MAGIC = b"RLSM1\x00"
FOOTER_MAGIC = b"LSMFOOT\x00"
_TRAILER = struct.Struct("<Q8s")
_FRAME = struct.Struct("<II")

#: Entries per block: small enough that a point lookup deserialises a
#: few KB, large enough that the sparse index stays tiny.
BLOCK_ENTRIES = 256

#: Bloom filter geometry: ~10 bits and 4 probes per data rid gives a
#: false-positive rate of about 1-2%.
_BLOOM_BITS_PER_KEY = 10
_BLOOM_PROBES = 4


def _mix64(value: int) -> int:
    """Deterministic 64-bit mixer (splitmix64 finaliser) — stable
    across processes regardless of ``PYTHONHASHSEED``."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def _bloom_probes(rid: int, nbits: int) -> Iterator[int]:
    base = _mix64(rid)
    step = _mix64(rid ^ 0xA5A5A5A5A5A5A5A5) | 1
    for i in range(_BLOOM_PROBES):
        yield (base + i * step) % nbits


def _build_bloom(rids: Sequence[int]) -> Tuple[bytearray, int]:
    nbits = max(64, len(rids) * _BLOOM_BITS_PER_KEY)
    bits = bytearray((nbits + 7) // 8)
    for rid in rids:
        for probe in _bloom_probes(rid, nbits):
            bits[probe >> 3] |= 1 << (probe & 7)
    return bits, nbits


def _write_frame(handle, payload: bytes) -> None:
    handle.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
    handle.write(payload)


def _read_frame(handle, path: str) -> bytes:
    header = handle.read(_FRAME.size)
    if len(header) < _FRAME.size:
        raise errors.DataError(f"truncated frame in run file {path!r}")
    length, crc = _FRAME.unpack(header)
    payload = handle.read(length)
    if len(payload) < length or zlib.crc32(payload) != crc:
        raise errors.DataError(f"corrupt frame in run file {path!r}")
    return payload


def write_sstable(path: str, entries: List[Entry], *, table: str = "") -> str:
    """Write ``entries`` (pre-sorted by rid) as a run file at ``path``.

    Crash-atomic: a crash mid-write leaves only ``<path>.tmp``, which
    the store's orphan sweep removes; ``path`` appears complete or not
    at all.  Returns ``path``.
    """
    data_rids = [e[1] for e in entries if e[0] == "d"]
    tombstones = [e[1] for e in entries if e[0] == "t"]
    bloom, nbits = _build_bloom(data_rids)
    index: List[Tuple[int, int]] = []

    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(MAGIC)
        for start in range(0, len(entries), BLOCK_ENTRIES):
            block = entries[start:start + BLOCK_ENTRIES]
            index.append((block[0][1], handle.tell()))
            try:
                payload = pickle.dumps(
                    block, protocol=pickle.HIGHEST_PROTOCOL
                )
            except Exception as exc:
                raise errors.DataError(
                    "table rows are not flushable — object columns may "
                    "only hold instances of importable classes: "
                    f"{exc}"
                ) from exc
            _write_frame(handle, payload)
        footer = {
            "table": table,
            "count": len(entries),
            "data_count": len(data_rids),
            "index": index,
            "bloom": bytes(bloom),
            "bloom_bits": nbits,
            "tombstones": tombstones,
        }
        footer_offset = handle.tell()
        _write_frame(
            handle,
            pickle.dumps(footer, protocol=pickle.HIGHEST_PROTOCOL),
        )
        handle.write(_TRAILER.pack(footer_offset, FOOTER_MAGIC))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    return path


class SSTableReader:
    """Read access to one immutable run file.

    The footer (sparse index, Bloom filter, tombstone list) is read
    once at construction and cached.  The file stays open for the
    reader's lifetime: block reads use ``os.pread`` on the held
    descriptor, so they carry no seek state (safe under concurrent
    scans) and POSIX unlink semantics keep in-flight reads working
    after compaction unlinks a victim run out from under them.  The
    descriptor is released when the last reference to the reader is
    dropped — the store never closes a reader explicitly, because a
    concurrent scan may still hold it.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.size = os.path.getsize(path)
        self._handle = open(path, "rb")
        try:
            handle = self._handle
            if handle.read(len(MAGIC)) != MAGIC:
                raise errors.DataError(
                    f"{path!r} is not an LSM run file"
                )
            handle.seek(self.size - _TRAILER.size)
            trailer = handle.read(_TRAILER.size)
            if len(trailer) < _TRAILER.size:
                raise errors.DataError(f"truncated run file {path!r}")
            footer_offset, magic = _TRAILER.unpack(trailer)
            if magic != FOOTER_MAGIC:
                raise errors.DataError(
                    f"run file {path!r} has no footer "
                    "(torn write?)"
                )
            handle.seek(footer_offset)
            footer = pickle.loads(_read_frame(handle, path))
        except BaseException:
            self._handle.close()
            raise
        self.table: str = footer.get("table", "")
        self.count: int = footer["count"]
        self.data_count: int = footer["data_count"]
        self._index: List[Tuple[int, int]] = footer["index"]
        self._index_keys: List[int] = [k for k, _ in self._index]
        self._bloom: bytes = footer["bloom"]
        self._bloom_bits: int = footer["bloom_bits"]
        self.tombstone_rids: frozenset = frozenset(footer["tombstones"])

    # ------------------------------------------------------------------
    # point lookup
    # ------------------------------------------------------------------
    def might_contain(self, rid: int) -> bool:
        """Bloom-filter membership test for a *data* entry of ``rid``
        (no false negatives; ~1-2% false positives)."""
        if not self._index:
            return False
        for probe in _bloom_probes(rid, self._bloom_bits):
            if not self._bloom[probe >> 3] & (1 << (probe & 7)):
                return False
        return True

    def get(self, rid: int) -> Optional[Entry]:
        """Return the data entry for ``rid``, or None.

        Costs one block read: the Bloom filter rejects most misses
        outright, the sparse index names the only candidate block.
        """
        if not self.might_contain(rid):
            return None
        position = bisect.bisect_right(self._index_keys, rid) - 1
        if position < 0:
            return None
        for entry in self._read_block(position):
            if entry[1] == rid and entry[0] == "d":
                return entry
            if entry[1] > rid:
                break
        return None

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def entries(self) -> Iterator[Entry]:
        """All entries in rid order."""
        for position in range(len(self._index)):
            yield from self._read_block(position)

    def data_entries(self) -> Iterator[Entry]:
        """Data entries only, in rid order."""
        for entry in self.entries():
            if entry[0] == "d":
                yield entry

    def _read_block(self, position: int) -> List[Entry]:
        offset = self._index[position][1]
        fd = self._handle.fileno()
        header = os.pread(fd, _FRAME.size, offset)
        if len(header) < _FRAME.size:
            raise errors.DataError(
                f"truncated frame in run file {self.path!r}"
            )
        length, crc = _FRAME.unpack(header)
        payload = os.pread(fd, length, offset + _FRAME.size)
        if len(payload) < length or zlib.crc32(payload) != crc:
            raise errors.DataError(
                f"corrupt frame in run file {self.path!r}"
            )
        return pickle.loads(payload)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SSTableReader {os.path.basename(self.path)} "
            f"table={self.table!r} entries={self.count}>"
        )
