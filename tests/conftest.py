"""Shared fixtures: fresh databases, the paper's example schema and
archives, and cleanup of process-global state (driver registry, default
connection context) between tests."""

from __future__ import annotations

import os

import pytest

from repro import faultpoints
from repro import DriverManager, registry
from repro import Database
from repro.observability import slowlog, stats
from repro.procedures import build_par
from repro import ConnectionContext

from tests import paper_assets


@pytest.fixture(autouse=True)
def _clean_global_state():
    """Isolate tests from the process-wide registry, shared connection
    pools, armed fault plans, the default connection context, and
    observability configuration (slow-query threshold, stats switch)."""
    yield
    faultpoints.uninstall()
    DriverManager.shutdown_pools()
    registry.clear()
    ConnectionContext.set_default_context(None)
    slowlog.configure(None)
    stats.set_enabled(True)


@pytest.fixture
def db():
    """A fresh standard-dialect database."""
    return Database(name="testdb")


@pytest.fixture
def session(db):
    """An autocommit admin session on the fresh database."""
    return db.create_session(autocommit=True)


@pytest.fixture
def emps(session):
    """The paper's ``emps`` table, loaded with a small dataset."""
    session.execute(paper_assets.EMPS_DDL)
    for statement in paper_assets.emps_insert_statements():
        session.execute(statement)
    return session


@pytest.fixture
def routines_par(tmp_path):
    """A par file holding the paper's Routines1-3 (translated to Python)."""
    return build_par(
        os.path.join(str(tmp_path), "routines.par"),
        {
            "routines1": paper_assets.ROUTINES1_SOURCE,
            "routines2": paper_assets.ROUTINES2_SOURCE,
            "routines3": paper_assets.ROUTINES3_SOURCE,
        },
    )


@pytest.fixture
def payroll(emps, routines_par):
    """emps + installed routines par + the paper's routine definitions."""
    session = emps
    session.execute(
        f"call sqlj.install_par('{routines_par}', 'routines_par')"
    )
    for statement in paper_assets.ROUTINE_DDL:
        session.execute(statement)
    return session


@pytest.fixture
def address_par(tmp_path):
    """A par file holding the paper's Address / Address2Line classes."""
    return build_par(
        os.path.join(str(tmp_path), "address.par"),
        {"addressmod": paper_assets.ADDRESS_SOURCE},
    )


@pytest.fixture
def address_types(session, address_par):
    """Session with the paper's addr / addr_2_line types registered."""
    session.execute(
        f"call sqlj.install_par('{address_par}', 'address_par')"
    )
    session.execute(paper_assets.CREATE_TYPE_ADDR)
    session.execute(paper_assets.CREATE_TYPE_ADDR_2_LINE)
    return session
