"""The profile customizer utility.

Deployment-time tool from the paper's "SQLJ installation phase" slides:
it takes translated binaries (a ``.ser`` profile file, or a packaged
``.pjar``) and installs vendor customizations into each profile —
repeatedly, so one binary can accumulate customizations for several
target databases (Customizer1 then Customizer2 in the slides).
"""

from __future__ import annotations

import os
from typing import Iterable, List

from repro import errors
from repro.profiles.customization import DialectCustomization
from repro.profiles.model import Profile
from repro.profiles.pjar import read_pjar, write_pjar_members
from repro.profiles.serialization import (
    SER_SUFFIX,
    load_profile,
    profile_from_bytes,
    profile_to_bytes,
    save_profile,
)

__all__ = ["customize_profile", "customize_profile_file", "customize_pjar"]


def customize_profile(profile: Profile, dialect_name: str) -> Profile:
    """Install a dialect customization into ``profile`` (in place)."""
    customization = DialectCustomization(dialect_name, profile)
    profile.add_customization(customization)
    return profile


def customize_profile_file(path: str, dialect_name: str) -> str:
    """Customize a ``.ser`` profile file in place; returns the path."""
    profile = load_profile(path)
    customize_profile(profile, dialect_name)
    directory = os.path.dirname(path) or "."
    expected = os.path.join(directory, profile.name + SER_SUFFIX)
    if os.path.abspath(expected) != os.path.abspath(path):
        raise errors.CustomizationError(
            f"profile file {path!r} does not match profile name "
            f"{profile.name!r}"
        )
    save_profile(profile, directory)
    return path


def customize_pjar(
    path: str, dialect_names: Iterable[str]
) -> List[str]:
    """Customize every profile inside a packaged ``.pjar``.

    Returns the names of the customized profiles.  Mirrors the paper's
    jar-level installation: ``Foo.jar`` goes in, the same jar with
    customizations added to each ``ProfileN.ser`` member comes out.
    """
    members = read_pjar(path)
    customized: List[str] = []
    dialects = list(dialect_names)
    if not dialects:
        raise errors.CustomizationError("no dialects given to customize")
    for member_name, payload in list(members.items()):
        if not member_name.endswith(SER_SUFFIX):
            continue
        profile = profile_from_bytes(payload)
        for dialect_name in dialects:
            customize_profile(profile, dialect_name)
        members[member_name] = profile_to_bytes(profile)
        customized.append(profile.name)
    if not customized:
        raise errors.CustomizationError(
            f"pjar {path!r} contains no profiles"
        )
    write_pjar_members(path, members)
    return customized
