"""The SQLChecker framework (translate-time analysis).

The paper: "Database vendors plug-in SQL syntax checkers and semantic
analyzers using SQLChecker framework."  A checker receives each profile
entry during translation and returns messages; any error message fails
the translation — this is the paper's headline "ahead-of-time syntax and
type checking".

Two checkers ship with the translator:

* :class:`OfflineChecker` — parses every entry's SQL against the
  standard grammar.  No connection needed; catches syntax errors.
* :class:`OnlineChecker` — connects to an *exemplar schema* (any engine
  :class:`~repro.engine.database.Database` or session whose catalog
  matches the deployment target) and performs full semantic analysis:
  unknown tables/columns/routines/types, type mismatches in predicates
  and assignments, arity errors — and *describes* query entries, feeding
  result-shape information back for typed-iterator checking.

Vendors (tests, applications) can subclass :class:`SQLChecker` and
register additional analyzers per connection-context type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro import errors
from repro.engine import ast
from repro.engine.database import Database, Session
from repro.engine.expressions import ExpressionCompiler, RowShape
from repro.engine.parser import Parser
from repro.engine.planner import plan_query, table_shape
from repro.profiles.model import EntryInfo, TypeInfo
from repro.sqltypes import ObjectType, TypeDescriptor

__all__ = ["CheckMessage", "SQLChecker", "OfflineChecker", "OnlineChecker"]


@dataclass
class CheckMessage:
    """One diagnostic produced by a checker."""

    severity: str  # "error" or "warning"
    message: str
    line: int = 0
    checker: str = ""

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def format(self) -> str:
        location = f"line {self.line}: " if self.line else ""
        source = f" [{self.checker}]" if self.checker else ""
        return f"{location}{self.severity}: {self.message}{source}"


class SQLChecker:
    """Base class for pluggable translate-time checkers."""

    name = "checker"

    def check(self, entry: EntryInfo) -> List[CheckMessage]:
        """Analyse one entry; return diagnostics (empty when clean)."""
        raise NotImplementedError

    def describe(self, entry: EntryInfo) -> Optional[List[TypeInfo]]:
        """Result-column description for QUERY entries, when derivable."""
        return None

    def _error(self, message: str, entry: EntryInfo) -> CheckMessage:
        return CheckMessage("error", message, entry.source_line, self.name)

    def _warning(self, message: str, entry: EntryInfo) -> CheckMessage:
        return CheckMessage(
            "warning", message, entry.source_line, self.name
        )


class OfflineChecker(SQLChecker):
    """Syntax-only checking against the standard grammar."""

    name = "offline-syntax"

    def check(self, entry: EntryInfo) -> List[CheckMessage]:
        try:
            Parser(entry.sql).parse_statement()
        except errors.SQLException as exc:
            return [self._error(f"syntax error: {exc.message}", entry)]
        return []


def _python_type_name(descriptor: Optional[TypeDescriptor]) -> Optional[str]:
    if descriptor is None:
        return None
    if isinstance(descriptor, ObjectType):
        cls = descriptor.python_class
        if cls is None:
            return None
        return f"{cls.__module__}.{cls.__name__}"
    python_types = descriptor.python_types
    return python_types[0].__name__ if python_types else None


class OnlineChecker(SQLChecker):
    """Semantic analysis against an exemplar schema.

    The exemplar plays the paper's role of the "exemplar schema, e.g.
    views, tables, privileges" identified by a connection-context type.
    """

    name = "online-semantic"

    def __init__(self, exemplar: Any) -> None:
        if isinstance(exemplar, Database):
            self.session: Session = exemplar.create_session()
        elif isinstance(exemplar, Session):
            self.session = exemplar
        else:
            raise errors.CheckerError(
                "OnlineChecker requires a Database or Session exemplar"
            )

    # ------------------------------------------------------------------
    def check(self, entry: EntryInfo) -> List[CheckMessage]:
        try:
            statement = Parser(entry.sql).parse_statement()
        except errors.SQLException as exc:
            return [self._error(f"syntax error: {exc.message}", entry)]
        try:
            self._analyse(statement, entry)
        except errors.SQLException as exc:
            return [self._error(exc.message, entry)]
        return []

    def describe(self, entry: EntryInfo) -> Optional[List[TypeInfo]]:
        try:
            statement = Parser(entry.sql).parse_statement()
        except errors.SQLException:
            return None
        if not isinstance(statement, (ast.Select, ast.SetOperation)):
            return None
        try:
            _plan, shape = plan_query(statement, self.session)
        except errors.SQLException:
            return None
        return [
            TypeInfo(
                name=column.name,
                sql_type=(
                    column.descriptor.sql_spelling()
                    if column.descriptor is not None
                    else None
                ),
                python_type_name=_python_type_name(column.descriptor),
            )
            for column in shape.columns
        ]

    # ------------------------------------------------------------------
    def _analyse(
        self, statement: ast.Statement, entry: Optional[EntryInfo] = None
    ) -> None:
        if isinstance(statement, (ast.Select, ast.SetOperation)):
            plan_query(statement, self.session)
        elif isinstance(statement, ast.Insert):
            self._analyse_insert(statement)
        elif isinstance(statement, ast.Update):
            self._analyse_update(statement)
        elif isinstance(statement, ast.Delete):
            self._analyse_delete(statement)
        elif isinstance(statement, ast.Call):
            self._analyse_call(statement, entry)
        # DDL / GRANT / transaction statements: parse-checked only.

    def _analyse_insert(self, statement: ast.Insert) -> None:
        table = self.session.catalog.get_table(statement.table)
        if statement.columns is None:
            positions = list(range(len(table.columns)))
        else:
            positions = [
                table.column_position(name) for name in statement.columns
            ]
        compiler = ExpressionCompiler(RowShape([]), self.session)
        if isinstance(statement.source, ast.ValuesSource):
            for row in statement.source.rows:
                if len(row) != len(positions):
                    raise errors.SQLSyntaxError(
                        f"INSERT expects {len(positions)} values, got "
                        f"{len(row)}"
                    )
                for position, expr in zip(positions, row):
                    column = table.columns[position]
                    compiled = compiler.compile(expr)
                    if isinstance(expr, ast.Literal):
                        column.descriptor.coerce(expr.value)
                    elif compiled.descriptor is not None and not \
                            column.descriptor.assignable_from(
                                compiled.descriptor
                            ):
                        raise errors.InvalidCastError(
                            f"cannot store "
                            f"{compiled.descriptor.sql_spelling()} into "
                            f"column {column.name!r} "
                            f"({column.descriptor.sql_spelling()})"
                        )
        else:
            _plan, shape = plan_query(statement.source, self.session)
            if len(shape) != len(positions):
                raise errors.SQLSyntaxError(
                    f"INSERT expects {len(positions)} columns, the query "
                    f"supplies {len(shape)}"
                )

    def _analyse_update(self, statement: ast.Update) -> None:
        table = self.session.catalog.get_table(statement.table)
        shape = table_shape(table)
        compiler = ExpressionCompiler(shape, self.session)
        for assignment in statement.assignments:
            compiled = compiler.compile(assignment.value)
            if isinstance(assignment.target, str):
                position = table.column_position(assignment.target)
                column = table.columns[position]
                if isinstance(assignment.value, ast.Literal):
                    column.descriptor.coerce(assignment.value.value)
                elif compiled.descriptor is not None and not \
                        column.descriptor.assignable_from(
                            compiled.descriptor
                        ):
                    raise errors.InvalidCastError(
                        f"cannot store "
                        f"{compiled.descriptor.sql_spelling()} into column "
                        f"{column.name!r} "
                        f"({column.descriptor.sql_spelling()})"
                    )
            else:
                self._analyse_attribute_path(table, assignment.target)
        if statement.where is not None:
            compiler.compile(statement.where)

    def _analyse_attribute_path(
        self, table: Any, target: ast.AttributePath
    ) -> None:
        position = table.column_position(target.column)
        descriptor = table.columns[position].descriptor
        if not isinstance(descriptor, ObjectType):
            raise errors.SQLSyntaxError(
                f"column {target.column!r} is not of an object type"
            )
        udt = self.session.catalog.get_type(descriptor.udt_name)
        for attribute in target.attributes:
            binding = udt.find_attribute(attribute)
            if binding is None:
                raise errors.UndefinedColumnError(
                    f"type {udt.name!r} has no attribute {attribute!r}"
                )
            if isinstance(binding.descriptor, ObjectType):
                udt = self.session.catalog.get_type(
                    binding.descriptor.udt_name
                )

    def _analyse_delete(self, statement: ast.Delete) -> None:
        table = self.session.catalog.get_table(statement.table)
        if statement.where is not None:
            compiler = ExpressionCompiler(table_shape(table), self.session)
            compiler.compile(statement.where)

    def _analyse_call(
        self, statement: ast.Call, entry: Optional[EntryInfo] = None
    ) -> None:
        routine = self.session.catalog.get_routine(statement.procedure)
        if routine.is_function:
            raise errors.SQLSyntaxError(
                f"{statement.procedure!r} is a function, not a procedure"
            )
        if len(statement.args) != len(routine.params):
            raise errors.SQLSyntaxError(
                f"procedure {statement.procedure!r} takes "
                f"{len(routine.params)} arguments, got "
                f"{len(statement.args)}"
            )
        if entry is None:
            return
        # Host-variable modes must match the routine's parameter modes:
        # ``:OUT x`` on an IN parameter (or vice versa) is a translate-
        # time error, like registering the wrong JDBC OUT parameter.
        for position, arg in enumerate(statement.args):
            if not isinstance(arg, ast.Parameter):
                continue
            if arg.index >= len(entry.param_types):
                continue
            declared = entry.param_types[arg.index].mode
            actual = routine.params[position].mode
            if declared != actual and not (
                declared == "IN" and actual == "IN"
            ):
                raise errors.SQLSyntaxError(
                    f"host variable "
                    f"{entry.param_types[arg.index].name!r} is declared "
                    f":{declared} but parameter "
                    f"{routine.params[position].name!r} of "
                    f"{statement.procedure!r} is {actual}"
                )
