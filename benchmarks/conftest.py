"""Benchmark-suite fixtures and global-state hygiene."""

import pytest

from repro.dbapi.driver import registry
from repro import ConnectionContext


@pytest.fixture(autouse=True)
def _clean_global_state():
    yield
    registry.clear()
    ConnectionContext.set_default_context(None)
