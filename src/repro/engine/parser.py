"""Recursive-descent SQL parser.

Builds :mod:`repro.engine.ast` trees from SQL text.  The grammar covers
everything the paper's examples need:

* queries with joins, grouping, set operations, ordering and row limits
  (limit syntax per :class:`~repro.engine.dialects.Dialect`),
* INSERT / UPDATE / DELETE, including Part 2 attribute-path update targets
  (``set home_addr>>zip = ...``),
* CREATE TABLE / VIEW / PROCEDURE / FUNCTION / TYPE, DROP, GRANT / REVOKE,
* CALL with OUT-parameter markers, COMMIT / ROLLBACK,
* Part 2 expressions: ``new type(args)`` constructors and ``>>``
  attribute / method references.

The parser is dialect-aware so that one engine binary can simulate several
vendors (see :mod:`repro.engine.dialects`).
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro import errors
from repro.engine import ast
from repro.engine.dialects import STANDARD, Dialect
from repro.engine.lexer import Lexer, Token

__all__ = ["Parser", "parse_statement", "parse_expression"]

#: Keywords that may still be used as ordinary identifiers (column or
#: table names).  ``name`` matters most — the paper's example table has a
#: ``name`` column.
_NON_RESERVED = frozenset(
    """
    NAME DATA TYPE LANGUAGE RESULT SETS STYLE PAR USAGE KEY ORDERING
    METHOD STATIC PUBLIC OPTION FIRST NEXT ONLY TOP ROW ROWS SQL JAVA
    PYTHON DATATYPE READS MODIFIES CONTAINS EXTERNAL PARAMETER DYNAMIC
    UNDER NO BEGIN CASCADE RESTRICT NEW
    """.split()
)

_COMPARISON_OPS = frozenset(["=", "<>", "!=", "<", "<=", ">", ">="])
_AGGREGATE_NAMES = frozenset(["COUNT", "SUM", "AVG", "MIN", "MAX"])

#: Multi-word type names that begin with a keyword.
_TYPE_KEYWORDS = frozenset(
    ["CHAR", "CHARACTER", "VARCHAR", "DECIMAL", "INTEGER"]
)


class Parser:
    """One-shot parser over a single SQL statement."""

    def __init__(self, text: str, dialect: Dialect = STANDARD) -> None:
        self.text = text
        self.dialect = dialect
        self.tokens = list(Lexer(text).tokens())
        self.index = 0
        self._param_count = 0

    # ------------------------------------------------------------------
    # token-stream helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.current
        if token.kind != Token.EOF:
            self.index += 1
        return token

    def _error(self, message: str) -> errors.SQLParseError:
        token = self.current
        return errors.SQLParseError(message, token.line, token.column)

    def _at_keyword(self, *words: str) -> bool:
        return self.current.kind == Token.KEYWORD and self.current.value in words

    def _accept_keyword(self, *words: str) -> Optional[str]:
        if self._at_keyword(*words):
            return self._advance().value
        return None

    def _expect_keyword(self, *words: str) -> str:
        if not self._at_keyword(*words):
            raise self._error(
                f"expected {' or '.join(words)}, found {self.current.value!r}"
            )
        return self._advance().value

    def _at_op(self, *ops: str) -> bool:
        return self.current.kind == Token.OP and self.current.value in ops

    def _accept_op(self, *ops: str) -> Optional[str]:
        if self._at_op(*ops):
            return self._advance().value
        return None

    def _expect_op(self, op: str) -> None:
        if not self._at_op(op):
            raise self._error(
                f"expected {op!r}, found {self.current.value!r}"
            )
        self._advance()

    def _expect_identifier(self, what: str = "identifier") -> str:
        token = self.current
        if token.kind == Token.IDENT:
            self._advance()
            return token.value
        if token.kind == Token.KEYWORD and token.value in _NON_RESERVED:
            self._advance()
            return token.value.lower()
        raise self._error(f"expected {what}, found {token.value!r}")

    def _at_identifier(self) -> bool:
        token = self.current
        return token.kind == Token.IDENT or (
            token.kind == Token.KEYWORD and token.value in _NON_RESERVED
        )

    def _qualified_name(self) -> str:
        """Parse a dotted name such as ``sqlj.install_par``."""
        parts = [self._expect_identifier("name")]
        while self._at_op(".") and self._peek().kind in (
            Token.IDENT,
            Token.KEYWORD,
        ):
            self._advance()
            parts.append(self._expect_identifier("name part"))
        return ".".join(parts)

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def parse_statement(self) -> ast.Statement:
        """Parse exactly one statement (trailing ``;`` allowed)."""
        statement = self._statement()
        self._accept_op(";")
        if self.current.kind != Token.EOF:
            raise self._error(
                f"unexpected trailing input {self.current.value!r}"
            )
        return statement

    def parse_expression_only(self) -> ast.Expression:
        """Parse a standalone scalar expression (used in tests/tools)."""
        expr = self._expression()
        if self.current.kind != Token.EOF:
            raise self._error(
                f"unexpected trailing input {self.current.value!r}"
            )
        return expr

    def _statement(self) -> ast.Statement:
        if self._at_keyword("SELECT") or self._at_op("("):
            return self._query_expression()
        if self._at_keyword("INSERT"):
            return self._insert()
        if self._at_keyword("UPDATE"):
            return self._update()
        if self._at_keyword("DELETE"):
            return self._delete()
        if self._at_keyword("CREATE"):
            return self._create()
        if self._at_keyword("DROP"):
            return self._drop()
        if self._at_keyword("GRANT"):
            return self._grant_or_revoke(is_grant=True)
        if self._at_keyword("REVOKE"):
            return self._grant_or_revoke(is_grant=False)
        if self._at_keyword("CALL"):
            return self._call()
        if self._accept_keyword("EXPLAIN"):
            # ANALYZE is not reserved; it arrives as a (lowercased)
            # identifier token.
            analyze = False
            fmt = "text"
            if (
                self._at_op("(")
                and self._peek().kind == Token.IDENT
                and self._peek().value in ("analyze", "format")
            ):
                # EXPLAIN (option, ...) — e.g. EXPLAIN (FORMAT JSON).
                # A parenthesised *query* always starts with SELECT or
                # another paren, so the identifier lookahead is safe.
                analyze, fmt = self._explain_options()
            if self.current.kind == Token.IDENT \
                    and self.current.value == "analyze":
                self._advance()
                analyze = True
            query = self._query_expression()
            return ast.Explain(query, analyze=analyze, format=fmt)
        if self.current.kind == Token.IDENT \
                and self.current.value == "analyze":
            self._advance()
            table = None
            if self._at_identifier():
                table = self._qualified_name()
            return ast.Analyze(table)
        if self._at_keyword("ALTER"):
            return self._alter_table()
        if self._accept_keyword("COMMIT"):
            self._accept_work()
            return ast.Commit()
        if self._accept_keyword("ROLLBACK"):
            self._accept_work()
            if self._accept_keyword("TO"):
                self._accept_keyword("SAVEPOINT")
                return ast.RollbackTo(
                    self._expect_identifier("savepoint name")
                )
            return ast.Rollback()
        if self._accept_keyword("SAVEPOINT"):
            return ast.Savepoint(
                self._expect_identifier("savepoint name")
            )
        if self._accept_keyword("RELEASE"):
            self._accept_keyword("SAVEPOINT")
            return ast.ReleaseSavepoint(
                self._expect_identifier("savepoint name")
            )
        raise self._error(
            f"unrecognised statement start {self.current.value!r}"
        )

    def _explain_options(self) -> "tuple[bool, str]":
        """Parse the parenthesised EXPLAIN option list.

        Supports ``ANALYZE`` and ``FORMAT {TEXT | JSON}``, comma
        separated, in the PostgreSQL style: ``EXPLAIN (FORMAT JSON)
        SELECT ...``.
        """
        self._expect_op("(")
        analyze = False
        fmt = "text"
        while True:
            option = self._expect_identifier("EXPLAIN option").lower()
            if option == "analyze":
                analyze = True
            elif option == "format":
                value = self._expect_identifier("format name").lower()
                if value not in ("text", "json"):
                    raise self._error(
                        f"unsupported EXPLAIN format {value!r}"
                    )
                fmt = value
            else:
                raise self._error(f"unknown EXPLAIN option {option!r}")
            if not self._accept_op(","):
                break
        self._expect_op(")")
        return analyze, fmt

    def _accept_work(self) -> None:
        """Consume the optional WORK noise word after COMMIT/ROLLBACK."""
        if self.current.kind == Token.IDENT and \
                self.current.value == "work":
            self._advance()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _query_expression(self) -> ast.QueryExpr:
        left = self._intersect_term()
        while self._at_keyword("UNION", "EXCEPT"):
            op = self._advance().value
            all_rows = bool(self._accept_keyword("ALL"))
            if not all_rows:
                self._accept_keyword("DISTINCT")
            right = self._intersect_term()
            left = ast.SetOperation(op, all_rows, left, right)
            self._hoist_order_by(left, right)
        if isinstance(left, ast.SetOperation) and self._at_keyword("ORDER"):
            left.order_by = self._order_by()
        return left

    def _intersect_term(self) -> ast.QueryExpr:
        left = self._query_term()
        while self._at_keyword("INTERSECT"):
            self._advance()
            all_rows = bool(self._accept_keyword("ALL"))
            if not all_rows:
                self._accept_keyword("DISTINCT")
            right = self._query_term()
            left = ast.SetOperation("INTERSECT", all_rows, left, right)
            self._hoist_order_by(left, right)
        return left

    @staticmethod
    def _hoist_order_by(
        operation: ast.SetOperation, right: ast.QueryExpr
    ) -> None:
        # An ORDER BY written after the last operand belongs to the
        # whole set operation, but _select_block has already consumed
        # it into the right-hand SELECT; hoist it.
        if isinstance(right, ast.Select) and right.order_by:
            operation.order_by = right.order_by
            right.order_by = []

    def _query_term(self) -> ast.QueryExpr:
        if self._accept_op("("):
            query = self._query_expression()
            self._expect_op(")")
            return query
        return self._select_block()

    def _select_block(self) -> ast.Select:
        self._expect_keyword("SELECT")
        select = ast.Select()

        if self._accept_keyword("DISTINCT"):
            select.distinct = True
        else:
            self._accept_keyword("ALL")

        # Dialect "acme": SELECT TOP n ...
        if self.dialect.limit_style == "top" and self._at_keyword("TOP"):
            self._advance()
            select.limit = self._primary()

        select.items = self._select_items()

        if self._accept_keyword("FROM"):
            select.from_clause = [self._table_reference()]
            while self._accept_op(","):
                select.from_clause.append(self._table_reference())

        if self._accept_keyword("WHERE"):
            select.where = self._expression()

        if self._at_keyword("GROUP"):
            self._advance()
            self._expect_keyword("BY")
            select.group_by.append(self._expression())
            while self._accept_op(","):
                select.group_by.append(self._expression())

        if self._accept_keyword("HAVING"):
            select.having = self._expression()

        if self._at_keyword("ORDER"):
            select.order_by = self._order_by()

        self._row_limit_clause(select)
        return select

    def _row_limit_clause(self, select: ast.Select) -> None:
        style = self.dialect.limit_style
        if style == "limit" and self._accept_keyword("LIMIT"):
            select.limit = self._primary()
            if self._accept_keyword("OFFSET"):
                select.offset = self._primary()
        elif style == "fetch_first" and self._at_keyword("FETCH"):
            self._advance()
            self._expect_keyword("FIRST", "NEXT")
            select.limit = self._primary()
            self._expect_keyword("ROWS", "ROW")
            self._expect_keyword("ONLY")

    def _select_items(self) -> List[ast.Node]:
        items: List[ast.Node] = [self._select_item()]
        while self._accept_op(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> ast.Node:
        if self._at_op("*"):
            self._advance()
            return ast.StarItem()
        # t.* form
        if (
            self._at_identifier()
            and self._peek().matches(Token.OP, ".")
            and self._peek(2).matches(Token.OP, "*")
        ):
            table = self._expect_identifier()
            self._advance()  # .
            self._advance()  # *
            return ast.StarItem(table)
        expr = self._expression()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("column alias")
        elif self._at_identifier():
            alias = self._expect_identifier("column alias")
        return ast.SelectItem(expr, alias)

    def _order_by(self) -> List[ast.OrderItem]:
        self._expect_keyword("ORDER")
        self._expect_keyword("BY")
        items = [self._order_item()]
        while self._accept_op(","):
            items.append(self._order_item())
        return items

    def _order_item(self) -> ast.OrderItem:
        expr = self._expression()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expr, ascending)

    def _table_reference(self) -> ast.TableRef:
        left = self._table_primary()
        while True:
            if self._at_keyword("CROSS"):
                self._advance()
                self._expect_keyword("JOIN")
                right = self._table_primary()
                left = ast.Join("CROSS", left, right)
                continue
            kind = None
            if self._at_keyword("JOIN"):
                kind = "INNER"
                self._advance()
            elif self._at_keyword("INNER"):
                self._advance()
                self._expect_keyword("JOIN")
                kind = "INNER"
            elif self._at_keyword("LEFT", "RIGHT", "FULL"):
                kind = self._advance().value
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
            if kind is None:
                return left
            right = self._table_primary()
            self._expect_keyword("ON")
            condition = self._expression()
            left = ast.Join(kind, left, right, condition)

    def _table_primary(self) -> ast.TableRef:
        if self._accept_op("("):
            # Either a parenthesised join or a derived table.
            if self._at_keyword("SELECT"):
                query = self._query_expression()
                self._expect_op(")")
                self._accept_keyword("AS")
                alias = self._expect_identifier("derived-table alias")
                return ast.SubqueryRef(query, alias)
            inner = self._table_reference()
            self._expect_op(")")
            return inner
        name = self._qualified_name()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("table alias")
        elif self._at_identifier():
            alias = self._expect_identifier("table alias")
        return ast.TableName(name, alias)

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def _insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._qualified_name()
        columns: Optional[List[str]] = None
        if self._at_op("(") and self._is_column_list_ahead():
            self._advance()
            columns = [self._expect_identifier("column name")]
            while self._accept_op(","):
                columns.append(self._expect_identifier("column name"))
            self._expect_op(")")
        if self._accept_keyword("VALUES"):
            source = ast.ValuesSource([self._value_row()])
            while self._accept_op(","):
                source.rows.append(self._value_row())
            return ast.Insert(table, columns, source)
        query = self._query_expression()
        return ast.Insert(table, columns, query)

    def _is_column_list_ahead(self) -> bool:
        """Distinguish ``INSERT INTO t (a, b) VALUES`` from
        ``INSERT INTO t (SELECT ...)``."""
        return not self._peek().matches(Token.KEYWORD, "SELECT")

    def _value_row(self) -> List[ast.Expression]:
        self._expect_op("(")
        row = [self._expression()]
        while self._accept_op(","):
            row.append(self._expression())
        self._expect_op(")")
        return row

    def _update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._qualified_name()
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._accept_op(","):
            assignments.append(self._assignment())
        where = self._expression() if self._accept_keyword("WHERE") else None
        return ast.Update(table, assignments, where)

    def _assignment(self) -> ast.Assignment:
        column = self._expect_identifier("column name")
        if self._at_op(">>"):
            attributes = []
            while self._accept_op(">>"):
                attributes.append(self._expect_identifier("attribute name"))
            self._expect_op("=")
            value = self._expression()
            return ast.Assignment(
                ast.AttributePath(column, attributes), value
            )
        self._expect_op("=")
        return ast.Assignment(column, self._expression())

    def _delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._qualified_name()
        where = self._expression() if self._accept_keyword("WHERE") else None
        return ast.Delete(table, where)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def _create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        if self._at_keyword("TABLE"):
            return self._create_table()
        if self._at_keyword("VIEW"):
            return self._create_view()
        if self._at_keyword("PROCEDURE", "FUNCTION"):
            return self._create_routine()
        if self._at_keyword("TYPE"):
            return self._create_type()
        # INDEX is a soft keyword (not reserved): it lexes as an
        # identifier, exactly like EXPLAIN's ANALYZE.
        if self.current.kind == Token.IDENT and \
                self.current.value == "index":
            return self._create_index()
        raise self._error(
            f"cannot CREATE {self.current.value!r}"
        )

    def _create_index(self) -> ast.CreateIndex:
        self._advance()  # the soft keyword INDEX
        name = self._qualified_name()
        self._expect_keyword("ON")
        table = self._qualified_name()
        self._expect_op("(")
        columns = [self._expect_identifier("column name")]
        while self._accept_op(","):
            columns.append(self._expect_identifier("column name"))
        self._expect_op(")")
        return ast.CreateIndex(name, table, columns)

    def _create_table(self) -> ast.CreateTable:
        self._expect_keyword("TABLE")
        name = self._qualified_name()
        self._expect_op("(")
        columns = [self._column_def()]
        while self._accept_op(","):
            columns.append(self._column_def())
        self._expect_op(")")
        return ast.CreateTable(name, columns)

    def _column_def(self) -> ast.ColumnDef:
        name = self._expect_identifier("column name")
        type_spelling = self._type_spelling()
        definition = ast.ColumnDef(name, type_spelling)
        while True:
            if self._at_keyword("NOT") and self._peek().matches(
                Token.KEYWORD, "NULL"
            ):
                self._advance()
                self._advance()
                definition.not_null = True
            elif self._accept_keyword("DEFAULT"):
                definition.default = self._expression()
            elif self._accept_keyword("UNIQUE"):
                definition.unique = True
            elif self._at_keyword("PRIMARY"):
                self._advance()
                self._expect_keyword("KEY")
                definition.primary_key = True
                definition.unique = True
                definition.not_null = True
            else:
                break
        return definition

    def _type_spelling(self) -> str:
        """Consume a type and return its canonical spelling string."""
        token = self.current
        if token.kind == Token.KEYWORD and token.value in _TYPE_KEYWORDS:
            self._advance()
            name = token.value
            if name == "CHARACTER" and self._at_keyword("VARYING"):
                # Not in KEYWORDS; handled as ident below.  Kept for safety.
                self._advance()
                name = "VARCHAR"
            params = self._maybe_type_params()
            return name + params
        if token.kind == Token.IDENT or (
            token.kind == Token.KEYWORD and token.value in _NON_RESERVED
        ):
            name = self._expect_identifier("type name")
            if name == "double" and self._at_identifier():
                follower = self._expect_identifier()
                if follower != "precision":
                    raise self._error(
                        f"unexpected token {follower!r} after DOUBLE"
                    )
                return "DOUBLE PRECISION"
            params = self._maybe_type_params()
            return name + params
        raise self._error(f"expected a type, found {token.value!r}")

    def _maybe_type_params(self) -> str:
        if not self._at_op("("):
            return ""
        self._advance()
        first = self.current
        if first.kind != Token.NUMBER:
            raise self._error("expected numeric type parameter")
        self._advance()
        text = f"({first.value}"
        if self._accept_op(","):
            second = self.current
            if second.kind != Token.NUMBER:
                raise self._error("expected numeric type parameter")
            self._advance()
            text += f",{second.value}"
        self._expect_op(")")
        return text + ")"

    def _create_view(self) -> ast.CreateView:
        self._expect_keyword("VIEW")
        name = self._qualified_name()
        column_names: Optional[List[str]] = None
        if self._accept_op("("):
            column_names = [self._expect_identifier("column name")]
            while self._accept_op(","):
                column_names.append(self._expect_identifier("column name"))
            self._expect_op(")")
        self._expect_keyword("AS")
        query = self._query_expression()
        return ast.CreateView(name, column_names, query)

    # -- routines (SQLJ Part 1) ----------------------------------------
    def _create_routine(self) -> ast.CreateRoutine:
        kind = self._expect_keyword("PROCEDURE", "FUNCTION")
        name = self._qualified_name()
        params: List[ast.ParamDef] = []
        if self._accept_op("("):
            if not self._at_op(")"):
                params.append(self._param_def(kind))
                while self._accept_op(","):
                    params.append(self._param_def(kind))
            self._expect_op(")")

        routine = ast.CreateRoutine(kind=kind, name=name, params=params)

        if kind == "FUNCTION":
            self._expect_keyword("RETURNS")
            routine.returns = self._type_spelling()

        # Characteristic clauses may appear in any order.
        while True:
            if self._accept_keyword("MODIFIES"):
                self._expect_keyword("SQL")
                self._expect_keyword("DATA")
                routine.data_access = "MODIFIES SQL DATA"
            elif self._accept_keyword("READS"):
                self._expect_keyword("SQL")
                self._expect_keyword("DATA")
                routine.data_access = "READS SQL DATA"
            elif self._at_keyword("NO") and self._peek().matches(
                Token.KEYWORD, "SQL"
            ):
                self._advance()
                self._advance()
                routine.data_access = "NO SQL"
            elif self._at_keyword("CONTAINS") and self._peek().matches(
                Token.KEYWORD, "SQL"
            ):
                self._advance()
                self._advance()
                routine.data_access = "CONTAINS SQL"
            elif self._accept_keyword("DYNAMIC"):
                self._expect_keyword("RESULT")
                self._expect_keyword("SETS")
                count = self.current
                if count.kind != Token.NUMBER:
                    raise self._error("expected result-set count")
                self._advance()
                routine.dynamic_result_sets = int(count.value)
            elif self._accept_keyword("EXTERNAL"):
                self._expect_keyword("NAME")
                routine.external_name = self._external_name()
            elif self._accept_keyword("LANGUAGE"):
                routine.language = self._expect_keyword("PYTHON", "JAVA", "SQL")
            elif self._accept_keyword("PARAMETER"):
                self._expect_keyword("STYLE")
                routine.parameter_style = self._expect_keyword(
                    "PYTHON", "JAVA", "SQL"
                )
            else:
                break
        return routine

    def _param_def(self, routine_kind: str) -> ast.ParamDef:
        mode = "IN"
        if self._at_keyword("IN", "OUT", "INOUT") and not (
            # ``IN`` could in principle collide with nothing here; modes
            # are only recognised when followed by an identifier.
            False
        ):
            keyword = self.current.value
            nxt = self._peek()
            if nxt.kind == Token.IDENT or (
                nxt.kind == Token.KEYWORD and nxt.value in _NON_RESERVED
            ):
                mode = keyword
                self._advance()
        name = self._expect_identifier("parameter name")
        type_spelling = self._type_spelling()
        return ast.ParamDef(name, type_spelling, mode)

    def _external_name(self) -> str:
        """Parse an EXTERNAL NAME value.

        Accepts either a string literal (``'routines1_par:routines1.region'``)
        or the paper's unquoted form (``routines1_jar:Routines1.region``).
        The unquoted form is recovered from source text so that host-language
        case is preserved.
        """
        if self.current.kind == Token.STRING:
            return self._advance().value
        start = self.current
        if start.kind not in (Token.IDENT, Token.KEYWORD):
            raise self._error("expected EXTERNAL NAME value")
        end_pos = start.pos + len(start.value)
        self._advance()
        while self._at_op(":", ".") or self.current.kind in (
            Token.IDENT,
            Token.NUMBER,
        ):
            if self._at_op(":") or self._at_op("."):
                token = self._advance()
                end_pos = token.pos + 1
                continue
            token = self.current
            # Stop at clause keywords that could follow.
            if token.kind == Token.KEYWORD:
                break
            self._advance()
            end_pos = token.pos + len(token.value)
        return self.text[start.pos:end_pos]

    # -- user-defined types (SQLJ Part 2) --------------------------------
    def _create_type(self) -> ast.CreateType:
        self._expect_keyword("TYPE")
        name = self._qualified_name()
        under: Optional[str] = None
        if self._accept_keyword("UNDER"):
            under = self._qualified_name()
        external_name = ""
        language = "PYTHON"
        # Header clauses before the member list, any order.
        while True:
            if self._accept_keyword("EXTERNAL"):
                self._expect_keyword("NAME")
                external_name = self._external_name()
            elif self._accept_keyword("LANGUAGE"):
                language = self._expect_keyword("PYTHON", "JAVA")
            else:
                break
        create = ast.CreateType(
            name=name,
            external_name=external_name,
            under=under,
            language=language,
        )
        if self._accept_op("("):
            if not self._at_op(")"):
                self._type_member(create)
                while self._accept_op(",") or self._accept_op(";"):
                    if self._at_op(")"):
                        break
                    self._type_member(create)
            self._expect_op(")")
        return create

    def _type_member(self, create: ast.CreateType) -> None:
        static = bool(self._accept_keyword("STATIC"))
        if self._accept_keyword("METHOD"):
            self._method_def(create, static)
            return
        if not static and self._at_keyword("ORDERING"):
            self._ordering_spec(create)
            return
        # attribute: name type EXTERNAL NAME ext
        sql_name = self._expect_identifier("attribute name")
        type_spelling = self._type_spelling()
        self._expect_keyword("EXTERNAL")
        self._expect_keyword("NAME")
        external = self._external_name()
        create.attributes.append(
            ast.AttrDef(sql_name, type_spelling, external, static)
        )

    def _ordering_spec(self, create: ast.CreateType) -> None:
        """``ordering [full | equals only] by method <name>``"""
        self._expect_keyword("ORDERING")
        if create.ordering is not None:
            raise self._error("duplicate ORDERING clause")
        kind = "FULL"
        if self._accept_keyword("FULL"):
            kind = "FULL"
        elif self._at_identifier() and self.current.value == "equals":
            self._advance()
            self._expect_keyword("ONLY")
            kind = "EQUALS"
        self._expect_keyword("BY")
        self._expect_keyword("METHOD")
        method = self._expect_identifier("ordering method name")
        create.ordering = ast.OrderingSpec(kind, method)

    def _method_def(self, create: ast.CreateType, static: bool) -> None:
        sql_name = self._expect_identifier("method name")
        params: List[ast.ParamDef] = []
        self._expect_op("(")
        if not self._at_op(")"):
            params.append(self._param_def("METHOD"))
            while self._accept_op(","):
                params.append(self._param_def("METHOD"))
        self._expect_op(")")
        returns: Optional[str] = None
        if self._accept_keyword("RETURNS"):
            returns = self._type_spelling()
        self._expect_keyword("EXTERNAL")
        self._expect_keyword("NAME")
        external = self._external_name()
        create.methods.append(
            ast.MethodDef(sql_name, params, returns, external, static)
        )

    def _alter_table(self) -> ast.AlterTable:
        self._expect_keyword("ALTER")
        self._expect_keyword("TABLE")
        table = self._qualified_name()
        if self._accept_keyword("ADD"):
            self._accept_keyword("COLUMN")
            return ast.AlterTable(
                table, "ADD", column_def=self._column_def()
            )
        if self._accept_keyword("DROP"):
            self._accept_keyword("COLUMN")
            name = self._expect_identifier("column name")
            return ast.AlterTable(table, "DROP", column_name=name)
        raise self._error(
            "expected ADD or DROP after ALTER TABLE"
        )

    def _drop(self) -> ast.Drop:
        self._expect_keyword("DROP")
        if self.current.kind == Token.IDENT and \
                self.current.value == "index":
            self._advance()  # soft keyword, see _create_index
            kind = "INDEX"
        else:
            kind = self._expect_keyword(
                "TABLE", "VIEW", "PROCEDURE", "FUNCTION", "TYPE"
            )
        name = self._qualified_name()
        self._accept_keyword("CASCADE", "RESTRICT")
        return ast.Drop(kind, name)

    # ------------------------------------------------------------------
    # access control
    # ------------------------------------------------------------------
    def _grant_or_revoke(
        self, is_grant: bool
    ) -> Union[ast.Grant, ast.Revoke]:
        self._expect_keyword("GRANT" if is_grant else "REVOKE")
        privilege = self._privilege_name()
        self._expect_keyword("ON")
        object_kind = self._object_kind_for(privilege)
        object_name = self._qualified_name()
        self._expect_keyword("TO" if is_grant else "FROM")
        grantees = [self._grantee()]
        while self._accept_op(","):
            grantees.append(self._grantee())
        node_class = ast.Grant if is_grant else ast.Revoke
        return node_class(privilege, object_kind, object_name, grantees)

    def _privilege_name(self) -> str:
        token = self.current
        if token.kind == Token.KEYWORD and token.value in (
            "SELECT",
            "INSERT",
            "UPDATE",
            "DELETE",
            "EXECUTE",
            "USAGE",
            "ALL",
        ):
            self._advance()
            return token.value
        raise self._error(f"expected a privilege, found {token.value!r}")

    def _object_kind_for(self, privilege: str) -> str:
        """Resolve the optional object-kind keyword after ON.

        ``grant usage on datatype addr`` names the kind explicitly; the
        paper's ``grant usage on routines1_jar`` leaves it implicit (an
        installed archive).  Table privileges default to TABLE.
        """
        if self._at_keyword("DATATYPE", "TYPE"):
            self._advance()
            return "DATATYPE"
        if self._at_keyword("TABLE"):
            self._advance()
            return "TABLE"
        if self._at_keyword("PAR"):
            self._advance()
            return "PAR"
        if self._at_keyword("PROCEDURE", "FUNCTION"):
            self._advance()
            return "ROUTINE"
        if privilege == "USAGE":
            return "PAR"
        if privilege == "EXECUTE":
            return "ROUTINE"
        return "TABLE"

    def _grantee(self) -> str:
        if self._accept_keyword("PUBLIC"):
            return "public"
        return self._expect_identifier("grantee")

    # ------------------------------------------------------------------
    # CALL
    # ------------------------------------------------------------------
    def _call(self) -> ast.Call:
        self._expect_keyword("CALL")
        name = self._qualified_name()
        args: List[ast.Expression] = []
        if self._accept_op("("):
            if not self._at_op(")"):
                args.append(self._expression())
                while self._accept_op(","):
                    args.append(self._expression())
            self._expect_op(")")
        return ast.Call(name, args)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _expression(self) -> ast.Expression:
        return self._or_expression()

    def _or_expression(self) -> ast.Expression:
        left = self._and_expression()
        while self._at_keyword("OR"):
            self._advance()
            left = ast.Binary("OR", left, self._and_expression())
        return left

    def _and_expression(self) -> ast.Expression:
        left = self._not_expression()
        while self._at_keyword("AND"):
            self._advance()
            left = ast.Binary("AND", left, self._not_expression())
        return left

    def _not_expression(self) -> ast.Expression:
        if self._accept_keyword("NOT"):
            return ast.Unary("NOT", self._not_expression())
        return self._predicate()

    def _predicate(self) -> ast.Expression:
        if self._at_keyword("EXISTS"):
            self._advance()
            self._expect_op("(")
            query = self._query_expression()
            self._expect_op(")")
            return ast.Exists(query)

        left = self._additive()

        if self._at_op(*_COMPARISON_OPS):
            op = self._advance().value
            if op == "!=":
                op = "<>"
            right = self._additive()
            return ast.Binary(op, left, right)

        negated = False
        if self._at_keyword("NOT") and self._peek().kind == Token.KEYWORD \
                and self._peek().value in ("IN", "BETWEEN", "LIKE", "NULL"):
            self._advance()
            negated = True

        if self._accept_keyword("IS"):
            is_negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return ast.IsNull(left, is_negated)

        if self._accept_keyword("BETWEEN"):
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            return ast.Between(left, low, high, negated)

        if self._accept_keyword("LIKE"):
            pattern = self._additive()
            escape = None
            if self._accept_keyword("ESCAPE"):
                escape = self._additive()
            return ast.Like(left, pattern, escape, negated)

        if self._accept_keyword("IN"):
            self._expect_op("(")
            if self._at_keyword("SELECT"):
                query = self._query_expression()
                self._expect_op(")")
                return ast.InSubquery(left, query, negated)
            items = [self._expression()]
            while self._accept_op(","):
                items.append(self._expression())
            self._expect_op(")")
            return ast.InList(left, items, negated)

        if negated:
            raise self._error("dangling NOT in predicate")
        return left

    def _additive(self) -> ast.Expression:
        left = self._multiplicative()
        while True:
            if self._at_op("+", "-"):
                op = self._advance().value
                left = ast.Binary(op, left, self._multiplicative())
            elif self._at_op("||"):
                if not self.dialect.allows_double_pipe_concat:
                    raise self._error(
                        f"dialect {self.dialect.name!r} does not support ||"
                    )
                self._advance()
                left = ast.Binary("||", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expression:
        left = self._unary()
        while self._at_op("*", "/", "%"):
            op = self._advance().value
            left = ast.Binary(op, left, self._unary())
        return left

    def _unary(self) -> ast.Expression:
        if self._at_op("-", "+"):
            op = self._advance().value
            return ast.Unary(op, self._unary())
        return self._postfix()

    def _postfix(self) -> ast.Expression:
        expr = self._primary()
        while self._at_op(">>"):
            self._advance()
            member = self._expect_identifier("member name")
            if self._at_op("("):
                args = self._call_args()
                expr = ast.MethodCall(expr, member, args)
            else:
                expr = ast.AttributeRef(expr, member)
        return expr

    def _call_args(self) -> List[ast.Expression]:
        self._expect_op("(")
        args: List[ast.Expression] = []
        if not self._at_op(")"):
            args.append(self._expression())
            while self._accept_op(","):
                args.append(self._expression())
        self._expect_op(")")
        return args

    def _primary(self) -> ast.Expression:
        token = self.current

        if token.kind == Token.NUMBER:
            self._advance()
            return ast.Literal(self._number_value(token.value))

        if token.kind == Token.STRING:
            self._advance()
            return ast.Literal(token.value)

        if token.kind == Token.OP:
            if token.value == "?":
                self._advance()
                param = ast.Parameter(self._param_count)
                self._param_count += 1
                return param
            if token.value == "(":
                self._advance()
                if self._at_keyword("SELECT"):
                    query = self._query_expression()
                    self._expect_op(")")
                    return ast.ScalarSubquery(query)
                expr = self._expression()
                self._expect_op(")")
                return expr

        if token.kind == Token.KEYWORD:
            return self._keyword_primary(token)

        if token.kind == Token.IDENT:
            return self._identifier_primary()

        raise self._error(f"unexpected token {token.value!r} in expression")

    def _keyword_primary(self, token: Token) -> ast.Expression:
        value = token.value
        if value == "NULL":
            self._advance()
            return ast.Literal(None)
        if value == "TRUE":
            self._advance()
            return ast.Literal(True)
        if value == "FALSE":
            self._advance()
            return ast.Literal(False)
        if value in ("CURRENT_DATE", "CURRENT_TIME", "CURRENT_TIMESTAMP",
                     "CURRENT_USER"):
            self._advance()
            return ast.FunctionCall(value.lower(), [])
        if value in _AGGREGATE_NAMES:
            return self._aggregate_call()
        if value == "CASE":
            return self._case_expression()
        if value == "CAST":
            self._advance()
            self._expect_op("(")
            operand = self._expression()
            self._expect_keyword("AS")
            target = self._type_spelling()
            self._expect_op(")")
            return ast.Cast(operand, target)
        if value == "NEW" and (
            self._peek().kind == Token.IDENT
            or (
                self._peek().kind == Token.KEYWORD
                and self._peek().value in _NON_RESERVED
            )
        ):
            self._advance()
            type_name = self._qualified_name()
            args = self._call_args()
            return ast.NewObject(type_name, args)
        if value in _NON_RESERVED:
            return self._identifier_primary()
        raise self._error(f"unexpected keyword {value!r} in expression")

    def _aggregate_call(self) -> ast.Expression:
        name = self._advance().value  # COUNT/SUM/AVG/MIN/MAX
        self._expect_op("(")
        if name == "COUNT" and self._at_op("*"):
            self._advance()
            self._expect_op(")")
            return ast.AggregateCall("COUNT", None)
        distinct = bool(self._accept_keyword("DISTINCT"))
        if not distinct:
            self._accept_keyword("ALL")
        argument = self._expression()
        self._expect_op(")")
        return ast.AggregateCall(name, argument, distinct)

    def _case_expression(self) -> ast.CaseExpr:
        self._expect_keyword("CASE")
        operand: Optional[ast.Expression] = None
        if not self._at_keyword("WHEN"):
            operand = self._expression()
        whens: List[ast.WhenClause] = []
        while self._accept_keyword("WHEN"):
            condition = self._expression()
            self._expect_keyword("THEN")
            result = self._expression()
            whens.append(ast.WhenClause(condition, result))
        if not whens:
            raise self._error("CASE requires at least one WHEN clause")
        else_result: Optional[ast.Expression] = None
        if self._accept_keyword("ELSE"):
            else_result = self._expression()
        self._expect_keyword("END")
        return ast.CaseExpr(operand, whens, else_result)

    def _identifier_primary(self) -> ast.Expression:
        name = self._expect_identifier()
        # function call (possibly schema-qualified)
        if self._at_op("."):
            # qualified: could be table.column or schema.function(...)
            self._advance()
            second = self._expect_identifier("name part")
            if self._at_op("("):
                args = self._call_args()
                return ast.FunctionCall(f"{name}.{second}", args)
            return ast.ColumnRef(second, table=name)
        if self._at_op("("):
            args = self._call_args()
            return ast.FunctionCall(name, args)
        return ast.ColumnRef(name)

    @staticmethod
    def _number_value(text: str):
        if "." in text or "e" in text or "E" in text:
            import decimal

            if "e" in text or "E" in text:
                return float(text)
            return decimal.Decimal(text)
        return int(text)


def parse_statement(
    text: str, dialect: Dialect = STANDARD
) -> ast.Statement:
    """Parse one SQL statement under the given dialect."""
    return Parser(text, dialect).parse_statement()


def parse_expression(
    text: str, dialect: Dialect = STANDARD
) -> ast.Expression:
    """Parse a standalone scalar expression (testing/tooling helper)."""
    return Parser(text, dialect).parse_expression_only()
