"""Wire protocol shared by :mod:`repro.server` and the remote driver.

Every message is one *frame*::

    +----------------+-----------+------------------------+
    | length (u32 LE)| type (u8) | payload (typed data)   |
    +----------------+-----------+------------------------+

``length`` counts the payload bytes only (the type byte is excluded), so
an empty payload is a 5-byte frame.  Payloads use a **data-only** typed
encoding (:func:`encode_frame` / :func:`decode_payload`): one tag byte
per value, covering exactly the kinds of data SQL results are made of —
``None``, booleans, integers, floats, strings, bytes, decimals, dates,
times, datetimes, lists, tuples and dicts.  Decoding can only ever
build those types; there is no object construction, no class lookup and
no code path from bytes to behaviour, so a hostile peer that reaches
the socket can at worst send garbage, never execute code.  (This is why
the protocol does *not* use :mod:`pickle`, which the engine reserves
for trusted local files: WAL, checkpoints, profiles.)

The protocol is versioned through the HELLO/WELCOME handshake, and a
server refuses clients whose ``PROTOCOL_VERSION`` it does not speak.

The conversation is strict request/response from the client's point of
view, with two exceptions: CANCEL may be sent while an EXECUTE is
outstanding (the reply to the EXECUTE then becomes an ERROR with
SQLSTATE 57014), and the server may send an unsolicited GOODBYE when it
is shutting down and the session has no request in flight.

Message types and their payload dictionaries:

==============  ======  ====================================================
message         dir     payload
==============  ======  ====================================================
HELLO           c->s    magic, version, database, dialect, user, auth,
                        autocommit
WELCOME         s->c    server_version, protocol, database, dialect,
                        session_id, page_size
EXECUTE         c->s    sql, params, seq (statement sequence number),
                        trace (optional trace-context dict)
RESULT          s->c    kind, update_count, out_values, result_sets,
                        function_value, columns, shape (encoded — see
                        :func:`encode_shape`), rows (first page),
                        row_count, cursor (id or None), in_txn
FETCH           c->s    cursor, max_rows
ROWS            s->c    rows, done
CLOSE_CURSOR    c->s    cursor
COMMIT          c->s    --
ROLLBACK        c->s    --
AUTOCOMMIT      c->s    value
PING            c->s    --
OK              s->c    in_txn
CANCEL          c->s    seq of the EXECUTE it targets (out of band)
GOODBYE         both    reason
ERROR           s->c    error (class name), sqlstate, message, vendor_code
==============  ======  ====================================================

Security note: frames carry data only, so a malicious peer cannot run
code through the wire format — but the transport itself is cleartext
and unauthenticated per-frame.  The optional ``auth`` token in HELLO
gates the *handshake* (compared in constant time); it does not encrypt
or sign traffic.  Expose the port only on trusted networks or behind a
TLS tunnel.
"""

from __future__ import annotations

import datetime
import decimal
import socket
import struct
from typing import Any, Dict, List, Optional, Tuple

from repro import errors, faultpoints

__all__ = [
    "PROTOCOL_VERSION",
    "MAGIC",
    "DEFAULT_PORT",
    "MAX_FRAME",
    "MSG_HELLO",
    "MSG_WELCOME",
    "MSG_EXECUTE",
    "MSG_RESULT",
    "MSG_FETCH",
    "MSG_ROWS",
    "MSG_CLOSE_CURSOR",
    "MSG_COMMIT",
    "MSG_ROLLBACK",
    "MSG_AUTOCOMMIT",
    "MSG_PING",
    "MSG_OK",
    "MSG_CANCEL",
    "MSG_GOODBYE",
    "MSG_ERROR",
    "MSG_EXECUTE_BATCH",
    "MESSAGE_NAMES",
    "encode_frame",
    "decode_payload",
    "encode_shape",
    "decode_shape",
    "recv_frame",
    "send_frame",
    "error_payload",
    "rebuild_error",
]

#: v2 replaced the original pickled payloads with the typed data-only
#: encoding below; v1 peers are refused at the handshake.
PROTOCOL_VERSION = 2
MAGIC = "pysqlj"
DEFAULT_PORT = 7878

#: Upper bound on a single frame's payload; a peer announcing more is
#: treated as garbage (a torn frame read as a length, or an attack).
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct("<IB")  # payload length, message type

MSG_HELLO = 1
MSG_WELCOME = 2
MSG_EXECUTE = 3
MSG_RESULT = 4
MSG_FETCH = 5
MSG_ROWS = 6
MSG_CLOSE_CURSOR = 7
MSG_COMMIT = 8
MSG_ROLLBACK = 9
MSG_AUTOCOMMIT = 10
MSG_PING = 11
MSG_OK = 12
MSG_CANCEL = 13
MSG_GOODBYE = 14
MSG_ERROR = 15
MSG_EXECUTE_BATCH = 16

MESSAGE_NAMES = {
    MSG_HELLO: "HELLO",
    MSG_WELCOME: "WELCOME",
    MSG_EXECUTE: "EXECUTE",
    MSG_RESULT: "RESULT",
    MSG_FETCH: "FETCH",
    MSG_ROWS: "ROWS",
    MSG_CLOSE_CURSOR: "CLOSE_CURSOR",
    MSG_COMMIT: "COMMIT",
    MSG_ROLLBACK: "ROLLBACK",
    MSG_AUTOCOMMIT: "AUTOCOMMIT",
    MSG_PING: "PING",
    MSG_OK: "OK",
    MSG_CANCEL: "CANCEL",
    MSG_GOODBYE: "GOODBYE",
    MSG_ERROR: "ERROR",
    MSG_EXECUTE_BATCH: "EXECUTE_BATCH",
}


# ---------------------------------------------------------------------------
# Typed data-only value encoding
# ---------------------------------------------------------------------------
#
# One tag byte per value.  Length prefixes are u32 LE.  Only plain data
# types exist in the vocabulary; decoding therefore cannot construct
# arbitrary objects, whatever the peer sends.
#
#   N           None          T/F         True / False
#   i <i64>     small int     I <len,str> arbitrary-precision int
#   f <f64>     float         s <len,utf8> str        b <len> bytes
#   D <len,str> Decimal       a/m/z <len,iso> date / time / datetime
#   l/t <n,...> list / tuple  d <n,k,v...> dict

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_I64_MIN, _I64_MAX = -(2 ** 63), 2 ** 63 - 1


def _encode_value(value: Any, out: List[bytes]) -> None:
    if value is None:
        out.append(b"N")
    elif isinstance(value, bool):
        out.append(b"T" if value else b"F")
    elif isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            out.append(b"i")
            out.append(_I64.pack(value))
        else:
            text = str(value).encode("ascii")
            out.append(b"I")
            out.append(_U32.pack(len(text)))
            out.append(text)
    elif isinstance(value, float):
        out.append(b"f")
        out.append(_F64.pack(value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(b"s")
        out.append(_U32.pack(len(data)))
        out.append(data)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out.append(b"b")
        out.append(_U32.pack(len(data)))
        out.append(data)
    elif isinstance(value, decimal.Decimal):
        text = str(value).encode("ascii")
        out.append(b"D")
        out.append(_U32.pack(len(text)))
        out.append(text)
    elif isinstance(value, datetime.datetime):
        text = value.isoformat().encode("ascii")
        out.append(b"z")
        out.append(_U32.pack(len(text)))
        out.append(text)
    elif isinstance(value, datetime.date):
        text = value.isoformat().encode("ascii")
        out.append(b"a")
        out.append(_U32.pack(len(text)))
        out.append(text)
    elif isinstance(value, datetime.time):
        text = value.isoformat().encode("ascii")
        out.append(b"m")
        out.append(_U32.pack(len(text)))
        out.append(text)
    elif isinstance(value, (list, tuple)):
        out.append(b"l" if isinstance(value, list) else b"t")
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_value(item, out)
    elif isinstance(value, dict):
        out.append(b"d")
        out.append(_U32.pack(len(value)))
        for key, item in value.items():
            _encode_value(key, out)
            _encode_value(item, out)
    else:
        raise errors.ProtocolError(
            f"{type(value).__name__} values cannot travel on the wire "
            "(data-only protocol)"
        )


class _Decoder:
    """Cursor over an encoded payload; raises ProtocolError on garbage."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def _take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise errors.ProtocolError("truncated frame payload")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def _sized_text(self) -> str:
        length = _U32.unpack(self._take(4))[0]
        return self._take(length).decode("utf-8")

    def value(self) -> Any:
        tag = self._take(1)
        if tag == b"N":
            return None
        if tag == b"T":
            return True
        if tag == b"F":
            return False
        if tag == b"i":
            return _I64.unpack(self._take(8))[0]
        if tag == b"I":
            return int(self._sized_text())
        if tag == b"f":
            return _F64.unpack(self._take(8))[0]
        if tag == b"s":
            return self._sized_text()
        if tag == b"b":
            length = _U32.unpack(self._take(4))[0]
            return self._take(length)
        if tag == b"D":
            return decimal.Decimal(self._sized_text())
        if tag == b"z":
            return datetime.datetime.fromisoformat(self._sized_text())
        if tag == b"a":
            return datetime.date.fromisoformat(self._sized_text())
        if tag == b"m":
            return datetime.time.fromisoformat(self._sized_text())
        if tag in (b"l", b"t"):
            count = _U32.unpack(self._take(4))[0]
            items = [self.value() for _ in range(count)]
            return items if tag == b"l" else tuple(items)
        if tag == b"d":
            count = _U32.unpack(self._take(4))[0]
            return {self.value(): self.value() for _ in range(count)}
        raise errors.ProtocolError(
            f"unknown value tag {tag!r} in frame payload"
        )


def encode_frame(msg_type: int, payload: Any = None) -> bytes:
    """Serialise one message to its on-wire bytes.

    Raises :class:`~repro.errors.ProtocolError` when the payload holds
    a value outside the data-only vocabulary (e.g. an archive-loaded
    object): such values are engine-local by design.
    """
    if payload is None:
        body = b""
    else:
        parts: List[bytes] = []
        _encode_value(payload, parts)
        body = b"".join(parts)
    if len(body) > MAX_FRAME:
        raise errors.ProtocolError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{MAX_FRAME}-byte limit"
        )
    return _HEADER.pack(len(body), msg_type) + body


def decode_payload(body: bytes) -> Any:
    """Decode a frame payload; only plain data values can result.

    Anything malformed — a pickle, random bytes, a truncated buffer,
    trailing garbage — raises :class:`~repro.errors.ProtocolError`.
    """
    if not body:
        return None
    decoder = _Decoder(body)
    try:
        value = decoder.value()
    except errors.ReproError:
        raise
    except Exception as exc:
        raise errors.ProtocolError(
            f"undecodable frame payload: {exc}"
        ) from exc
    if decoder.pos != len(decoder.data):
        raise errors.ProtocolError(
            f"{len(decoder.data) - decoder.pos} trailing bytes after "
            "frame payload"
        )
    return value


def parse_header(header: bytes) -> Tuple[int, int]:
    """Return ``(payload_length, msg_type)``, validating the length."""
    length, msg_type = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise errors.ProtocolError(
            f"peer announced a {length}-byte frame "
            f"(limit {MAX_FRAME}); stream is corrupt"
        )
    return length, msg_type


HEADER_SIZE = _HEADER.size


# ---------------------------------------------------------------------------
# Row-shape encoding (column metadata as plain data)
# ---------------------------------------------------------------------------


def encode_shape(shape: Any) -> Optional[List[List[Optional[str]]]]:
    """Flatten a :class:`~repro.engine.expressions.RowShape` to data.

    Each column becomes ``[alias, name, sql_spelling]``; the spelling
    (``"DECIMAL(6,2)"``) is re-parsed client-side, so column metadata
    survives the wire without shipping descriptor objects.
    """
    if shape is None:
        return None
    return [
        [
            column.alias,
            column.name,
            column.descriptor.sql_spelling()
            if column.descriptor is not None
            else None,
        ]
        for column in shape.columns
    ]


def decode_shape(data: Any) -> Any:
    """Rebuild a ``RowShape`` from :func:`encode_shape` output."""
    if not data:
        return None
    from repro.engine.expressions import ColumnInfo, RowShape
    from repro.sqltypes.core import parse_type

    columns = []
    for alias, name, spelling in data:
        descriptor = None
        if spelling:
            try:
                descriptor = parse_type(spelling)
            except errors.ReproError:
                descriptor = None
        columns.append(ColumnInfo(alias, name, descriptor))
    return RowShape(columns)


# ---------------------------------------------------------------------------
# Blocking-socket helpers (client side)
# ---------------------------------------------------------------------------


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except OSError as exc:
            raise errors.ConnectionLostError(
                f"connection lost while reading: {exc}"
            ) from exc
        if not chunk:
            raise errors.ConnectionLostError(
                f"peer closed the connection mid-frame "
                f"({n - remaining} of {n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Tuple[int, Any]:
    """Read one frame from a blocking socket.

    Returns ``(msg_type, payload)``.  Raises
    :class:`~repro.errors.ConnectionLostError` on EOF or a torn frame
    and :class:`~repro.errors.ProtocolError` on an invalid header.
    """
    faultpoints.trigger("net.read")
    length, msg_type = parse_header(_recv_exact(sock, HEADER_SIZE))
    body = _recv_exact(sock, length) if length else b""
    try:
        return msg_type, decode_payload(body)
    except errors.ReproError:
        raise
    except Exception as exc:
        raise errors.ProtocolError(
            f"undecodable {MESSAGE_NAMES.get(msg_type, msg_type)} payload: "
            f"{exc}"
        ) from exc


def send_frame(sock: socket.socket, msg_type: int, payload: Any = None) -> None:
    """Write one frame to a blocking socket.

    The encoded bytes pass through the ``net.write`` faultpoint, so a
    test plan can truncate them (torn frame) or delay them (slow peer).
    A *modified* payload means the plan tore the frame mid-write; since
    the stream is now desynchronised, that is reported as a lost
    connection — exactly what a real half-written frame becomes.
    """
    data = encode_frame(msg_type, payload)
    sent = faultpoints.pipe("net.write", data)
    try:
        sock.sendall(sent)
    except OSError as exc:
        raise errors.ConnectionLostError(
            f"connection lost while writing: {exc}"
        ) from exc
    if sent != data:
        raise errors.ConnectionLostError(
            "connection torn mid-frame (fault injected)"
        )


# ---------------------------------------------------------------------------
# Error frames
# ---------------------------------------------------------------------------


def error_payload(exc: BaseException) -> Dict[str, Any]:
    """Flatten an exception into an ERROR frame payload.

    Non-:class:`~repro.errors.ReproError` exceptions (a bug in the
    server, an unencodable value) are reported as internal errors so the
    client always receives a typed, SQLSTATE-carrying exception.
    """
    if isinstance(exc, errors.ReproError):
        return {
            "error": type(exc).__name__,
            "sqlstate": exc.sqlstate,
            "message": exc.message,
            "vendor_code": exc.vendor_code,
        }
    return {
        "error": "OperatorExecutionError",
        "sqlstate": "XX000",
        "message": f"{type(exc).__name__}: {exc}",
        "vendor_code": 0,
    }


def rebuild_error(payload: Optional[Dict[str, Any]]) -> errors.ReproError:
    """Reconstruct a typed exception from an ERROR frame payload.

    The class is looked up by name in :mod:`repro.errors`; unknown names
    (a newer server) degrade to :class:`~repro.errors.SQLException`
    carrying the original SQLSTATE, so error *codes* survive version
    skew even when error *classes* do not.
    """
    payload = payload or {}
    cls = getattr(errors, payload.get("error", ""), None)
    if not (isinstance(cls, type) and issubclass(cls, errors.ReproError)):
        cls = errors.SQLException
    message = payload.get("message", "unknown server error")
    try:
        error = cls(
            message,
            sqlstate=payload.get("sqlstate") or None,
            vendor_code=payload.get("vendor_code", 0),
        )
    except TypeError:
        # Subclasses with bespoke constructors (position-carrying parse
        # errors, ...) still take the message; restore the wire codes on
        # the instance afterwards.
        error = cls(message)
        if payload.get("sqlstate"):
            error.sqlstate = payload["sqlstate"]
        error.vendor_code = payload.get("vendor_code", 0)
    return error
