"""Remote driver: a ``repro://`` session over TCP.

This is the client half of the network boundary in
:mod:`repro.server`.  :class:`RemoteSession` implements the same
duck-typed session surface the dbapi layer already consumes from the
engine's :class:`~repro.engine.database.Session` — ``execute`` /
``prepare`` / ``commit`` / ``rollback`` / ``close`` / ``autocommit`` /
``transaction_log.active`` — so :class:`~repro.dbapi.connection.Connection`,
:class:`~repro.dbapi.pool.ConnectionPool` and the SQLJ runtime's
:class:`~repro.runtime.context.ConnectionContext` all work over the
wire unchanged.  That is the paper's portability promise made literal:
translated SQLJ programs are location-transparent because the
connection context neither knows nor cares whether its session is a
local engine or a socket.

URL form::

    repro://host:port/dbname[?user=...&dialect=...&auth=...]

Rows come back paged: the first page rides on the RESULT frame and
:class:`RemoteRows` fetches the rest on demand through the session's
cursor, so iterating a huge result does not buffer it all client-side
(a real ``java.sql.ResultSet`` fetch-size, not a simulation).

Error frames are rebuilt into the same typed, SQLSTATE-carrying
exceptions a local session raises (:func:`repro.server.protocol.rebuild_error`),
and any transport failure surfaces as a class-08 connection error and
marks the session closed — which is what lets ``ConnectionPool``'s
health check detect and replace dead TCP connections on checkout.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlsplit

from repro import errors, faultpoints
from repro.engine.database import StatementResult
from repro.engine.dialects import DIALECTS, Dialect
from repro.engine.expressions import ColumnInfo, RowShape
from repro.engine.parser import Parser
from repro.observability import metrics as _metrics
from repro.observability import slowlog as _slowlog
from repro.observability import tracing as _tracing
from repro.server import protocol
from repro.server.protocol import (
    MSG_AUTOCOMMIT,
    MSG_CANCEL,
    MSG_CLOSE_CURSOR,
    MSG_COMMIT,
    MSG_ERROR,
    MSG_EXECUTE,
    MSG_EXECUTE_BATCH,
    MSG_FETCH,
    MSG_GOODBYE,
    MSG_HELLO,
    MSG_OK,
    MSG_PING,
    MSG_RESULT,
    MSG_ROLLBACK,
    MSG_ROWS,
    MSG_WELCOME,
)

__all__ = [
    "RemoteTarget",
    "RemoteSession",
    "RemoteRows",
    "parse_remote_url",
]

_EXECUTIONS = _metrics.registry.counter("remote.executions")
_FETCHES = _metrics.registry.counter("remote.fetches")
_CONNECTS = _metrics.registry.counter("remote.connects")


def parse_remote_url(url: str) -> Dict[str, Any]:
    """Split ``repro://host:port/dbname[?k=v...]`` into its parts."""
    parts = urlsplit(url)
    if parts.scheme.lower() != "repro":
        raise errors.ConnectionError_(
            f"not a repro:// URL: {url!r}"
        )
    if not parts.hostname:
        raise errors.ConnectionError_(
            f"malformed repro:// URL {url!r}; expected "
            "'repro://host:port/dbname'"
        )
    database = parts.path.lstrip("/")
    if not database:
        raise errors.ConnectionError_(
            f"repro:// URL {url!r} names no database; expected "
            "'repro://host:port/dbname'"
        )
    query = {
        key: values[-1]
        for key, values in parse_qs(parts.query).items()
    }
    return {
        "host": parts.hostname,
        "port": parts.port or protocol.DEFAULT_PORT,
        "database": database,
        "user": query.get("user"),
        "dialect": query.get("dialect"),
        "auth": query.get("auth"),
    }


class _RemoteTransactionLog:
    """Client-side mirror of the server session's transaction state.

    Only ``active`` is meaningful: it tracks the ``in_txn`` flag the
    server reports on every response, which is all the dbapi layer
    reads from a session's transaction log.
    """

    def __init__(self) -> None:
        self.active = False


class RemoteRows:
    """Lazy, list-like row sequence backed by a server-side cursor.

    Supports exactly the operations
    :class:`~repro.dbapi.resultset.ResultSet` performs on
    ``StatementResult.rows`` — ``len``, truthiness, integer indexing,
    slicing, iteration — fetching further pages over the wire only when
    the cursor position demands them.
    """

    def __init__(
        self,
        session: "RemoteSession",
        first_page: List[List[Any]],
        total: int,
        cursor_id: Optional[int],
    ) -> None:
        self._session = session
        self._rows: List[List[Any]] = list(first_page)
        self._total = total
        self._cursor = cursor_id

    def __len__(self) -> int:
        return self._total

    def __bool__(self) -> bool:
        return self._total > 0

    def close(self) -> None:
        """Release the server-side cursor of a partially read result.

        Idempotent; a fully fetched result has no cursor left to close.
        Without this, abandoning a paged result would pin its remaining
        rows server-side until the TCP connection goes away — a leak on
        long-lived pooled connections.  :class:`~repro.dbapi.resultset
        .ResultSet.close` calls it automatically.
        """
        cursor, self._cursor = self._cursor, None
        if cursor is None or self._session.closed:
            return
        try:
            self._session._close_cursor(cursor)
        except errors.ReproError:
            pass  # dead link: the server reclaims cursors with the session

    def _fetch_more(self) -> None:
        if self._cursor is None:
            raise errors.InvalidCursorStateError(
                "remote cursor closed or exhausted early "
                "(result closed, or connection recycled?)"
            )
        _FETCHES.increment()
        payload = self._session._fetch_page(self._cursor)
        self._rows.extend(payload.get("rows", []))
        if payload.get("done"):
            self._cursor = None

    def _ensure(self, upto: int) -> None:
        """Fetch pages until at least ``upto`` rows are local."""
        upto = min(upto, self._total)
        while len(self._rows) < upto:
            self._fetch_more()

    def __getitem__(self, index: Any) -> Any:
        if isinstance(index, slice):
            self._ensure(self._total)
            return self._rows[index]
        if index < 0:
            index += self._total
        if not 0 <= index < self._total:
            raise IndexError(index)
        self._ensure(index + 1)
        return self._rows[index]

    def __iter__(self) -> Iterator[List[Any]]:
        for index in range(self._total):
            yield self[index]

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, (list, RemoteRows)):
            return list(self) == list(other)
        return NotImplemented


class RemotePreparedPlan:
    """Client-side stand-in for the engine's ``PreparedStatementPlan``.

    The SQL is parsed locally (same grammar, the dialect announced in
    WELCOME), so syntax errors still surface at prepare time and
    :class:`~repro.dbapi.statement.CallableStatement` can inspect the
    CALL's argument list; execution ships the SQL to the server, where
    the engine-side plan cache makes repeated execution cheap.
    """

    def __init__(self, session: "RemoteSession", sql: str) -> None:
        self.session = session
        self.sql = sql
        self.statement = Parser(sql, session.dialect).parse_statement()

    def execute(self, params: Sequence[Any] = ()) -> StatementResult:
        return self.session.execute(self.sql, params)


class RemoteSession:
    """One TCP connection to a :class:`~repro.server.ReproServer`."""

    #: Duck-typed marker: profile customizations check this and fall
    #: back to dynamic SQL, since precompiled plans need local storage.
    is_remote = True

    def __init__(
        self,
        host: str,
        port: int,
        database: str,
        *,
        user: Optional[str] = None,
        dialect: Optional[str] = None,
        auth: Optional[str] = None,
        autocommit: bool = True,
        connect_timeout: float = 10.0,
    ) -> None:
        self.closed = True  # until the handshake succeeds
        self.user = user or "PUBLIC"
        self.database_name = database
        #: Client-side slow-query threshold (ms); set by
        #: ``repro.connect(slow_query_ms=...)``, None defers to the
        #: process-wide ``REPRO_SLOW_QUERY_MS`` setting.
        self.slow_query_ms: Optional[float] = None
        self.transaction_log = _RemoteTransactionLog()
        self._autocommit = bool(autocommit)
        self._connect_timeout = connect_timeout
        self._request_lock = threading.RLock()
        self._send_lock = threading.RLock()
        #: Client-assigned EXECUTE sequence numbers; CANCEL names the
        #: sequence it targets so the server can discard stale cancels.
        self._seq = 0
        self._inflight_seq = 0
        faultpoints.trigger("net.connect")
        _CONNECTS.increment()
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as exc:
            raise errors.ConnectionError_(
                f"cannot connect to repro server at {host}:{port}: {exc}"
            ) from exc
        try:
            # The connect timeout stays armed through the handshake: a
            # server that accepts but never answers HELLO must fail the
            # dial, not hang the caller (or a pool) indefinitely.
            protocol.send_frame(
                self._sock,
                MSG_HELLO,
                {
                    "magic": protocol.MAGIC,
                    "version": protocol.PROTOCOL_VERSION,
                    "database": database,
                    "dialect": dialect,
                    "user": user,
                    "auth": auth,
                    "autocommit": self._autocommit,
                },
            )
            msg_type, payload = protocol.recv_frame(self._sock)
            if msg_type == MSG_ERROR:
                raise protocol.rebuild_error(payload)
            if msg_type != MSG_WELCOME or not isinstance(payload, dict):
                raise errors.ProtocolError(
                    "server did not answer the handshake with WELCOME"
                )
        except BaseException:
            self._sock.close()
            raise
        self._sock.settimeout(None)  # statements may legitimately be slow
        self.server_version = payload.get("server_version", "")
        self.session_id = payload.get("session_id", 0)
        self._page_size = int(payload.get("page_size") or 256)
        dialect_name = payload.get("dialect") or "standard"
        self.dialect: Dialect = DIALECTS.get(
            dialect_name, DIALECTS["standard"]
        )
        self.closed = False

    # ------------------------------------------------------------------
    # request/response plumbing
    # ------------------------------------------------------------------

    def _teardown(self) -> None:
        """Mark dead after a transport failure; the stream state is
        unknown, so the socket must not be reused."""
        self.closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def _request(self, msg_type: int, payload: Any) -> Tuple[int, Any]:
        with self._request_lock:
            if self.closed:
                raise errors.ConnectionClosedError(
                    "remote session is closed"
                )
            try:
                with self._send_lock:
                    protocol.send_frame(self._sock, msg_type, payload)
                reply_type, reply = protocol.recv_frame(self._sock)
            except errors.ConnectionError_:
                self._teardown()
                raise
            except OSError as exc:
                self._teardown()
                raise errors.ConnectionLostError(
                    f"transport failure: {exc}"
                ) from exc
            if reply_type == MSG_GOODBYE:
                # Unsolicited: the server is shutting down.
                self._teardown()
                raise errors.ConnectionClosedError(
                    "server closed the connection: "
                    + str((reply or {}).get("reason", "goodbye"))
                )
            if isinstance(reply, dict) and "in_txn" in reply:
                self.transaction_log.active = bool(reply["in_txn"])
            if reply_type == MSG_ERROR:
                raise protocol.rebuild_error(reply)
            return reply_type, reply

    def _expect(
        self, msg_type: int, payload: Any, expected: int
    ) -> Any:
        reply_type, reply = self._request(msg_type, payload)
        if reply_type != expected:
            self._teardown()
            raise errors.ProtocolError(
                f"expected {protocol.MESSAGE_NAMES[expected]}, got "
                f"{protocol.MESSAGE_NAMES.get(reply_type, reply_type)}"
            )
        return reply

    # ------------------------------------------------------------------
    # the session surface the dbapi layer consumes
    # ------------------------------------------------------------------

    def execute(
        self, sql: str, params: Sequence[Any] = ()
    ) -> StatementResult:
        _EXECUTIONS.increment()
        with self._send_lock:
            self._seq += 1
            seq = self._inflight_seq = self._seq
        payload = {"sql": sql, "params": list(params), "seq": seq}
        tracer = _tracing.current
        slow_ms = _slowlog.effective_threshold(self)
        start = time.perf_counter() if slow_ms is not None else 0.0
        if tracer.enabled:
            with tracer.span("remote.execute", sql=sql) as span:
                # Ship this span's identity so the server parents its
                # spans under ours: one connected trace, two processes.
                payload["trace"] = {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                }
                reply = self._expect(MSG_EXECUTE, payload, MSG_RESULT)
        else:
            reply = self._expect(MSG_EXECUTE, payload, MSG_RESULT)
        if slow_ms is not None:
            # Client-side view of the same statement: includes network
            # time, carries no wait breakdown (that is in the server's
            # own record and in repro_stats.statements).
            _slowlog.maybe_log(
                self,
                sql=sql,
                key=None,
                seconds=time.perf_counter() - start,
                source="client",
            )
        return self._build_result(reply)

    def execute_batch(
        self, sql: str, param_rows: Sequence[Sequence[Any]]
    ) -> List[int]:
        """Execute one DML statement against many parameter rows in a
        single round trip.

        The whole batch rides on ONE ``MSG_EXECUTE_BATCH`` frame —
        thousands of parameter rows cost one request/response cycle
        instead of one per row — and the server runs it through
        ``Session.execute_batch``, so the engine-side guarantees (one
        parse, one WAL record, one fsync barrier, all-or-nothing
        rollback) hold over the wire too.  Returns the per-row affected
        counts.
        """
        rows = [list(row) for row in param_rows]
        if not rows:
            return []
        _EXECUTIONS.increment()
        with self._send_lock:
            self._seq += 1
            seq = self._inflight_seq = self._seq
        payload = {"sql": sql, "params": rows, "seq": seq}
        tracer = _tracing.current
        slow_ms = _slowlog.effective_threshold(self)
        start = time.perf_counter() if slow_ms is not None else 0.0
        if tracer.enabled:
            with tracer.span(
                "remote.execute_batch", sql=sql, batch=len(rows)
            ) as span:
                payload["trace"] = {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                }
                reply = self._expect(
                    MSG_EXECUTE_BATCH, payload, MSG_RESULT
                )
        else:
            reply = self._expect(MSG_EXECUTE_BATCH, payload, MSG_RESULT)
        if slow_ms is not None:
            _slowlog.maybe_log(
                self,
                sql=sql,
                key=None,
                seconds=time.perf_counter() - start,
                source="client",
                batch_rows=len(rows),
            )
        return list(reply.get("update_counts") or [])

    def prepare(self, sql: str) -> RemotePreparedPlan:
        return RemotePreparedPlan(self, sql)

    def explain(self, sql: str, params: Sequence[Any] = (),
                analyze: bool = False):
        """The server-side plan for ``sql`` as a typed PlanNode tree.

        Runs ``EXPLAIN (FORMAT JSON) <sql>`` over the wire — the JSON
        document is plain protocol-v2 data — and rebuilds the
        :class:`repro.engine.explain.PlanNode` tree client-side, so
        local and remote sessions expose the same introspection API.
        """
        import json

        from repro.engine.explain import PlanNode

        options = "ANALYZE, FORMAT JSON" if analyze else "FORMAT JSON"
        result = self.execute(f"EXPLAIN ({options}) {sql}", params)
        document = json.loads(result.rows[0][0])
        return PlanNode.from_dict(document["plan"])

    def commit(self) -> None:
        self._expect(MSG_COMMIT, None, MSG_OK)

    def rollback(self) -> None:
        self._expect(MSG_ROLLBACK, None, MSG_OK)

    @property
    def autocommit(self) -> bool:
        return self._autocommit

    @autocommit.setter
    def autocommit(self, enabled: bool) -> None:
        enabled = bool(enabled)
        if enabled == self._autocommit:
            return
        self._expect(MSG_AUTOCOMMIT, {"value": enabled}, MSG_OK)
        self._autocommit = enabled

    def close(self) -> None:
        if self.closed:
            return
        try:
            with self._send_lock:
                protocol.send_frame(
                    self._sock, MSG_GOODBYE, {"reason": "client close"}
                )
        except errors.ReproError:
            pass
        finally:
            self._teardown()

    def ping(self, timeout: Optional[float] = None) -> bool:
        """Round-trip liveness probe; False means the link is dead.

        ``ConnectionPool._healthy`` calls this (when present) so a dead
        TCP connection is detected at checkout, not handed to a caller.
        The probe is bounded: a server that accepted the connection but
        stopped responding fails the ping after ``timeout`` seconds
        (the connect timeout by default) instead of hanging the pool,
        and the timed-out session is marked dead — the stream may hold
        a late reply, so it cannot be reused.
        """
        if self.closed:
            return False
        if timeout is None:
            timeout = self._connect_timeout
        try:
            with self._request_lock:
                self._sock.settimeout(timeout)
                try:
                    self._expect(MSG_PING, None, MSG_OK)
                finally:
                    if not self.closed:
                        try:
                            self._sock.settimeout(None)
                        except OSError:
                            pass
            return True
        except errors.ReproError:
            return False
        except OSError:
            # The socket died under us (silently dropped connection).
            self._teardown()
            return False

    def cancel(self) -> None:
        """Ask the server to cancel the in-flight statement.

        Sent out of band (it does not wait for a response); the
        statement being cancelled fails with SQLSTATE 57014.  May be
        called from any thread.  The frame names the sequence number of
        the latest EXECUTE, so a cancel that arrives after its target
        already answered is discarded server-side rather than spilling
        onto the next statement.
        """
        if self.closed:
            return
        with self._send_lock:
            protocol.send_frame(
                self._sock, MSG_CANCEL, {"seq": self._inflight_seq}
            )

    # ------------------------------------------------------------------
    # result materialisation
    # ------------------------------------------------------------------

    def _fetch_page(self, cursor_id: int) -> Dict[str, Any]:
        return self._expect(
            MSG_FETCH,
            {"cursor": cursor_id, "max_rows": self._page_size},
            MSG_ROWS,
        )

    def _close_cursor(self, cursor_id: int) -> None:
        """Release a server-side cursor a result abandoned early."""
        self._expect(MSG_CLOSE_CURSOR, {"cursor": cursor_id}, MSG_OK)

    def _build_result(self, payload: Dict[str, Any]) -> StatementResult:
        shape = protocol.decode_shape(payload.get("shape"))
        if shape is None and payload.get("columns"):
            shape = RowShape(
                [
                    ColumnInfo(None, name, None)
                    for name in payload["columns"]
                ]
            )
        rows: Any = RemoteRows(
            self,
            payload.get("rows") or [],
            payload.get("row_count", 0),
            payload.get("cursor"),
        )
        result = StatementResult(
            payload.get("kind", "update"),
            shape=shape,
            update_count=payload.get("update_count", 0),
            out_values=payload.get("out_values") or [],
            result_sets=[
                StatementResult(
                    "rowset",
                    rows=nested.get("rows") or [],
                    shape=protocol.decode_shape(nested.get("shape")),
                )
                for nested in payload.get("result_sets") or []
            ],
            function_value=payload.get("function_value"),
        )
        result.rows = rows
        return result

    # ------------------------------------------------------------------
    # explicit non-features
    # ------------------------------------------------------------------

    @property
    def catalog(self) -> Any:
        raise errors.FeatureNotSupportedError(
            "remote connections do not expose the engine catalog; "
            "run metadata queries through SQL instead"
        )

    @property
    def database(self) -> Any:
        raise errors.FeatureNotSupportedError(
            "remote connections do not expose the engine database object"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else "open"
        return (
            f"<RemoteSession {self.database_name!r} "
            f"session={self.session_id} {state}>"
        )


class RemoteTarget:
    """Database-shaped factory for remote sessions.

    Quacks like :class:`~repro.engine.database.Database` exactly as far
    as ``DriverManager`` and ``ConnectionPool`` need: a ``name`` and a
    ``create_session(user=..., autocommit=...)`` that dials a fresh
    :class:`RemoteSession`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        name: str,
        *,
        dialect: Optional[str] = None,
        auth: Optional[str] = None,
        user: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.name = name
        self.dialect_name = dialect
        self.auth = auth
        self.default_user = user

    @classmethod
    def from_url(cls, url: str) -> "RemoteTarget":
        parts = parse_remote_url(url)
        return cls(
            parts["host"],
            parts["port"],
            parts["database"],
            dialect=parts["dialect"],
            auth=parts["auth"],
            user=parts["user"],
        )

    def create_session(
        self,
        user: Optional[str] = None,
        autocommit: bool = True,
    ) -> RemoteSession:
        return RemoteSession(
            self.host,
            self.port,
            self.name,
            user=user or self.default_user,
            dialect=self.dialect_name,
            auth=self.auth,
            autocommit=autocommit,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<RemoteTarget repro://{self.host}:{self.port}/{self.name}>"
        )
