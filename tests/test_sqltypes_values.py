"""Tests for value comparison and type-lattice operations."""

import decimal

import pytest

from repro import errors
from repro.sqltypes import (
    BigIntType,
    BooleanType,
    CharType,
    ClobType,
    DateType,
    DecimalType,
    DoubleType,
    IntegerType,
    ObjectType,
    SmallIntType,
    VarCharType,
    common_supertype,
    compare_values,
    is_null,
)
from repro.sqltypes.values import sort_key

D = decimal.Decimal


class TestCompareValues:
    def test_null_yields_unknown(self):
        assert compare_values(None, 1) is None
        assert compare_values(1, None) is None
        assert compare_values(None, None) is None

    def test_numeric_ordering(self):
        assert compare_values(1, 2) == -1
        assert compare_values(2, 1) == 1
        assert compare_values(2, 2) == 0

    def test_cross_numeric_comparison(self):
        assert compare_values(1, D("1.0")) == 0
        assert compare_values(1.5, D("1.5")) == 0
        assert compare_values(2, 1.5) == 1

    def test_char_padding_ignored(self):
        assert compare_values("CA   ", "CA") == 0
        assert compare_values("CA   ", "CB") == -1

    def test_leading_spaces_significant(self):
        assert compare_values(" CA", "CA") != 0

    def test_string_ordering(self):
        assert compare_values("apple", "banana") == -1

    def test_incomparable_domains(self):
        with pytest.raises(errors.InvalidCastError):
            compare_values(1, "one")

    def test_objects_with_equality(self):
        class Point:
            def __init__(self, x):
                self.x = x

            def __eq__(self, other):
                return isinstance(other, Point) and self.x == other.x

            def __hash__(self):
                return hash(self.x)

        assert compare_values(Point(1), Point(1)) == 0
        assert compare_values(Point(1), Point(2)) != 0

    def test_is_null(self):
        assert is_null(None)
        assert not is_null(0)
        assert not is_null("")


class TestSortKey:
    def test_nulls_sort_last(self):
        values = [3, None, 1, None, 2]
        ordered = sorted(values, key=sort_key)
        assert ordered == [1, 2, 3, None, None]

    def test_mixed_numeric_sort(self):
        values = [D("2.5"), 1, 2.0, D("0.5")]
        ordered = sorted(values, key=sort_key)
        assert ordered == [D("0.5"), 1, 2.0, D("2.5")]

    def test_char_padding_in_sort(self):
        assert sort_key("CA  ") == sort_key("CA")


class TestCommonSupertype:
    def test_identical_types(self):
        assert common_supertype(IntegerType(), IntegerType()) == \
            IntegerType()

    def test_integer_widening(self):
        assert common_supertype(SmallIntType(), IntegerType()) == \
            IntegerType()
        assert common_supertype(IntegerType(), BigIntType()) == \
            BigIntType()

    def test_approximate_dominates(self):
        assert common_supertype(IntegerType(), DoubleType()) == \
            DoubleType()
        assert common_supertype(DecimalType(6, 2), DoubleType()) == \
            DoubleType()

    def test_decimal_merge(self):
        merged = common_supertype(DecimalType(6, 2), DecimalType(10, 4))
        assert isinstance(merged, DecimalType)
        assert merged.scale == 4
        assert merged.precision >= 10

    def test_decimal_with_integer(self):
        merged = common_supertype(DecimalType(6, 2), IntegerType())
        assert isinstance(merged, DecimalType)
        assert merged.scale == 2

    def test_string_merge(self):
        merged = common_supertype(VarCharType(10), VarCharType(20))
        assert merged == VarCharType(20)

    def test_char_same_length(self):
        assert common_supertype(CharType(5), CharType(5)) == CharType(5)

    def test_char_varchar_merge(self):
        merged = common_supertype(CharType(5), VarCharType(3))
        assert isinstance(merged, VarCharType)
        assert merged.length == 5

    def test_clob_dominates_strings(self):
        assert common_supertype(ClobType(), VarCharType(5)) == ClobType()

    def test_unbounded_varchar(self):
        assert common_supertype(VarCharType(None), CharType(3)) == \
            VarCharType(None)

    def test_boolean(self):
        assert common_supertype(BooleanType(), BooleanType()) == \
            BooleanType()

    def test_object_types_via_subclassing(self):
        class Base:
            pass

        class Sub(Base):
            pass

        base = ObjectType("base", Base)
        sub = ObjectType("sub", Sub)
        assert common_supertype(base, sub) == base
        assert common_supertype(sub, base) == base

    def test_incompatible_raises(self):
        with pytest.raises(errors.InvalidCastError):
            common_supertype(IntegerType(), DateType())

    def test_string_number_incompatible(self):
        with pytest.raises(errors.InvalidCastError):
            common_supertype(VarCharType(5), IntegerType())
