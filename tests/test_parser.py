"""Unit tests for the SQL parser (AST construction)."""

import decimal

import pytest

from repro import errors
from repro.engine import ast
from repro.engine.dialects import ACME, ZENITH
from repro.engine.parser import parse_expression, parse_statement

D = decimal.Decimal


class TestSelect:
    def test_simple_select(self):
        stmt = parse_statement("select name, year from people")
        assert isinstance(stmt, ast.Select)
        assert len(stmt.items) == 2
        assert isinstance(stmt.from_clause[0], ast.TableName)
        assert stmt.from_clause[0].name == "people"

    def test_star(self):
        stmt = parse_statement("select * from t")
        assert isinstance(stmt.items[0], ast.StarItem)

    def test_qualified_star(self):
        stmt = parse_statement("select t.* from t")
        assert stmt.items[0].table == "t"

    def test_aliases(self):
        stmt = parse_statement("select a as x, b y from t u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_clause[0].alias == "u"

    def test_where_and_order(self):
        stmt = parse_statement(
            "select a from t where a > 1 order by a desc, b"
        )
        assert isinstance(stmt.where, ast.Binary)
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True

    def test_group_by_having(self):
        stmt = parse_statement(
            "select state, count(*) from emps group by state "
            "having count(*) > 1"
        )
        assert len(stmt.group_by) == 1
        assert isinstance(stmt.having, ast.Binary)

    def test_distinct(self):
        assert parse_statement("select distinct a from t").distinct

    def test_limit_offset(self):
        stmt = parse_statement("select a from t limit 5 offset 2")
        assert stmt.limit.value == 5
        assert stmt.offset.value == 2

    def test_joins(self):
        stmt = parse_statement(
            "select * from a join b on a.x = b.x "
            "left outer join c on b.y = c.y"
        )
        join = stmt.from_clause[0]
        assert isinstance(join, ast.Join)
        assert join.kind == "LEFT"
        assert join.left.kind == "INNER"

    def test_cross_join(self):
        stmt = parse_statement("select * from a cross join b")
        assert stmt.from_clause[0].kind == "CROSS"

    def test_derived_table(self):
        stmt = parse_statement(
            "select * from (select a from t) as sub"
        )
        sub = stmt.from_clause[0]
        assert isinstance(sub, ast.SubqueryRef)
        assert sub.alias == "sub"

    def test_union(self):
        stmt = parse_statement(
            "select a from t union all select b from u order by 1"
        )
        assert isinstance(stmt, ast.SetOperation)
        assert stmt.all is True
        assert stmt.order_by

    def test_name_keyword_usable_as_column(self):
        # The paper's example table has a ``name`` column.
        stmt = parse_statement("select name from emps")
        assert stmt.items[0].expression.name == "name"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(errors.SQLParseError):
            parse_statement("select a from t bogus extra ,")


class TestExpressions:
    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_logic(self):
        expr = parse_expression("a = 1 or b = 2 and c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        expr = parse_expression("not a = 1")
        assert isinstance(expr, ast.Unary)
        assert expr.op == "NOT"

    def test_unary_minus(self):
        expr = parse_expression("-5")
        assert isinstance(expr, ast.Unary)

    def test_between(self):
        expr = parse_expression("a between 1 and 10")
        assert isinstance(expr, ast.Between)

    def test_not_between(self):
        assert parse_expression("a not between 1 and 2").negated

    def test_in_list(self):
        expr = parse_expression("a in (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_in_subquery(self):
        expr = parse_expression("a in (select b from t)")
        assert isinstance(expr, ast.InSubquery)

    def test_like_with_escape(self):
        expr = parse_expression("a like 'x%' escape '!'")
        assert isinstance(expr, ast.Like)
        assert expr.escape.value == "!"

    def test_is_null(self):
        assert isinstance(parse_expression("a is null"), ast.IsNull)
        assert parse_expression("a is not null").negated

    def test_case_searched(self):
        expr = parse_expression(
            "case when a = 1 then 'one' else 'other' end"
        )
        assert isinstance(expr, ast.CaseExpr)
        assert expr.operand is None

    def test_case_simple(self):
        expr = parse_expression("case a when 1 then 'one' end")
        assert expr.operand is not None

    def test_cast(self):
        expr = parse_expression("cast(a as decimal(6,2))")
        assert isinstance(expr, ast.Cast)
        assert expr.target_type == "DECIMAL(6,2)"

    def test_exists(self):
        expr = parse_expression("exists (select 1 from t)")
        assert isinstance(expr, ast.Exists)

    def test_scalar_subquery(self):
        expr = parse_expression("(select max(a) from t)")
        assert isinstance(expr, ast.ScalarSubquery)

    def test_function_call(self):
        expr = parse_expression("upper(name)")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "upper"

    def test_count_star(self):
        expr = parse_expression("count(*)")
        assert isinstance(expr, ast.AggregateCall)
        assert expr.argument is None

    def test_count_distinct(self):
        expr = parse_expression("count(distinct a)")
        assert expr.distinct

    def test_parameters_indexed_in_order(self):
        stmt = parse_statement("select * from t where a = ? and b = ?")
        where = stmt.where
        assert where.left.right.index == 0
        assert where.right.right.index == 1

    def test_decimal_literal(self):
        assert parse_expression("1.50").value == D("1.50")

    def test_concat(self):
        assert parse_expression("a || b").op == "||"

    def test_current_user(self):
        expr = parse_expression("current_user")
        assert isinstance(expr, ast.FunctionCall)


class TestPart2Expressions:
    def test_attribute_ref(self):
        expr = parse_expression("home_addr>>zip")
        assert isinstance(expr, ast.AttributeRef)
        assert expr.attribute == "zip"

    def test_chained_attributes(self):
        expr = parse_expression("a>>b>>c")
        assert expr.attribute == "c"
        assert expr.target.attribute == "b"

    def test_method_call(self):
        expr = parse_expression("home_addr>>to_string()")
        assert isinstance(expr, ast.MethodCall)
        assert expr.method == "to_string"

    def test_method_with_args(self):
        expr = parse_expression("addr>>contiguous(a, b)")
        assert len(expr.args) == 2

    def test_new_constructor(self):
        expr = parse_expression("new addr('street', 'zip')")
        assert isinstance(expr, ast.NewObject)
        assert expr.type_name == "addr"
        assert len(expr.args) == 2

    def test_new_as_column_name(self):
        # NEW is non-reserved: the paper declares a parameter named "new".
        stmt = parse_statement("select new from t")
        assert stmt.items[0].expression.name == "new"


class TestDml:
    def test_insert_values(self):
        stmt = parse_statement(
            "insert into emps values ('A', 'E1', 'CA', 1.5), "
            "('B', 'E2', 'MN', 2.5)"
        )
        assert isinstance(stmt, ast.Insert)
        assert len(stmt.source.rows) == 2

    def test_insert_columns(self):
        stmt = parse_statement("insert into t (a, b) values (1, 2)")
        assert stmt.columns == ["a", "b"]

    def test_insert_select(self):
        stmt = parse_statement("insert into t select * from u")
        assert isinstance(stmt.source, ast.Select)

    def test_update(self):
        stmt = parse_statement(
            "update emps set sales = sales * 2, state = 'CA' "
            "where name = 'Bob'"
        )
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2

    def test_update_attribute_path(self):
        stmt = parse_statement(
            "update emps set home_addr>>zip = '99123' where name = 'Bob'"
        )
        target = stmt.assignments[0].target
        assert isinstance(target, ast.AttributePath)
        assert target.column == "home_addr"
        assert target.attributes == ["zip"]

    def test_delete(self):
        stmt = parse_statement("delete from emps where sales is null")
        assert isinstance(stmt, ast.Delete)


class TestDdl:
    def test_create_table(self):
        stmt = parse_statement(
            "create table emps (name varchar(50) not null, "
            "sales decimal(6,2) default 0)"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].not_null
        assert stmt.columns[1].default.value == 0

    def test_create_view(self):
        stmt = parse_statement(
            "create view v (a, b) as select x, y from t"
        )
        assert isinstance(stmt, ast.CreateView)
        assert stmt.column_names == ["a", "b"]

    def test_drop(self):
        stmt = parse_statement("drop table emps")
        assert stmt.kind == "TABLE"
        assert parse_statement("drop procedure p").kind == "PROCEDURE"
        assert parse_statement("drop type addr").kind == "TYPE"

    def test_create_procedure_full(self):
        stmt = parse_statement(
            "create procedure correct_states(old char(20), new char(20)) "
            "modifies sql data "
            "external name routines1_par:routines1.correct_states "
            "language java parameter style java"
        )
        assert isinstance(stmt, ast.CreateRoutine)
        assert stmt.kind == "PROCEDURE"
        assert stmt.data_access == "MODIFIES SQL DATA"
        assert stmt.external_name == \
            "routines1_par:routines1.correct_states"
        assert stmt.language == "JAVA"

    def test_external_name_preserves_case_unquoted(self):
        stmt = parse_statement(
            "create procedure p() external name "
            "jar1:Routines1.correctStates language java "
            "parameter style java"
        )
        assert stmt.external_name == "jar1:Routines1.correctStates"

    def test_create_function(self):
        stmt = parse_statement(
            "create function region_of(state char(20)) returns integer "
            "no sql external name 'r:m.region' language python "
            "parameter style python"
        )
        assert stmt.kind == "FUNCTION"
        assert stmt.returns == "INTEGER"
        assert stmt.data_access == "NO SQL"

    def test_out_parameters(self):
        stmt = parse_statement(
            "create procedure best2 (out n1 varchar(50), "
            "inout x integer, region integer) external name 'a.b' "
            "language python parameter style python"
        )
        modes = [p.mode for p in stmt.params]
        assert modes == ["OUT", "INOUT", "IN"]

    def test_dynamic_result_sets(self):
        stmt = parse_statement(
            "create procedure ranked_emps (region integer) "
            "dynamic result sets 1 reads sql data external name 'a.b' "
            "language python parameter style python"
        )
        assert stmt.dynamic_result_sets == 1
        assert stmt.data_access == "READS SQL DATA"

    def test_create_type(self):
        stmt = parse_statement(
            "create type addr external name 'm.Address' language python ("
            " zip_attr char(10) external name zip,"
            " static rec integer external name recommended_width,"
            " method addr () returns addr external name Address,"
            " method to_string () returns varchar(255) "
            "   external name to_string;"
            " static method contiguous (a1 addr, a2 addr) "
            "   returns char(3) external name contiguous)"
        )
        assert isinstance(stmt, ast.CreateType)
        assert len(stmt.attributes) == 2
        assert stmt.attributes[1].static
        assert len(stmt.methods) == 3
        assert stmt.methods[0].sql_name == "addr"
        assert stmt.methods[2].static

    def test_create_type_under(self):
        stmt = parse_statement(
            "create type addr_2_line under addr external name 'm.A2' "
            "language python (line2 varchar(100) external name line2)"
        )
        assert stmt.under == "addr"


class TestAccessControl:
    def test_grant_table_privilege(self):
        stmt = parse_statement("grant select on emps to smith, jones")
        assert stmt.privilege == "SELECT"
        assert stmt.object_kind == "TABLE"
        assert stmt.grantees == ["smith", "jones"]

    def test_grant_usage_defaults_to_par(self):
        stmt = parse_statement("grant usage on routines1_jar to smith")
        assert stmt.object_kind == "PAR"

    def test_grant_usage_on_datatype(self):
        stmt = parse_statement("grant usage on datatype addr to public")
        assert stmt.object_kind == "DATATYPE"
        assert stmt.grantees == ["public"]

    def test_grant_execute(self):
        stmt = parse_statement("grant execute on correct_states to smith")
        assert stmt.object_kind == "ROUTINE"

    def test_revoke(self):
        stmt = parse_statement("revoke select on emps from smith")
        assert isinstance(stmt, ast.Revoke)


class TestCallAndTransactions:
    def test_call_with_args(self):
        stmt = parse_statement("call correct_states('CAL', 'CA')")
        assert isinstance(stmt, ast.Call)
        assert len(stmt.args) == 2

    def test_call_qualified(self):
        stmt = parse_statement("call sqlj.install_par('u', 'p')")
        assert stmt.procedure == "sqlj.install_par"

    def test_call_with_markers(self):
        stmt = parse_statement("call best2(?,?,?)")
        assert all(isinstance(a, ast.Parameter) for a in stmt.args)

    def test_commit_rollback(self):
        assert isinstance(parse_statement("commit"), ast.Commit)
        assert isinstance(parse_statement("rollback work"), ast.Rollback)


class TestDialectParsing:
    def test_acme_top(self):
        stmt = parse_statement("select top 5 a from t", ACME)
        assert stmt.limit.value == 5

    def test_acme_rejects_double_pipe(self):
        with pytest.raises(errors.SQLParseError):
            parse_statement("select a || b from t", ACME)

    def test_standard_rejects_top(self):
        with pytest.raises(errors.SQLParseError):
            parse_statement("select top 5 a from t")

    def test_zenith_fetch_first(self):
        stmt = parse_statement(
            "select a from t fetch first 3 rows only", ZENITH
        )
        assert stmt.limit.value == 3

    def test_standard_rejects_fetch_first(self):
        with pytest.raises(errors.SQLParseError):
            parse_statement("select a from t fetch first 3 rows only")


class TestConstraintAndAlterParsing:
    def test_primary_key_column(self):
        stmt = parse_statement(
            "create table t (id integer primary key, v varchar(10))"
        )
        definition = stmt.columns[0]
        assert definition.primary_key
        assert definition.unique
        assert definition.not_null

    def test_unique_column(self):
        stmt = parse_statement("create table t (email varchar(30) unique)")
        assert stmt.columns[0].unique
        assert not stmt.columns[0].primary_key

    def test_constraints_combine_with_default(self):
        stmt = parse_statement(
            "create table t (a integer unique not null default 7)"
        )
        definition = stmt.columns[0]
        assert definition.unique and definition.not_null
        assert definition.default.value == 7

    def test_alter_add_column(self):
        stmt = parse_statement(
            "alter table emps add column bonus decimal(6,2) default 0"
        )
        assert isinstance(stmt, ast.AlterTable)
        assert stmt.action == "ADD"
        assert stmt.column_def.name == "bonus"
        assert stmt.column_def.type_spelling == "DECIMAL(6,2)"

    def test_alter_add_without_column_keyword(self):
        stmt = parse_statement("alter table emps add bonus integer")
        assert stmt.action == "ADD"

    def test_alter_drop_column(self):
        stmt = parse_statement("alter table emps drop column sales")
        assert stmt.action == "DROP"
        assert stmt.column_name == "sales"

    def test_alter_requires_action(self):
        with pytest.raises(errors.SQLParseError):
            parse_statement("alter table emps rename to staff")

    def test_explain_statement(self):
        stmt = parse_statement("explain select 1")
        assert isinstance(stmt, ast.Explain)

    def test_ordering_clause_parsing(self):
        stmt = parse_statement(
            "create type m external name 'x.M' language python ("
            "method compare_to (other m) returns integer "
            "external name compare_to,"
            "ordering full by method compare_to)"
        )
        assert stmt.ordering.kind == "FULL"
        assert stmt.ordering.method == "compare_to"

    def test_equals_only_ordering_parsing(self):
        stmt = parse_statement(
            "create type m external name 'x.M' language python ("
            "ordering equals only by method eq)"
        )
        assert stmt.ordering.kind == "EQUALS"
