"""SQLJ Part 0 runtime.

Generated programs interact with the database exclusively through this
package: :class:`~repro.runtime.context.ConnectionContext` objects carry
connections (and per-profile :class:`ConnectedProfile` caches), the typed
iterator classes in :mod:`repro.runtime.iterators` implement the paper's
strongly typed cursors, and :mod:`repro.runtime.api` holds the entry
points the translator's generated code calls (``sqlj.execute``,
``sqlj.query``, ``sqlj.fetch``, ``sqlj.load_profile``).
"""

from repro.runtime import api as sqlj
from repro.runtime.context import ConnectionContext, ExecutionContext
from repro.runtime.iterators import (
    NamedIterator,
    PositionalIterator,
    SQLJIterator,
)

__all__ = [
    "sqlj",
    "ConnectionContext",
    "ExecutionContext",
    "SQLJIterator",
    "PositionalIterator",
    "NamedIterator",
]
