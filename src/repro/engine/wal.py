"""Append-only write-ahead log with CRC framing and group commit.

The WAL is the redo half of the engine's durability story (the undo half
— in-memory rollback — lives in :mod:`repro.engine.storage`).  Every
mutating statement a durable database executes is appended here as a
logical redo record *before* its transaction commits; COMMIT appends a
commit marker and then waits until the log is fsynced at least that far.
Recovery (:mod:`repro.engine.durability`) replays committed transactions
from the last checkpoint and discards torn tails.

Record framing
--------------

Each record is length-prefixed and checksummed::

    +----------------+----------------+==================+
    | length (u32LE) | crc32  (u32LE) | payload (pickle) |
    +----------------+----------------+==================+

``payload`` pickles the tuple ``(seq, kind, txn, data)``:

``seq``
    Monotonically increasing record sequence number.  Survives
    checkpoint truncation (the snapshot stores the last folded ``seq``),
    which is what makes recovery idempotent when a crash lands between
    "snapshot installed" and "log truncated".
``kind``
    ``"stmt"`` (redo: ``data = (user, sql, params, snapshot_seq)``;
    legacy logs carry 3-tuples without the MVCC snapshot), ``"batch"``
    (redo: ``data = (user, sql, param_rows, snapshot_seq)`` — one
    logical record for a whole batch execution), ``"commit"``
    (``data`` = the MVCC commit stamp, or ``None`` for read-only and
    legacy commits) or ``"abort"`` (``data = None``).  Commit markers
    are appended in commit-stamp order (the session layer holds the
    database's commit mutex across stamp-and-append), so replaying the
    log serially with the recorded snapshots and stamps reproduces the
    original visibility exactly.
``txn``
    Transaction id the record belongs to.

A scan stops at the first frame whose length runs past EOF or whose CRC
does not match — everything from there on is a torn tail from a crash
mid-write and is discarded (then physically truncated) on open.

Group commit
------------

:meth:`WriteAheadLog.sync_to` implements leader/follower group commit:
the first committer becomes the leader, optionally dwells for
``group_window`` seconds (or until ``group_size`` commits are pending),
then performs ONE flush+fsync that covers every record appended so far.
Followers whose commit marker the leader's fsync already covered return
without touching the disk.  Even with ``group_window=0`` concurrent
committers batch naturally: commits that arrive while an fsync is in
flight are all covered by the next one.

Fault-injection sites (see :mod:`repro.faultpoints`): ``wal.append``
fires before a record is framed, ``wal.write`` pipes the framed bytes
(a corrupting rule produces a torn write), ``wal.written`` fires after
the OS write but before durability, and ``wal.fsync`` fires just before
``os.fsync``.

Metrics: ``wal.bytes_appended``, ``wal.records``, ``wal.commits``,
``wal.fsyncs``, and the ``wal.group_commit.batch`` histogram all flow
into ``repro.observability.snapshot()``.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import time
import zlib
from typing import Any, List, Tuple

from repro import errors, faultpoints
from repro.observability import metrics as _metrics

__all__ = [
    "WalRecord",
    "WriteAheadLog",
    "encode_record",
    "scan_records",
]

_HEADER = struct.Struct("<II")  # payload length, payload crc32

_WAL_BYTES = _metrics.registry.counter("wal.bytes_appended")
_WAL_RECORDS = _metrics.registry.counter("wal.records")
_WAL_COMMITS = _metrics.registry.counter("wal.commits")
_WAL_FSYNCS = _metrics.registry.counter("wal.fsyncs")
_WAL_BATCH = _metrics.registry.histogram("wal.group_commit.batch")

#: Record kinds.  ``stmt`` carries ``(user, sql, params, snapshot_seq)``
#: redo data; ``batch`` carries ``(user, sql, param_rows, snapshot_seq)``
#: — ONE logical record for a whole ``execute_batch`` (N parameter rows
#: bound against one statement, replayed atomically); ``commit`` carries
#: the MVCC commit stamp (or None).
KIND_STATEMENT = "stmt"
KIND_BATCH = "batch"
KIND_COMMIT = "commit"
KIND_ABORT = "abort"


class WalRecord:
    """One decoded log record."""

    __slots__ = ("seq", "kind", "txn", "data")

    def __init__(self, seq: int, kind: str, txn: int, data: Any) -> None:
        self.seq = seq
        self.kind = kind
        self.txn = txn
        self.data = data

    def as_tuple(self) -> Tuple[int, str, int, Any]:
        return (self.seq, self.kind, self.txn, self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<WalRecord seq={self.seq} kind={self.kind} "
            f"txn={self.txn}>"
        )


def encode_record(record: WalRecord) -> bytes:
    """Frame ``record`` as ``header + pickled payload``."""
    try:
        payload = pickle.dumps(
            record.as_tuple(), protocol=pickle.HIGHEST_PROTOCOL
        )
    except Exception as exc:
        raise errors.DataError(
            "statement cannot be made durable — parameters and literals "
            "must be picklable (instances of importable classes): "
            f"{exc}"
        ) from exc
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return _HEADER.pack(len(payload), crc) + payload


def scan_records(data: bytes) -> Tuple[List[WalRecord], int]:
    """Decode the valid record prefix of ``data``.

    Returns ``(records, valid_length)`` where ``valid_length`` is the
    byte offset of the first torn or corrupt frame (== ``len(data)``
    for a clean log).  Scanning never raises on damage: a short header,
    a length running past EOF, a CRC mismatch or an unpicklable payload
    all mean "crash tail starts here" and end the scan.
    """
    records: List[WalRecord] = []
    offset = 0
    size = len(data)
    while True:
        if offset + _HEADER.size > size:
            break
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if length == 0 or end > size:
            break
        payload = data[start:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            break
        try:
            seq, kind, txn, record_data = pickle.loads(payload)
        except Exception:
            break
        records.append(WalRecord(seq, kind, txn, record_data))
        offset = end
    return records, offset


class WriteAheadLog:
    """The append/fsync half of the WAL (reading lives in
    :func:`scan_records`).

    The file is opened unbuffered, so every append reaches the OS as one
    ``write`` — nothing lingers in a userspace buffer where an abandoned
    handle could flush it *after* recovery has already truncated the
    file (the in-process crash simulation the tests rely on).
    """

    def __init__(
        self,
        path: str,
        *,
        sync: bool = True,
        group_window: float = 0.0,
        group_size: int = 16,
    ) -> None:
        self.path = path
        self.sync = sync
        self.group_window = group_window
        self.group_size = max(1, group_size)
        self._file = open(path, "ab", buffering=0)
        self._cond = threading.Condition()
        self._tail = self._file.tell()  # bytes appended (== file size)
        self._durable = self._tail
        self._pending_commits = 0
        self._leader_busy = False
        self._closed = False

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def append(self, record: WalRecord) -> int:
        """Append one record; returns the log position (byte offset of
        the record's end) to pass to :meth:`sync_to`.  The record is in
        the OS after this call but NOT yet durable."""
        faultpoints.trigger("wal.append")
        data = encode_record(record)
        # A corrupting fault rule here models a torn write: only part of
        # the frame reaches the file before the "crash".
        data = faultpoints.pipe("wal.write", data)
        with self._cond:
            self._check_open()
            self._file.write(data)
            self._tail += len(data)
            if record.kind == KIND_COMMIT:
                self._pending_commits += 1
            position = self._tail
        faultpoints.trigger("wal.written")
        _WAL_BYTES.increment(len(data))
        _WAL_RECORDS.increment()
        if record.kind == KIND_COMMIT:
            _WAL_COMMITS.increment()
        return position

    # ------------------------------------------------------------------
    # group commit
    # ------------------------------------------------------------------
    def sync_to(self, position: int) -> None:
        """Block until the log is durable at least through ``position``.

        Leader/follower group commit: one caller fsyncs on behalf of
        every commit appended so far, the rest wait.
        """
        if not self.sync:
            return
        with self._cond:
            while position > self._durable:
                if not self._leader_busy:
                    self._leader_busy = True
                    break
                self._cond.wait()
            else:
                return
        try:
            if self.group_window > 0:
                deadline = time.monotonic() + self.group_window
                while True:
                    with self._cond:
                        if self._pending_commits >= self.group_size:
                            break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    time.sleep(min(0.0002, remaining))
            self._fsync()
        finally:
            with self._cond:
                self._leader_busy = False
                self._cond.notify_all()

    def _fsync(self) -> None:
        with self._cond:
            self._check_open()
            target = self._tail
            batch = self._pending_commits
            self._pending_commits = 0
            faultpoints.trigger("wal.fsync")
            os.fsync(self._file.fileno())
            self._durable = target
        _WAL_FSYNCS.increment()
        if batch:
            _WAL_BATCH.observe(batch)

    def flush(self) -> None:
        """Force an fsync of everything appended so far."""
        self._fsync()

    # ------------------------------------------------------------------
    # truncation / lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Discard the whole log (checkpoint has folded it into the
        snapshot).  Sequence numbers keep counting upward."""
        with self._cond:
            self._check_open()
            self._file.truncate(0)
            self._file.seek(0)
            os.fsync(self._file.fileno())
            self._tail = 0
            self._durable = 0
            self._pending_commits = 0

    @property
    def tail(self) -> int:
        with self._cond:
            return self._tail

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            try:
                if self.sync:
                    os.fsync(self._file.fileno())
            finally:
                self._file.close()
            self._cond.notify_all()

    def _check_open(self) -> None:
        if self._closed:
            raise errors.ConnectionClosedError(
                f"write-ahead log {self.path!r} is closed"
            )
