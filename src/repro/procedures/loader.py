"""Executing archive modules inside the database.

Each :class:`repro.engine.database.Database` owns one
:class:`ParModuleLoader`.  The loader turns installed archive sources into
live module objects, caching them per (archive, module).  Cross-archive
imports are resolved by injecting a scoped ``__import__`` into each
module's builtins: a plain ``import helper`` inside archive code first
consults the defining archive and its SQL path
(:func:`repro.procedures.paths.resolve_module_source`), then falls back to
the ordinary Python import machinery — the analogue of the paper's
SQL-supplied class loader, without touching ``sys.modules``.
"""

from __future__ import annotations

import builtins
import types
from typing import Any, Callable, Dict, Tuple

from repro import errors
from repro.engine.catalog import InstalledPar
from repro.procedures.paths import resolve_module_source

__all__ = ["ParModuleLoader"]


class ParModuleLoader:
    """Loads and caches modules from a database's installed archives."""

    def __init__(self, database: Any) -> None:
        self.database = database
        self._cache: Dict[Tuple[str, str], types.ModuleType] = {}

    # ------------------------------------------------------------------
    def invalidate_par(self, par_name: str) -> None:
        """Drop cached modules of one archive (remove_par/replace_par)."""
        for key in [k for k in self._cache if k[0] == par_name]:
            del self._cache[key]

    def load_module(
        self, par: InstalledPar, module_name: str
    ) -> types.ModuleType:
        """Return the live module ``module_name`` as seen from ``par``."""
        resolved = resolve_module_source(
            self.database.catalog, par, module_name
        )
        if resolved is None:
            raise errors.PathResolutionError(
                f"module {module_name!r} is not reachable from archive "
                f"{par.name!r}"
            )
        defining_par, source = resolved
        key = (defining_par.name, module_name)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        module = types.ModuleType(module_name)
        module.__dict__["__builtins__"] = self._scoped_builtins(defining_par)
        # Publish before exec so import cycles inside one archive resolve.
        self._cache[key] = module
        try:
            code = compile(source, f"<par {defining_par.name}:"
                                   f"{module_name}>", "exec")
            exec(code, module.__dict__)
        except errors.SQLException:
            del self._cache[key]
            raise
        except Exception as exc:
            del self._cache[key]
            raise errors.ParInstallationError(
                f"module {module_name!r} in archive "
                f"{defining_par.name!r} failed to load: {exc}"
            ) from exc
        return module

    def resolve_member(
        self, par: InstalledPar, module_name: str, member: str
    ) -> Any:
        """Resolve ``module.member`` to a Python object."""
        module = self.load_module(par, module_name)
        try:
            return getattr(module, member)
        except AttributeError:
            raise errors.RoutineResolutionError(
                f"module {module_name!r} has no attribute {member!r}"
            ) from None

    # ------------------------------------------------------------------
    def _scoped_builtins(self, par: InstalledPar) -> Dict[str, Any]:
        """Builtins dict whose ``__import__`` knows the archive's path."""
        scoped = dict(builtins.__dict__)
        scoped["__import__"] = self._make_import(par)
        return scoped

    def _make_import(self, par: InstalledPar) -> Callable[..., Any]:
        loader = self

        def par_import(
            name: str,
            globals_: Any = None,
            locals_: Any = None,
            fromlist: Any = (),
            level: int = 0,
        ) -> Any:
            if level == 0:
                resolved = resolve_module_source(
                    loader.database.catalog, par, name
                )
                if resolved is not None:
                    module = loader.load_module(par, name)
                    # ``import a.b`` binds ``a``; our archives use flat
                    # names, so returning the module itself is correct for
                    # both ``import m`` and ``from m import x``.
                    return module
            return builtins.__import__(
                name, globals_, locals_, fromlist, level
            )

        return par_import
