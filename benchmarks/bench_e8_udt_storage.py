"""E8 — Part 2: "No need to map Java objects to SQL scalar or BLOB
types" (paper slide 32).

The same address book is stored three ways:

* **udt** — an ``addr`` column (Part 2: objects stored by value),
* **scalar** — flattened into ``street varchar, zip char`` columns
  (the mapping Part 2 spares you from writing),
* **blob** — one pickled-object BLOB column (the other classic mapping).

Workloads: bulk insert, whole-object retrieval, and — the decisive one —
filtering on an object attribute (``zip``), which the UDT schema can do
inside SQL with ``>>`` while the BLOB schema must deserialise every row
host-side.

Expected shape: scalar is fastest to filter (plain column predicate) but
loses the object (identity, methods, subtype); UDT filters inside SQL and
keeps the object; BLOB pays deserialisation on every touched row and
cannot filter in SQL at all.
"""

import time

import pytest

from benchmarks.common import (
    BenchAddress,
    fresh_name,
    install_bench_address_type,
    report,
)
from repro.datatypes.serialization import (
    deserialize_object,
    serialize_object,
)
from repro import DriverManager
from repro import Database

N_ROWS = 500


def build_engine():
    database = Database(name=fresh_name("e8"))
    session = database.create_session(autocommit=True)
    install_bench_address_type(session)
    # Schema variant 1: UDT column.
    session.execute(
        "create table people_udt (name varchar(30), home addr)"
    )
    # Schema variant 2: flattened scalars.
    session.execute(
        "create table people_scalar (name varchar(30), "
        "street varchar(50), zip char(10))"
    )
    # Schema variant 3: pickled object BLOB.
    session.execute(
        "create table people_blob (name varchar(30), home blob)"
    )
    conn = DriverManager.get_connection(
        "pydbc:standard:x", database=database
    )
    return database, session, conn, BenchAddress


def addresses(address_class, count):
    for i in range(count):
        yield (
            f"Person{i:05d}",
            address_class(f"{i} Elm Street", f"{i % 100:02d}{i % 1000:03d}"),
        )


def insert_udt(conn, address_class, count):
    stmt = conn.prepare_statement("insert into people_udt values (?, ?)")
    for name, address in addresses(address_class, count):
        stmt.set_string(1, name)
        stmt.set_object(2, address)
        stmt.execute_update()


def insert_scalar(conn, address_class, count):
    stmt = conn.prepare_statement(
        "insert into people_scalar values (?, ?, ?)"
    )
    for name, address in addresses(address_class, count):
        stmt.set_string(1, name)
        stmt.set_string(2, address.street)
        stmt.set_string(3, address.zip)
        stmt.execute_update()


def insert_blob(conn, address_class, count):
    stmt = conn.prepare_statement(
        "insert into people_blob values (?, ?)"
    )
    for name, address in addresses(address_class, count):
        stmt.set_string(1, name)
        stmt.set_bytes(2, serialize_object(address))
        stmt.execute_update()


def filter_udt(session, zip_prefix):
    return session.execute(
        "select name from people_udt "
        "where home>>zip_attr like ?", [zip_prefix + "%"]
    ).rows


def filter_scalar(session, zip_prefix):
    return session.execute(
        "select name from people_scalar where zip like ?",
        [zip_prefix + "%"],
    ).rows


def filter_blob(session, zip_prefix):
    # SQL cannot see inside the BLOB: fetch everything, deserialise,
    # filter host-side.
    rows = session.execute(
        "select name, home from people_blob"
    ).rows
    return [
        [name]
        for name, payload in rows
        if deserialize_object(payload).zip.startswith(zip_prefix)
    ]


def whole_objects_udt(session):
    return [
        row[0]
        for row in session.execute("select home from people_udt").rows
    ]


def whole_objects_blob(session):
    return [
        deserialize_object(row[0])
        for row in session.execute("select home from people_blob").rows
    ]


def whole_objects_scalar(session, address_class):
    return [
        address_class(street, zip_code)
        for street, zip_code in session.execute(
            "select street, zip from people_scalar"
        ).rows
    ]


@pytest.fixture(scope="module")
def loaded():
    database, session, conn, address_class = build_engine()
    insert_udt(conn, address_class, N_ROWS)
    insert_scalar(conn, address_class, N_ROWS)
    insert_blob(conn, address_class, N_ROWS)
    return database, session, conn, address_class


class TestUdtStorageShape:
    def test_filters_agree(self, loaded):
        _database, session, _conn, _cls = loaded
        udt = {r[0] for r in filter_udt(session, "42")}
        scalar = {r[0] for r in filter_scalar(session, "42")}
        blob = {r[0] for r in filter_blob(session, "42")}
        assert udt == scalar == blob
        assert udt  # non-empty selection

    def test_whole_object_retrieval_equivalent(self, loaded):
        _database, session, _conn, address_class = loaded
        udt_objects = whole_objects_udt(session)
        blob_objects = whole_objects_blob(session)
        assert len(udt_objects) == len(blob_objects) == N_ROWS
        assert udt_objects[0].street == blob_objects[0].street
        # Scalar reconstruction loses nothing for this flat class, but
        # the reconstruction code exists only because the schema was
        # flattened by hand.
        scalar_objects = whole_objects_scalar(session, address_class)
        assert scalar_objects[0].zip.strip() == \
            udt_objects[0].zip.strip()

    def test_filter_shape(self, loaded):
        _database, session, _conn, _cls = loaded

        def best_of(fn, *args, repeats=3):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn(*args)
                best = min(best, time.perf_counter() - start)
            return best

        udt_time = best_of(filter_udt, session, "42")
        scalar_time = best_of(filter_scalar, session, "42")
        blob_time = best_of(filter_blob, session, "42")

        # The structural difference: rows/objects that must cross the
        # SQL/host boundary and be deserialised for one selective filter.
        matches = len(filter_udt(session, "42"))
        udt_moved = matches          # engine filters; matches move
        scalar_moved = matches
        blob_moved = N_ROWS          # every row moves + deserialises

        report(
            f"E8: attribute filter over {N_ROWS} rows "
            f"({matches} match)",
            [
                ("udt (>> in SQL)", f"{udt_time * 1000:.2f}ms",
                 udt_moved, 0),
                ("scalar column", f"{scalar_time * 1000:.2f}ms",
                 scalar_moved, 0),
                ("blob (client-side)", f"{blob_time * 1000:.2f}ms",
                 blob_moved, blob_moved),
            ],
            ("schema", "filter time", "rows moved", "deserialised"),
        )
        # Who wins structurally: the UDT/scalar schemas move only the
        # matches; the BLOB schema always moves and deserialises the
        # whole table.  (Wall-clock at this scale is noise-dominated in
        # a pure-Python engine, so the assertion targets the invariant.)
        assert udt_moved == scalar_moved < blob_moved
        assert matches < N_ROWS // 2

    def test_blob_filter_deserialises_everything(self, loaded):
        _database, session, _conn, _cls = loaded
        calls = {"n": 0}
        import benchmarks.bench_e8_udt_storage as me
        original = me.deserialize_object

        def counting(payload):
            calls["n"] += 1
            return original(payload)

        me.deserialize_object = counting
        try:
            filter_blob(session, "42")
        finally:
            me.deserialize_object = original
        assert calls["n"] == N_ROWS

    def test_blob_schema_cannot_filter_in_sql(self, loaded):
        from repro import errors

        _database, session, _conn, _cls = loaded
        with pytest.raises(errors.SQLException):
            session.execute(
                "select name from people_blob "
                "where home>>zip_attr like '42%'"
            )


@pytest.mark.benchmark(group="e8-insert")
def test_insert_udt(benchmark):
    database, session, conn, address_class = build_engine()
    benchmark.pedantic(
        insert_udt, args=(conn, address_class, 100),
        rounds=5, iterations=1,
    )


@pytest.mark.benchmark(group="e8-insert")
def test_insert_scalar(benchmark):
    database, session, conn, address_class = build_engine()
    benchmark.pedantic(
        insert_scalar, args=(conn, address_class, 100),
        rounds=5, iterations=1,
    )


@pytest.mark.benchmark(group="e8-insert")
def test_insert_blob(benchmark):
    database, session, conn, address_class = build_engine()
    benchmark.pedantic(
        insert_blob, args=(conn, address_class, 100),
        rounds=5, iterations=1,
    )


@pytest.mark.benchmark(group="e8-filter")
def test_filter_udt_bench(benchmark, loaded):
    _database, session, _conn, _cls = loaded
    rows = benchmark(filter_udt, session, "42")
    assert rows


@pytest.mark.benchmark(group="e8-filter")
def test_filter_scalar_bench(benchmark, loaded):
    _database, session, _conn, _cls = loaded
    rows = benchmark(filter_scalar, session, "42")
    assert rows


@pytest.mark.benchmark(group="e8-filter")
def test_filter_blob_bench(benchmark, loaded):
    _database, session, _conn, _cls = loaded
    rows = benchmark(filter_blob, session, "42")
    assert rows
