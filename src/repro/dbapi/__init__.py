"""PyDBC: the JDBC-shaped connectivity layer.

SQLJ is specified *against* the JDBC interface ("Leverages JDBC
technology"); this package is that interface over :mod:`repro.engine`.
It mirrors the JDBC classes the paper uses — ``DriverManager``,
``Connection``, ``Statement`` / ``PreparedStatement`` /
``CallableStatement``, ``ResultSet``, ``DatabaseMetaData`` — including
the JDBC 2.0 features the paper highlights: objects-by-value through
``get_object``/``set_object``, UDT metadata via ``get_udts``, and the
``PY_OBJECT`` (the paper's ``JAVA_OBJECT``) type code.

URLs take the form ``pydbc:<dialect>:<database-name>`` (mirroring
``jdbc:odbc:acme.cs``); ``DBAPI:DEFAULT:CONNECTION`` (also spelled
``JDBC:DEFAULT:CONNECTION``) works inside external routine bodies as the
paper prescribes.

The connectivity entry points (``DriverManager``, ``Connection``,
``ConnectionPool``, ...) now live on the top-level :mod:`repro` façade;
importing them from ``repro.dbapi`` still works but emits
:class:`DeprecationWarning`.  The statement/result classes
(``Statement``, ``ResultSet``, ``DatabaseMetaData``, ...) are normally
obtained from a connection rather than imported, and stay importable
here without a warning.
"""

from __future__ import annotations

import importlib
import warnings
from typing import Any, List

from repro.dbapi.cursor import Cursor, apilevel, paramstyle
from repro.dbapi.metadata import DatabaseMetaData
from repro.dbapi.resultset import ResultSet
from repro.dbapi.statement import (
    BatchUpdateError,
    CallableStatement,
    PreparedStatement,
    Statement,
)

__all__ = [
    "DriverManager",
    "registry",
    "Connection",
    "ConnectionPool",
    "PooledConnection",
    "Statement",
    "PreparedStatement",
    "CallableStatement",
    "BatchUpdateError",
    "ResultSet",
    "Cursor",
    "DatabaseMetaData",
    "apilevel",
    "paramstyle",
]

# Names that moved to the repro façade: lazy PEP 562 shims that warn.
_FACADE_HOMES = {
    "DriverManager": "repro.dbapi.driver",
    "registry": "repro.dbapi.driver",
    "Connection": "repro.dbapi.connection",
    "ConnectionPool": "repro.dbapi.pool",
    "PooledConnection": "repro.dbapi.pool",
}


def __getattr__(name: str) -> Any:
    home = _FACADE_HOMES.get(name)
    if home is None:
        raise AttributeError(
            f"module 'repro.dbapi' has no attribute {name!r}"
        )
    warnings.warn(
        f"importing {name} from repro.dbapi is deprecated; "
        "import it from the top-level repro package instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(home), name)


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(__all__))
