"""LSM storage engine tests: SSTable format, flush mechanics, merged
reads, size-tiered compaction with horizon-bounded tombstone GC, the
vacuum handoff, and the LSM-specific crash windows (torn manifest,
mid-flush, mid-compaction).

The generic durability contract — crash matrix, isolation battery —
runs against the LSM engine through the storage-parametrized fixtures
in test_durability.py / test_isolation.py; this file covers what is
unique to the LSM layout itself.
"""

from __future__ import annotations

import os

import pytest

from repro import errors
from repro.engine.durability import WAL_FILENAME, open_database
from repro.engine.lsm import MANIFEST_FILENAME, SSTableReader, write_sstable
from repro.engine.lsm.sstable import BLOCK_ENTRIES
from repro.observability import metrics as _metrics
from repro.testing.faults import FaultPlan


def table_state(database, table="t"):
    session = database.create_session(autocommit=True)
    try:
        result = session.execute(f"SELECT k, v FROM {table}")
        return {row[0]: row[1] for row in result.rows}
    finally:
        session.close()


def open_lsm(directory, **kw):
    kw.setdefault("sync", False)
    kw.setdefault("checkpoint_interval", 0)
    return open_database(str(directory), storage="lsm", **kw)


def counters():
    return _metrics.snapshot()["counters"]


def crash(database):
    """Simulate kill -9 before abandoning ``database``: a real crash
    takes the compaction daemon down with the process, so halt it
    instead of letting it keep mutating the directory the reopen is
    about to read (two live owners of one data directory is
    explicitly unsupported)."""
    database.lsm_store.close()


# ---------------------------------------------------------------------------
# SSTable file format
# ---------------------------------------------------------------------------
class TestSSTable:
    def test_roundtrip_and_point_lookup(self, tmp_path):
        path = os.path.join(str(tmp_path), "run-00000001.run")
        entries = sorted(
            [("d", rid, rid + 100, [rid, f"v{rid}"])
             for rid in range(1, 50, 2)]
            + [("t", rid, 999) for rid in range(2, 20, 4)],
            key=lambda e: e[1],
        )
        write_sstable(path, entries, table="t")
        reader = SSTableReader(path)
        assert list(reader.entries()) == entries
        assert reader.table == "t"
        assert reader.tombstone_rids == frozenset(range(2, 20, 4))
        # Point lookups: every present data rid found with its payload...
        for rid in range(1, 50, 2):
            assert reader.get(rid) == ("d", rid, rid + 100, [rid, f"v{rid}"])
        # ...absent rids (and tombstone-only rids) return None.
        for rid in range(0, 60, 2):
            assert reader.get(rid) is None

    def test_sparse_index_spans_blocks(self, tmp_path):
        path = os.path.join(str(tmp_path), "run-00000001.run")
        count = BLOCK_ENTRIES * 3 + 17  # forces 4 blocks
        entries = [("d", rid, 1, [rid]) for rid in range(1, count + 1)]
        write_sstable(path, entries)
        reader = SSTableReader(path)
        assert len(reader._index) == 4
        # Lookups from every block, including block boundaries.
        for rid in (1, BLOCK_ENTRIES, BLOCK_ENTRIES + 1, count - 1, count):
            assert reader.get(rid) == ("d", rid, 1, [rid])
        assert reader.get(count + 1) is None

    def test_bloom_filter_has_no_false_negatives(self, tmp_path):
        path = os.path.join(str(tmp_path), "run-00000001.run")
        rids = list(range(1, 2000, 3))
        write_sstable(path, [("d", rid, 1, [rid]) for rid in rids])
        reader = SSTableReader(path)
        assert all(reader.might_contain(rid) for rid in rids)
        # False positives are allowed but must be rare (~1-2%).
        absent = [rid for rid in range(1, 2000) if rid % 3 != 1]
        fp = sum(1 for rid in absent if reader.might_contain(rid))
        assert fp / len(absent) < 0.05

    def test_reader_survives_unlink(self, tmp_path):
        """Compaction unlinks victim runs while a concurrent scan may
        still hold their readers: the reader keeps its descriptor open,
        so POSIX unlink semantics keep every block readable."""
        path = os.path.join(str(tmp_path), "run-00000001.run")
        entries = [("d", rid, 1, [rid]) for rid in range(1, 600)]
        write_sstable(path, entries)
        reader = SSTableReader(path)
        os.unlink(path)
        assert list(reader.entries()) == entries
        assert reader.get(42) == ("d", 42, 1, [42])

    def test_torn_run_file_rejected(self, tmp_path):
        path = os.path.join(str(tmp_path), "run-00000001.run")
        write_sstable(path, [("d", 1, 1, [1])])
        with open(path, "rb") as fh:
            blob = fh.read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        with pytest.raises(errors.DataError):
            SSTableReader(path)


# ---------------------------------------------------------------------------
# flush mechanics
# ---------------------------------------------------------------------------
class TestFlush:
    def test_flush_truncates_wal_and_installs_manifest(self, tmp_path):
        d = str(tmp_path)
        db = open_lsm(d)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("INSERT INTO t VALUES (1, 10)")
        assert os.path.getsize(os.path.join(d, WAL_FILENAME)) > 0
        before = counters().get("lsm.flushes", 0)
        assert db.checkpoint() is True
        assert counters()["lsm.flushes"] == before + 1
        assert os.path.getsize(os.path.join(d, WAL_FILENAME)) == 0
        assert os.path.exists(os.path.join(d, MANIFEST_FILENAME))
        # No snapshot file: the runs + manifest ARE the checkpoint.
        assert not os.path.exists(os.path.join(d, "snapshot.db"))
        hist = _metrics.snapshot()["histograms"]
        assert hist["lsm.stall_ms"]["count"] >= 1
        db.close()

    def test_flush_is_delta_not_whole_database(self, tmp_path):
        db = open_lsm(tmp_path)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        for i in range(100):
            s.execute(f"INSERT INTO t VALUES ({i}, {i})")
        db.checkpoint()
        store = db.lsm_store
        first = store.runs["t"][-1]
        assert first.data_count == 100
        s.execute("INSERT INTO t VALUES (1000, 1)")
        db.checkpoint()
        second = store.runs["t"][-1]
        # The second flush wrote only the one new row.
        assert second.data_count == 1
        assert second is not first
        db.close()

    def test_born_and_died_between_flushes_never_hits_disk(
        self, tmp_path
    ):
        db = open_lsm(tmp_path)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("INSERT INTO t VALUES (1, 10)")
        s.execute("DELETE FROM t WHERE k = 1")
        s.execute("INSERT INTO t VALUES (2, 20)")
        db.checkpoint()
        run = db.lsm_store.runs["t"][-1]
        # One data entry (k=2); the k=1 version died unflushed, so
        # neither a data entry nor a tombstone was written for it.
        assert run.data_count == 1
        assert run.tombstone_rids == frozenset()
        db.close()

    def test_delete_after_flush_writes_tombstone(self, tmp_path):
        d = str(tmp_path)
        db = open_lsm(d)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("INSERT INTO t VALUES (1, 10)")
        s.execute("INSERT INTO t VALUES (2, 20)")
        db.checkpoint()
        s.execute("DELETE FROM t WHERE k = 1")
        db.checkpoint()
        store = db.lsm_store
        tomb_run = store.runs["t"][-1]
        assert len(tomb_run.tombstone_rids) == 1
        db.close()
        db2 = open_database(d)
        assert table_state(db2) == {2: 20}
        db2.close()

    def test_merged_scan_shadows_older_runs(self, tmp_path):
        db = open_lsm(tmp_path)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("INSERT INTO t VALUES (1, 10)")
        s.execute("INSERT INTO t VALUES (2, 20)")
        db.checkpoint()
        s.execute("UPDATE t SET v = 11 WHERE k = 1")
        db.checkpoint()
        store = db.lsm_store
        flushed = {
            row[0]: row[1] for _, _, row in store.scan_table("t")
        }
        assert flushed == {1: 11, 2: 20}
        # Point lookups honour tombstones the same way.
        old_rid = next(
            rid for rid, _, row in store.scan_table("t") if row[0] == 2
        )
        assert store.get("t", old_rid)[3] == [2, 20]
        db.close()

    def test_storage_flag_is_creation_time_only(self, tmp_path):
        d = str(tmp_path)
        db = open_lsm(d)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("INSERT INTO t VALUES (1, 10)")
        db.close()
        # Reopening with the default (snapshot) keeps the LSM layout.
        db2 = open_database(d)
        assert db2.durability.storage == "lsm"
        assert db2.lsm_store is not None
        assert table_state(db2) == {1: 10}
        db2.close()

    def test_unknown_storage_rejected(self, tmp_path):
        with pytest.raises(errors.ConnectionError_):
            open_database(str(tmp_path), storage="btree")

    def test_storage_flag_survives_crash_before_first_flush(
        self, tmp_path
    ):
        """The creation-time manifest makes the engine choice durable
        immediately: a crash before any checkpoint must not reopen the
        directory under the snapshot engine."""
        d = str(tmp_path)
        db = open_lsm(d)
        assert os.path.exists(os.path.join(d, MANIFEST_FILENAME))
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("INSERT INTO t VALUES (1, 10)")
        crash(db)
        del s, db  # crash: no checkpoint ever ran

        db2 = open_database(d)
        assert db2.durability.storage == "lsm"
        assert table_state(db2) == {1: 10}
        db2.close()


# ---------------------------------------------------------------------------
# compaction
# ---------------------------------------------------------------------------
def _load_batches(db, batches, rows_per_batch, offset=0):
    s = db.create_session(autocommit=True)
    for b in range(batches):
        for i in range(rows_per_batch):
            k = offset + b * rows_per_batch + i
            s.execute(f"INSERT INTO t VALUES ({k}, {k})")
        db.checkpoint()
    s.close()


class TestCompaction:
    def test_size_tiered_merge_reduces_runs(self, tmp_path):
        db = open_lsm(tmp_path)
        db.lsm_store.compact_threshold = 100  # hold background off
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.close()
        _load_batches(db, batches=5, rows_per_batch=20)
        store = db.lsm_store
        assert store.run_count("t") == 5
        store.compact_threshold = 4
        before = counters().get("lsm.compactions", 0)
        assert store.compact(db) >= 1
        assert counters()["lsm.compactions"] > before
        assert store.run_count("t") < 5
        # Every row still readable from the merged layout.
        flushed = {row[0] for _, _, row in store.scan_table("t")}
        assert flushed == set(range(100))
        db.close()

    def test_compaction_preserves_state_across_reopen(self, tmp_path):
        d = str(tmp_path)
        db = open_lsm(d)
        db.lsm_store.compact_threshold = 100
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.close()
        _load_batches(db, batches=4, rows_per_batch=10)
        s = db.create_session(autocommit=True)
        s.execute("DELETE FROM t WHERE k < 5")
        s.execute("UPDATE t SET v = 999 WHERE k = 7")
        s.close()
        db.checkpoint()
        db.lsm_store.compact_threshold = 2
        assert db.lsm_store.compact(db) >= 1
        expected = table_state(db)
        db.close()
        db2 = open_database(d)
        assert table_state(db2) == expected
        assert expected[7] == 999 and 0 not in expected
        db2.close()

    def test_tombstone_gc_bounded_by_oldest_visible_seq(self, tmp_path):
        db = open_lsm(tmp_path)
        store = db.lsm_store
        store.compact_threshold = 100
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        for i in range(10):
            s.execute(f"INSERT INTO t VALUES ({i}, {i})")
        db.checkpoint()
        # Pin an old snapshot with a reader transaction.
        reader = db.create_session(autocommit=False)
        assert reader.execute("SELECT COUNT(*) FROM t").rows == [[10]]
        s.execute("DELETE FROM t WHERE k < 4")
        db.checkpoint()
        store.compact_threshold = 2
        assert store.compact(db) == 1
        merged = store.runs["t"][-1]
        # The reader's snapshot still needs those rows: data entries
        # and tombstones both survive the merge.
        assert merged.data_count == 10
        assert len(merged.tombstone_rids) == 4
        reader.close()  # horizon advances past the deletions
        before = counters().get("lsm.tombstones_gced", 0)
        store.compact_threshold = 1  # rewrite the lone merged run
        assert store.compact(db) == 1
        gced = store.runs["t"][-1]
        assert gced.data_count == 6
        assert gced.tombstone_rids == frozenset()
        assert counters()["lsm.tombstones_gced"] == before + 4
        db.close()

    def test_tombstone_kept_when_data_in_unmerged_run(self, tmp_path):
        db = open_lsm(tmp_path)
        store = db.lsm_store
        store.compact_threshold = 100
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        # One big old run the span picker will not select...
        for i in range(200):
            s.execute(f"INSERT INTO t VALUES ({i}, {i})")
        db.checkpoint()
        # ...then several small runs, one holding a tombstone whose
        # data entry lives in the big run.
        s.execute("DELETE FROM t WHERE k = 0")
        db.checkpoint()
        for b in range(3):
            s.execute(f"INSERT INTO t VALUES ({1000 + b}, 1)")
            db.checkpoint()
        store.compact_threshold = 4
        assert store.compact(db) == 1
        assert store.run_count("t") == 2  # big run + merged small runs
        merged = store.runs["t"][-1]
        # The tombstone must survive: dropping it would resurrect k=0.
        assert len(merged.tombstone_rids) == 1
        flushed = {row[0] for _, _, row in store.scan_table("t")}
        assert 0 not in flushed and len(flushed) == 202
        db.close()

    def test_background_compaction_runs_after_flushes(self, tmp_path):
        db = open_lsm(tmp_path)
        db.lsm_store.compact_threshold = 4
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.close()
        _load_batches(db, batches=6, rows_per_batch=20)
        thread = db.lsm_store._compact_thread
        if thread is not None:
            thread.join(timeout=10.0)
        assert db.lsm_store.run_count("t") < 6
        db.close()

    def test_background_compaction_surfaces_corruption(self, tmp_path):
        """Real on-disk corruption found by a background pass is
        reported (``lsm.compact.corruption``) and halts further
        background compaction instead of being retried forever."""
        db = open_lsm(tmp_path)
        store = db.lsm_store
        store.compact_threshold = 100  # hold background off while loading
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.close()
        _load_batches(db, batches=4, rows_per_batch=10)
        # Corrupt one run's first data block in place (the footer was
        # cached at open, so the reader construction already passed).
        victim = store.runs["t"][0].path
        offset = 20  # past magic + frame header: inside the payload
        with open(victim, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ 0xFF]))
        before = counters().get("lsm.compact.corruption", 0)
        store.compact_threshold = 2
        assert store.maybe_compact(db) is True
        thread = store._compact_thread
        if thread is not None:
            thread.join(timeout=10.0)
        assert counters()["lsm.compact.corruption"] == before + 1
        assert isinstance(store.corruption_error, errors.DataError)
        # No silent retry loop: background compaction refuses to run.
        assert store.maybe_compact(db) is False
        # A foreground pass still raises the damage to the caller.
        with pytest.raises(errors.DataError):
            store.compact(db)
        db.close()

    def test_vacuum_triggers_compaction_for_lsm(self, tmp_path):
        """The storage-aware vacuum bugfix: a threshold-triggered
        vacuum pass offers the LSM store a compaction instead of only
        sweeping heap versions."""
        db = open_lsm(tmp_path)
        db.lsm_store.compact_threshold = 4
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.close()
        _load_batches(db, batches=5, rows_per_batch=20)
        # Quiesce any flush-triggered background pass first.
        thread = db.lsm_store._compact_thread
        if thread is not None:
            thread.join(timeout=10.0)
        runs_before = db.lsm_store.run_count("t")
        db.vacuum()
        thread = db.lsm_store._compact_thread
        if thread is not None:
            thread.join(timeout=10.0)
        assert db.lsm_store.run_count("t") <= runs_before
        db.close()


# ---------------------------------------------------------------------------
# vacuum handoff
# ---------------------------------------------------------------------------
class TestVacuumHandoff:
    def test_vacuumed_deletion_still_reaches_disk(self, tmp_path):
        d = str(tmp_path)
        db = open_lsm(d)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        for i in range(6):
            s.execute(f"INSERT INTO t VALUES ({i}, {i})")
        db.checkpoint()
        s.execute("DELETE FROM t WHERE k < 3")
        # Vacuum physically removes the dead versions from the heap
        # BEFORE any flush wrote their tombstones...
        db.vacuum()
        assert db.lsm_store._pending["t"]
        # ...the next flush must still record the deletions.
        db.checkpoint()
        assert not db.lsm_store._pending
        db.close()
        db2 = open_database(d)
        assert table_state(db2) == {3: 3, 4: 4, 5: 5}
        db2.close()

    def test_crash_after_vacuum_before_flush_is_safe(self, tmp_path):
        """The WAL still holds the deleting statements, so losing the
        pending-tombstone buffer in a crash is recovery-neutral."""
        d = str(tmp_path)
        db = open_lsm(d)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        for i in range(6):
            s.execute(f"INSERT INTO t VALUES ({i}, {i})")
        db.checkpoint()
        s.execute("DELETE FROM t WHERE k < 3")
        db.vacuum()
        crash(db)
        del s, db  # crash with the handoff un-flushed

        db2 = open_database(d)
        assert table_state(db2) == {3: 3, 4: 4, 5: 5}
        db2.close()


# ---------------------------------------------------------------------------
# LSM crash windows
# ---------------------------------------------------------------------------
class TestLsmCrashWindows:
    def _seed(self, d):
        db = open_lsm(d)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("INSERT INTO t VALUES (1, 10)")
        db.checkpoint()
        s.execute("INSERT INTO t VALUES (2, 20)")
        return db, s

    def test_crash_before_flush_writes_anything(self, tmp_path):
        d = str(tmp_path)
        db, s = self._seed(d)
        plan = FaultPlan(seed=21)
        plan.inject(
            "lsm.flush", error=errors.OperatorExecutionError, times=1
        )
        with plan.armed():
            with pytest.raises(errors.ReproError):
                db.checkpoint()
        crash(db)
        del s, db  # crash: manifest old, WAL intact

        db2 = open_database(d)
        assert table_state(db2) == {1: 10, 2: 20}
        db2.close()

    def test_crash_between_runs_and_manifest(self, tmp_path):
        """Runs written but manifest not installed: the old manifest
        still governs, replay covers the delta, and orphaned run files
        (here from a simulated crash in that window) are swept at
        open."""
        d = str(tmp_path)
        db, s = self._seed(d)
        before = {f for f in os.listdir(d) if f.endswith(".run")}
        plan = FaultPlan(seed=22)
        plan.inject(
            "lsm.manifest", error=errors.OperatorExecutionError, times=1
        )
        with plan.armed():
            with pytest.raises(errors.ReproError):
                db.checkpoint()
        assert plan.fired["lsm.manifest"] == 1
        # The failed attempt cleaned up its own run files in-process —
        # nothing leaks while the process lives on.
        after = {f for f in os.listdir(d) if f.endswith(".run")}
        assert after == before
        # A real crash in the window leaves completed run files with no
        # manifest referencing them; plant that state by hand.
        orphan = os.path.join(d, "run-77777777.run")
        write_sstable(orphan, [("d", 999, 1, [999, 0])], table="t")
        with open(os.path.join(d, "run-77777778.run.tmp"), "wb") as fh:
            fh.write(b"\x00half-written run")
        crash(db)
        del s, db  # crash

        db2 = open_database(d)
        assert table_state(db2) == {1: 10, 2: 20}
        referenced = {
            os.path.basename(r.path)
            for runs in db2.lsm_store.runs.values()
            for r in runs
        }
        # Every run file on disk is manifest-referenced again; the
        # orphan and the temp leftovers were swept.
        on_disk = {f for f in os.listdir(d) if f.endswith(".run")}
        assert on_disk == referenced
        assert not os.path.exists(orphan)
        assert not any(f.endswith(".tmp") for f in os.listdir(d))
        db2.close()

    def test_failed_flush_leaves_memtable_reflushable(self, tmp_path):
        """A flush that fails after writing runs but before the
        manifest install must leave the heap untouched: rid assignments
        are staged, so the retry re-emits the identical delta.  (The
        historical bug: rids were assigned eagerly, the retry skipped
        those versions as already-flushed, installed a manifest without
        their rows and truncated the WAL — silent loss of committed
        data.)"""
        d = str(tmp_path)
        db, s = self._seed(d)
        plan = FaultPlan(seed=26)
        plan.inject(
            "lsm.manifest", error=errors.OperatorExecutionError, times=1
        )
        with plan.armed():
            with pytest.raises(errors.ReproError):
                db.checkpoint()
        # The retry succeeds and must cover the row the failed attempt
        # tried to flush.
        assert db.checkpoint() is True
        assert os.path.getsize(os.path.join(d, WAL_FILENAME)) == 0
        flushed = {
            row[0]: row[1] for _, _, row in db.lsm_store.scan_table("t")
        }
        assert flushed == {1: 10, 2: 20}
        crash(db)
        del s, db  # crash: the WAL is empty, the runs must be complete

        db2 = open_database(d)
        assert table_state(db2) == {1: 10, 2: 20}
        db2.close()

    def test_crash_between_manifest_and_wal_truncate(self, tmp_path):
        """Manifest installed, WAL not truncated: replay must skip the
        already-folded records (seq <= manifest.last_seq)."""
        d = str(tmp_path)
        db, s = self._seed(d)
        plan = FaultPlan(seed=23)
        plan.inject(
            "lsm.flush.install",
            error=errors.OperatorExecutionError,
            times=1,
        )
        with plan.armed():
            with pytest.raises(errors.ReproError):
                db.checkpoint()
        assert os.path.getsize(os.path.join(d, WAL_FILENAME)) > 0
        crash(db)
        del s, db  # crash

        db2 = open_database(d)
        assert table_state(db2) == {1: 10, 2: 20}  # once, not twice
        db2.close()

    def test_crash_mid_compaction_before_install(self, tmp_path):
        d = str(tmp_path)
        db = open_lsm(d)
        db.lsm_store.compact_threshold = 100
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.close()
        _load_batches(db, batches=4, rows_per_batch=10)
        expected = table_state(db)
        db.lsm_store.compact_threshold = 2
        plan = FaultPlan(seed=24)
        plan.inject(
            "lsm.compact", error=errors.OperatorExecutionError, times=1
        )
        with plan.armed():
            with pytest.raises(errors.ReproError):
                db.lsm_store.compact(db)
        crash(db)
        del db  # crash: old manifest, victims intact

        db2 = open_database(d)
        assert table_state(db2) == expected
        db2.close()

    def test_crash_mid_compaction_after_install(self, tmp_path):
        """Merged manifest installed but victim runs not yet unlinked:
        recovery trusts the manifest and sweeps the victims."""
        d = str(tmp_path)
        db = open_lsm(d)
        db.lsm_store.compact_threshold = 100
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.close()
        _load_batches(db, batches=4, rows_per_batch=10)
        expected = table_state(db)
        db.lsm_store.compact_threshold = 2
        plan = FaultPlan(seed=25)
        plan.inject(
            "lsm.compact.install",
            error=errors.OperatorExecutionError,
            times=1,
        )
        with plan.armed():
            with pytest.raises(errors.ReproError):
                db.lsm_store.compact(db)
        victims_on_disk = {
            f for f in os.listdir(d) if f.endswith(".run")
        }
        crash(db)
        del db  # crash

        db2 = open_database(d)
        assert table_state(db2) == expected
        on_disk = {f for f in os.listdir(d) if f.endswith(".run")}
        assert on_disk < victims_on_disk  # victims swept at open
        db2.close()

    def test_torn_manifest_raises_clear_error(self, tmp_path):
        d = str(tmp_path)
        db, s = self._seed(d)
        s.close()
        db.close()
        path = os.path.join(d, MANIFEST_FILENAME)
        with open(path, "rb") as fh:
            blob = fh.read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) - 7])  # chop the tail
        with pytest.raises(errors.DataError):
            open_database(d)
        # A foreign file is rejected too, not silently emptied.
        with open(path, "wb") as fh:
            fh.write(b"not a manifest at all")
        with pytest.raises(errors.DataError):
            open_database(d)

    def test_leftover_manifest_tmp_is_ignored_and_swept(self, tmp_path):
        d = str(tmp_path)
        db, s = self._seed(d)
        s.close()
        db.close()
        tmp = os.path.join(d, MANIFEST_FILENAME + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(b"\x00garbage from a crashed install")
        db2 = open_database(d)
        assert table_state(db2) == {1: 10, 2: 20}
        assert not os.path.exists(tmp)
        db2.close()


# ---------------------------------------------------------------------------
# DDL interplay
# ---------------------------------------------------------------------------
class TestDdlInvalidation:
    def test_alter_add_column_rewrites_runs(self, tmp_path):
        d = str(tmp_path)
        db = open_lsm(d)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("INSERT INTO t VALUES (1, 10)")
        db.checkpoint()
        s.execute("ALTER TABLE t ADD COLUMN w INT")
        s.execute("UPDATE t SET w = 7 WHERE k = 1")
        db.checkpoint()
        db.close()
        db2 = open_database(d)
        s2 = db2.create_session(autocommit=True)
        assert s2.execute("SELECT k, v, w FROM t").rows == [[1, 10, 7]]
        db2.close()

    def test_alter_drop_column_rewrites_runs(self, tmp_path):
        d = str(tmp_path)
        db = open_lsm(d)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT, w INT)")
        s.execute("INSERT INTO t VALUES (1, 10, 7)")
        db.checkpoint()
        s.execute("ALTER TABLE t DROP COLUMN w")
        db.checkpoint()
        db.close()
        db2 = open_database(d)
        assert table_state(db2) == {1: 10}
        db2.close()

    def test_drop_table_reclaims_run_files(self, tmp_path):
        d = str(tmp_path)
        db = open_lsm(d)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("INSERT INTO t VALUES (1, 10)")
        db.checkpoint()
        assert any(f.endswith(".run") for f in os.listdir(d))
        s.execute("DROP TABLE t")
        db.checkpoint()
        assert not any(f.endswith(".run") for f in os.listdir(d))
        db.close()
