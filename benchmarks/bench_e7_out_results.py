"""E7 — Part 1 OUT parameters and dynamic result sets
(paper slides 25-29).

Workloads:

* ``best2`` — eight OUT parameters through a CallableStatement, at
  varying region selectivity (how many employees qualify),
* ``ranked_emps`` — a dynamic result set drained by the caller, with the
  result-set size swept via the region parameter.

Correctness of both against reference computations, plus throughput of
each invocation style.

Expected shape: best2 cost is dominated by its internal query (constant
in the two output rows); ranked_emps cost grows with the size of the
returned result set.
"""

import time

import pytest

from benchmarks.common import (
    STATES,
    install_paper_routines,
    make_emps_db,
    report,
)
from repro import DriverManager
from repro.sqltypes import typecodes

N_ROWS = 1000


@pytest.fixture(scope="module")
def engine():
    database, session = make_emps_db(N_ROWS, name="e7")
    install_paper_routines(database, session)
    conn = DriverManager.get_connection(
        "pydbc:standard:x", database=database
    )
    return database, session, conn


def region_of(state):
    if state in ("MN", "VT", "NH"):
        return 1
    if state in ("FL", "GA", "AL"):
        return 2
    if state in ("CA", "AZ", "NV"):
        return 3
    return 4


def reference_ranking(session, region):
    rows = session.execute(
        "select name, state, sales from emps where sales is not null"
    ).rows
    qualifying = [
        (name, region_of(state.strip()), sales)
        for name, state, sales in rows
        if region_of(state.strip()) > region
    ]
    qualifying.sort(key=lambda r: (-r[2], 0))
    return qualifying


def call_best2(conn, region):
    stmt = conn.prepare_call("{call best2(?,?,?,?,?,?,?,?,?)}")
    for index, code in [
        (1, typecodes.VARCHAR), (2, typecodes.VARCHAR),
        (3, typecodes.INTEGER), (4, typecodes.DECIMAL),
        (5, typecodes.VARCHAR), (6, typecodes.VARCHAR),
        (7, typecodes.INTEGER), (8, typecodes.DECIMAL),
    ]:
        stmt.register_out_parameter(index, code)
    stmt.set_int(9, region)
    stmt.execute()
    return (
        stmt.get_string(1), stmt.get_decimal(4),
        stmt.get_string(5), stmt.get_decimal(8),
    )


def call_ranked(conn, region):
    stmt = conn.prepare_call("{call ranked_emps(?)}")
    stmt.set_int(1, region)
    stmt.execute()
    rs = stmt.get_result_set()
    names = []
    while rs.next():
        names.append(rs.get_string("name"))
    return names


class TestOutAndResultSets:
    def test_best2_matches_reference(self, engine):
        _database, session, conn = engine
        for region in (0, 1, 2, 3):
            expected = reference_ranking(session, region)
            n1, s1, n2, s2 = call_best2(conn, region)
            if not expected:
                assert n1 == "****"
                continue
            assert s1 == expected[0][2]
            if len(expected) > 1:
                assert s2 == expected[1][2]
            else:
                assert n2 == "****"

    def test_ranked_matches_reference(self, engine):
        _database, session, conn = engine
        for region in (1, 2, 3):
            expected = [r[0] for r in reference_ranking(session, region)]
            got = call_ranked(conn, region)
            assert len(got) == len(expected)
            # Sales ties make exact order ambiguous; compare as sets and
            # the leading entry.
            assert set(got) == set(expected)

    def test_result_set_size_sweep(self, engine):
        _database, session, conn = engine
        rows = []
        previous = None
        for region in (3, 2, 1, 0):
            start = time.perf_counter()
            names = call_ranked(conn, region)
            elapsed = time.perf_counter() - start
            rows.append(
                (region, len(names), f"{elapsed * 1000:.2f}ms")
            )
            if previous is not None:
                assert len(names) >= previous  # selectivity grows
            previous = len(names)
        report(
            "E7: ranked_emps result-set sweep",
            rows,
            ("region >", "rows returned", "wall time"),
        )


@pytest.mark.benchmark(group="e7-out-params")
def test_best2_throughput(benchmark, engine):
    _database, _session, conn = engine
    result = benchmark(call_best2, conn, 2)
    assert result[0] != "****"


@pytest.mark.benchmark(group="e7-result-sets")
def test_ranked_small_result(benchmark, engine):
    _database, _session, conn = engine
    names = benchmark(call_ranked, conn, 3)
    assert names


@pytest.mark.benchmark(group="e7-result-sets")
def test_ranked_large_result(benchmark, engine):
    _database, _session, conn = engine
    names = benchmark(call_ranked, conn, 0)
    assert len(names) > 500
