"""Follow-on features the paper defers: session state, persistence,
batch updates, EXPLAIN, and type ordering.

The tutorial marks several capabilities as follow-on work ("Consider
session and database persistence as follow-on", "Additional clauses for
ordering specs").  This walkthrough exercises all of them.

Run:  python examples/followons_demo.py
"""

import os
import tempfile

from repro import DriverManager
from repro import Database
from repro.engine.persistence import load_database, save_database
from repro.procedures import build_par

ROUTINES = '''
from repro.procedures.state import session_state


def visits():
    """Counts its own calls within one session (session persistence)."""
    state = session_state()
    state["n"] = state.get("n", 0) + 1
    return state["n"]
'''

MONEY = '''
class Money:
    def __init__(self, currency="USD", cents=0):
        self.currency = currency
        self.cents = int(cents)

    def compare_to(self, other):
        if self.currency != other.currency:
            return -1 if self.currency < other.currency else 1
        return (self.cents > other.cents) - (self.cents < other.cents)
'''


def main():
    database = Database(name="followons")
    session = database.create_session(autocommit=True)

    with tempfile.TemporaryDirectory() as workdir:
        par = build_par(
            os.path.join(workdir, "fo.par"),
            {"fomod": ROUTINES, "moneymod": MONEY},
        )
        session.execute(f"call sqlj.install_par('{par}', 'fo_par')")

    # -- session persistence for routines ------------------------------
    session.execute(
        "create function visits() returns integer no sql "
        "external name 'fo_par:fomod.visits' "
        "language python parameter style python"
    )
    print("session state across calls:")
    for _ in range(3):
        print("  visits() ->", session.execute(
            "select visits()").rows[0][0])

    # -- Part 2 ordering spec ------------------------------------------
    session.execute("""
        create type money external name 'fo_par:moneymod.Money'
        language python (
          cents_attr integer external name cents,
          method money (c varchar(3), cents integer) returns money
            external name Money,
          method compare_to (other money) returns integer
            external name compare_to,
          ordering full by method compare_to
        )
    """)
    session.execute("create table prices (item varchar(10), p money)")
    for item, cents in [("tea", 250), ("espresso", 180),
                        ("flat-white", 320)]:
        session.execute(
            f"insert into prices values ('{item}', "
            f"new money('USD', {cents}))"
        )
    print("\nordering spec: items costing more than USD 2.00:")
    for (item,) in session.execute(
        "select item from prices where p > new money('USD', 200) "
        "order by p desc"
    ).rows:
        print(f"  {item}")

    # -- batch updates ---------------------------------------------------
    conn = DriverManager.get_connection(
        "pydbc:standard:x", database=database
    )
    stmt = conn.prepare_statement(
        "insert into prices values (?, new money('USD', ?))"
    )
    for item, cents in [("mocha", 400), ("drip", 150)]:
        stmt.set_string(1, item)
        stmt.set_int(2, cents)
        stmt.add_batch()
    counts = stmt.execute_batch()
    print(f"\nbatched {len(counts)} inserts: update counts {counts}")

    # -- EXPLAIN -----------------------------------------------------------
    print("\nexplain output:")
    for (line,) in session.execute(
        "explain select item from prices "
        "where p > new money('USD', 200) order by p desc limit 2"
    ).rows:
        print(f"  {line}")

    # -- database persistence (scalar-only table round trip) -------------
    session.execute(
        "create table ledger (day integer, total decimal(8,2))"
    )
    session.execute("insert into ledger values (1, 10.50), (2, 12.00)")
    # Tables holding archive-defined objects cannot be pickled; persist a
    # copy without them (document the boundary honestly).
    session.execute("drop table prices")
    session.execute("drop type money")
    with tempfile.TemporaryDirectory() as workdir:
        path = save_database(
            database, os.path.join(workdir, "followons.pysqlj")
        )
        print(f"\nsaved database image ({os.path.getsize(path)} bytes)")
        restored = load_database(path)
        reopened = restored.create_session(autocommit=True)
        print("restored ledger:", reopened.execute(
            "select * from ledger order by day"
        ).rows)
        print("restored routine:", reopened.execute(
            "select visits()"
        ).rows[0][0], "(fresh session state)")


if __name__ == "__main__":
    main()
