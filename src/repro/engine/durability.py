"""Durability manager: WAL + checkpoint + crash recovery.

This module ties the :mod:`repro.engine.wal` log to the engine:

* :func:`open_database` opens (or creates) a durable database in a
  directory, running crash recovery first — load the last checkpoint
  snapshot, truncate the WAL's torn tail, replay every *committed*
  transaction the snapshot does not already contain, and discard
  uncommitted ones.
* :class:`DurabilityManager` is attached to the database as
  ``database.durability`` and receives redo records from the session
  layer (see ``Session._log_durable`` in
  :mod:`repro.engine.database`): one ``stmt`` record per mutating
  statement, a ``commit``/``abort`` marker per transaction, and an
  fsync barrier (:meth:`DurabilityManager.wait_durable`) that the
  session calls *after* releasing the engine lock so concurrent
  committers group-commit.
* :meth:`DurabilityManager.checkpoint` folds the log into the snapshot
  persistence format of :mod:`repro.engine.persistence` (same
  ``DatabaseImage``, wrapped with the last folded WAL sequence number)
  and truncates the log.

Redo is *logical*, at statement granularity: a record stores the
statement's SQL text, its parameters and the executing user, and
recovery re-executes it through the normal session path.  That makes
index maintenance, constraint checks, triggers-of-the-future and UDT
columns redo-covered by construction — replay runs the same code the
original execution ran.  The documented limit (docs/DURABILITY.md) is
determinism: a statement whose effect depends on the outside world
(an external routine reading the clock, say) may replay differently.

Crash safety of the checkpoint itself: the snapshot is written to a
temp file, fsynced, and atomically ``os.replace``d over the previous
one *before* the log is truncated.  A crash between those two steps
leaves a snapshot that already contains every WAL record — recovery
skips records with ``seq <= snapshot.last_seq``, so nothing is applied
twice.

Fault-injection sites: ``wal.checkpoint`` fires before the snapshot is
written, ``wal.checkpoint.install`` fires after the snapshot is
installed but before the log is truncated (the classic torn-checkpoint
window).

Storage engines: the above describes the default ``snapshot`` engine.
``open_database(directory, storage="lsm")`` swaps the checkpoint for
an LSM flush — the WAL, the logical replay, and every contract the
session layer sees are identical, but folding the log writes only the
delta since the last flush as immutable SSTable runs instead of
rewriting the whole database (see :mod:`repro.engine.lsm` and
docs/STORAGE.md).  The LSM analogues of the checkpoint faultpoints are
``lsm.flush``, ``lsm.manifest`` and ``lsm.flush.install``.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from typing import Any, Dict, Union

from repro import errors, faultpoints
from repro.observability import metrics as _metrics
from repro.observability import stats as _stats
from repro.engine.database import Database, Session
from repro.engine.dialects import STANDARD, Dialect
from repro.engine.persistence import (
    DatabaseImage,
    image_of,
    restore_database,
)
from repro.engine.wal import (
    KIND_ABORT,
    KIND_BATCH,
    KIND_COMMIT,
    KIND_STATEMENT,
    WalRecord,
    WriteAheadLog,
    scan_records,
)

__all__ = [
    "DurabilityManager",
    "open_database",
    "SNAPSHOT_FILENAME",
    "WAL_FILENAME",
]

SNAPSHOT_FILENAME = "snapshot.db"
WAL_FILENAME = "wal.log"

#: Version of the ``{image, last_seq, commit_seq}`` checkpoint wrapper
#: (the inner ``DatabaseImage`` carries its own FORMAT_VERSION).
#: Version 2 added ``commit_seq`` — the MVCC commit counter at
#: checkpoint time, restored so post-recovery stamps continue above
#: everything durable.  Version-1 snapshots are still readable (their
#: counter restarts at 0, which is safe: a checkpoint is quiesced, so
#: every surviving version is a bootstrap version with stamp 0).
CHECKPOINT_VERSION = 2

_CHECKPOINTS = _metrics.registry.counter("wal.checkpoints")
_CHECKPOINT_SECONDS = _metrics.registry.histogram("wal.checkpoint.seconds")
_RECOVERIES = _metrics.registry.counter("wal.recoveries")
_RECOVERY_SECONDS = _metrics.registry.histogram("wal.recovery.seconds")
_RECOVERED_TXNS = _metrics.registry.counter("wal.recovered_txns")
_DISCARDED_TXNS = _metrics.registry.counter("wal.discarded_txns")


class DurabilityManager:
    """Owns a database's WAL, transaction ids, and checkpoint policy.

    Attached to the database as ``database.durability`` by
    :func:`open_database`; ``None`` on a purely in-memory database.
    All methods that append are called with the engine write lock held
    (the session layer guarantees ordering); :meth:`wait_durable` and
    :meth:`maybe_checkpoint` are called *after* the lock is released.
    """

    def __init__(
        self,
        database: Database,
        wal: WriteAheadLog,
        directory: str,
        *,
        last_seq: int = 0,
        checkpoint_interval: int = 256,
        lsm: Any = None,
    ) -> None:
        self.database = database
        self.wal = wal
        self.directory = directory
        self.checkpoint_interval = checkpoint_interval
        #: LSM store when the directory uses the LSM engine; None for
        #: the snapshot engine.  Decides what "checkpoint" means.
        self.lsm = lsm
        self.storage = "lsm" if lsm is not None else "snapshot"
        self._state_lock = threading.Lock()
        self._next_seq = last_seq + 1
        self._next_txn = 1
        self._snapshot_seq = last_seq  # highest seq folded into snapshot
        self._commits_since_checkpoint = 0
        self.active_txns: set = set()
        self.closed = False

    # ------------------------------------------------------------------
    # logging (called under the engine write lock)
    # ------------------------------------------------------------------
    def begin(self) -> int:
        """Allocate a transaction id and mark it active."""
        with self._state_lock:
            txn = self._next_txn
            self._next_txn += 1
            self.active_txns.add(txn)
        return txn

    def _alloc_seq(self) -> int:
        with self._state_lock:
            seq = self._next_seq
            self._next_seq += 1
        return seq

    def log_statement(
        self,
        txn: int,
        user: str,
        sql: str,
        params: Any,
        snapshot_seq: int = 0,
    ) -> None:
        """Append one redo record for a successfully executed statement.

        ``snapshot_seq`` is the MVCC snapshot the statement executed
        under; replay pins the recovered transaction to the same
        snapshot so a predicate evaluated during recovery sees exactly
        the rows the original execution saw, however the original
        history interleaved.
        """
        record = WalRecord(
            self._alloc_seq(), KIND_STATEMENT, txn,
            (user, sql, tuple(params or ()), snapshot_seq),
        )
        self.wal.append(record)

    def log_batch(
        self,
        txn: int,
        user: str,
        sql: str,
        param_rows: Any,
        snapshot_seq: int = 0,
    ) -> None:
        """Append ONE redo record for a whole executed batch.

        ``param_rows`` is the full sequence of parameter rows bound
        against ``sql`` by :meth:`Session.execute_batch`.  A batch of N
        rows therefore costs one WAL append (plus the transaction's
        commit marker) instead of N statement records, and recovery
        replays it through the same batch path — atomically, so a
        crash can never surface a partial batch.
        """
        record = WalRecord(
            self._alloc_seq(), KIND_BATCH, txn,
            (
                user,
                sql,
                tuple(tuple(row) for row in param_rows),
                snapshot_seq,
            ),
        )
        self.wal.append(record)

    def log_commit(self, txn: int, stamp: Any = None) -> int:
        """Append the commit marker; returns the WAL position to pass to
        :meth:`wait_durable` once the engine lock is released.

        ``stamp`` is the transaction's MVCC commit stamp (None for a
        transaction whose surviving write set is empty); replay forces
        the same stamp, reproducing the original commit order and
        visibility.  The session layer appends markers under the
        database's commit mutex, so marker order always equals stamp
        order.
        """
        record = WalRecord(self._alloc_seq(), KIND_COMMIT, txn, stamp)
        position = self.wal.append(record)
        with self._state_lock:
            self.active_txns.discard(txn)
            self._commits_since_checkpoint += 1
        return position

    def log_abort(self, txn: int) -> None:
        """Append the abort marker.  Aborts are never fsynced — losing
        one is harmless, recovery discards uncommitted transactions
        anyway."""
        record = WalRecord(self._alloc_seq(), KIND_ABORT, txn, None)
        self.wal.append(record)
        with self._state_lock:
            self.active_txns.discard(txn)

    # ------------------------------------------------------------------
    # durability barrier (called with no engine lock held)
    # ------------------------------------------------------------------
    def wait_durable(self, position: int) -> None:
        """Block until the log is fsynced through ``position`` (group
        commit: one fsync may cover many callers).  The time spent in
        the barrier is reported as the ``waits.wal.sync`` wait event
        and attributed to the committing statement."""
        start = time.perf_counter()
        self.wal.sync_to(position)
        _stats.note_wal_wait(time.perf_counter() - start)

    def maybe_checkpoint(self) -> bool:
        """Checkpoint if enough commits have accumulated."""
        with self._state_lock:
            due = (
                self.checkpoint_interval > 0
                and self._commits_since_checkpoint
                >= self.checkpoint_interval
            )
        if not due:
            return False
        return self.checkpoint()

    # ------------------------------------------------------------------
    # checkpoint
    # ------------------------------------------------------------------
    def checkpoint(self) -> bool:
        """Fold the WAL into the snapshot and truncate it.

        Runs under the exclusive engine lock and only when no durable
        transaction is in flight (an open transaction's uncommitted
        heap changes must not leak into the snapshot); returns False
        when skipped for that reason.  Safe against a crash at any
        point: the snapshot is installed atomically *before* the log
        is truncated, and recovery skips already-folded records.

        Under the LSM engine the same call flushes the memtable delta
        to SSTable runs instead — same quiescence rule, same atomic
        install-then-truncate discipline, O(delta) instead of
        O(database).
        """
        if self.lsm is not None:
            return self._checkpoint_lsm()
        start = time.perf_counter()
        with self.database.lock.write():
            with self._state_lock:
                if self.closed:
                    return False
                if self.active_txns:
                    return False
                last_seq = self._next_seq - 1
            image = image_of(self.database)
            payload = {
                "version": CHECKPOINT_VERSION,
                "image": image,
                "last_seq": last_seq,
                "commit_seq": self.database.transactions.commit_seq,
            }
            faultpoints.trigger("wal.checkpoint")
            path = os.path.join(self.directory, SNAPSHOT_FILENAME)
            tmp_path = path + ".tmp"
            try:
                data = pickle.dumps(
                    payload, protocol=pickle.HIGHEST_PROTOCOL
                )
            except Exception as exc:
                raise errors.DataError(
                    "database is not checkpointable — object columns "
                    "may only hold instances of importable classes: "
                    f"{exc}"
                ) from exc
            with open(tmp_path, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
            self._fsync_directory()
            faultpoints.trigger("wal.checkpoint.install")
            self.wal.reset()
            with self._state_lock:
                self._snapshot_seq = last_seq
                self._commits_since_checkpoint = 0
        _CHECKPOINTS.increment()
        _CHECKPOINT_SECONDS.observe(time.perf_counter() - start)
        return True

    def _checkpoint_lsm(self) -> bool:
        """LSM flush: fold the WAL into immutable runs and truncate it.

        The write pause (``lsm.stall_ms``) covers only the delta since
        the last flush; compare ``wal.checkpoint.seconds``, which
        rewrites the whole database.  Compaction is kicked *after* the
        engine lock is released — it never contributes to the stall.
        """
        start = time.perf_counter()
        with self.database.lock.write():
            with self._state_lock:
                if self.closed:
                    return False
                if self.active_txns:
                    return False
                last_seq = self._next_seq - 1
            faultpoints.trigger("lsm.flush")
            self.lsm.flush(self.database, last_seq=last_seq)
            faultpoints.trigger("lsm.flush.install")
            self.wal.reset()
            with self._state_lock:
                self._snapshot_seq = last_seq
                self._commits_since_checkpoint = 0
        _CHECKPOINTS.increment()
        self.lsm.note_stall(time.perf_counter() - start)
        self.lsm.maybe_compact(self.database)
        return True

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, *, checkpoint: bool = True) -> None:
        """Flush and close the WAL, checkpointing first on a clean
        close (skipped when a transaction is still open)."""
        if self.closed:
            return
        if checkpoint:
            try:
                self.checkpoint()
            except errors.ReproError:
                pass  # an unpicklable row must not block close
        with self._state_lock:
            self.closed = True
        self.wal.close()
        if self.lsm is not None:
            self.lsm.close()


# ---------------------------------------------------------------------------
# recovery / open
# ---------------------------------------------------------------------------


def _load_snapshot(path: str):
    """Read a checkpoint snapshot; returns ``(image, last_seq,
    commit_seq)`` or ``(None, 0, 0)`` when no snapshot exists.
    Version-1 snapshots (pre-MVCC) load with ``commit_seq`` 0."""
    if not os.path.exists(path):
        return None, 0, 0
    with open(path, "rb") as handle:
        try:
            payload = pickle.load(handle)
        except Exception as exc:
            raise errors.DataError(
                f"cannot load checkpoint snapshot {path!r}: {exc}"
            ) from exc
    if (
        not isinstance(payload, dict)
        or not isinstance(payload.get("image"), DatabaseImage)
        or payload.get("version") not in (1, CHECKPOINT_VERSION)
    ):
        raise errors.DataError(
            f"{path!r} does not contain a supported checkpoint snapshot"
        )
    return (
        payload["image"],
        int(payload["last_seq"]),
        int(payload.get("commit_seq", 0)),
    )


def _read_wal(path: str):
    """Scan the WAL, truncating any torn tail left by a crash.

    Returns ``(records, max_seq)``.
    """
    if not os.path.exists(path):
        return [], 0
    with open(path, "rb") as handle:
        data = handle.read()
    records, valid = scan_records(data)
    if valid < len(data):
        # Torn tail: a crash mid-write left a partial or corrupt frame.
        # Physically discard it so the append handle starts at a clean
        # record boundary.
        with open(path, "r+b") as handle:
            handle.truncate(valid)
            handle.flush()
            os.fsync(handle.fileno())
    max_seq = records[-1].seq if records else 0
    return records, max_seq


def _replay(database: Database, records, last_seq: int) -> int:
    """Re-execute committed transactions with ``seq > last_seq``.

    Uncommitted transactions (no commit marker survived) and aborted
    ones are discarded — exactly the semantics of "the committed
    prefix".  Returns the number of transactions replayed.
    """
    committed = {r.txn for r in records if r.kind == KIND_COMMIT}
    aborted = {r.txn for r in records if r.kind == KIND_ABORT}
    sessions: Dict[int, Session] = {}
    lost: set = set()
    replayed = 0
    try:
        for record in records:
            if record.seq <= last_seq:
                continue  # already folded into the snapshot
            if record.txn not in committed:
                # In-flight at the crash (no marker survived) or
                # explicitly aborted: either way, not replayed.
                if record.txn not in aborted:
                    lost.add(record.txn)
                continue
            if record.kind in (KIND_STATEMENT, KIND_BATCH):
                # v2 records carry the original snapshot as a fourth
                # element; legacy 3-tuples replay on the current
                # counter, which is equivalent for serial pre-MVCC logs.
                user, sql, params = record.data[:3]
                snapshot = (
                    record.data[3] if len(record.data) > 3 else None
                )
                session = sessions.get(record.txn)
                if session is None:
                    session = database.create_session(
                        user, autocommit=False
                    )
                    sessions[record.txn] = session
                if session._mvcc_txn is None:
                    session._forced_snapshot = snapshot
                with session.impersonate(user):
                    if record.kind == KIND_BATCH:
                        # One logical record for a whole batch: replay
                        # it through the batch path so the restored
                        # heap gets the same all-or-nothing semantics
                        # the original execution had.
                        session.execute_batch(
                            sql, [list(row) for row in params]
                        )
                    else:
                        session.execute(sql, list(params))
            elif record.kind == KIND_COMMIT:
                session = sessions.pop(record.txn, None)
                if session is not None:
                    if isinstance(record.data, int):
                        session._forced_commit_stamp = record.data
                    session.commit()
                    session.close()
                replayed += 1
    finally:
        for session in sessions.values():
            session.close()  # rolls back anything uncommitted
    if lost:
        _DISCARDED_TXNS.increment(len(lost))
    return replayed


def _verify_indexes(database: Database) -> None:
    """Cross-check every secondary index against its heap after replay."""
    for table in database.catalog.tables.values():
        for index in table.indexes:
            index.verify_against_heap()


def open_database(
    directory: str,
    *,
    name: str = "db",
    dialect: Union[str, Dialect] = STANDARD,
    admin_user: str = "dba",
    plan_cache_size: int = 128,
    sync: bool = True,
    group_window: float = 0.0,
    group_size: int = 16,
    checkpoint_interval: int = 256,
    storage: str = "snapshot",
) -> Database:
    """Open (or create) a durable database rooted at ``directory``.

    Recovery runs first: the last checkpoint snapshot (or, under the
    LSM engine, the manifest and its SSTable runs) is restored, the
    WAL's torn tail is truncated, and committed-but-uncheckpointed
    transactions are replayed in log order.  The returned database has
    a :class:`DurabilityManager` attached as ``database.durability``;
    ``name``/``dialect``/``admin_user`` only apply when the directory
    is empty (an existing snapshot's identity wins).

    ``storage`` selects the checkpoint engine for a *new* directory:
    ``"snapshot"`` (default) rewrites one atomic database image,
    ``"lsm"`` flushes deltas to immutable sorted runs with background
    compaction (see docs/STORAGE.md).  An existing directory's on-disk
    format always wins — the flag is a creation-time choice, not a
    migration.

    ``sync=False`` turns off fsync (for tests and bulk loads);
    ``group_window``/``group_size`` tune group commit (see
    :class:`repro.engine.wal.WriteAheadLog`); a checkpoint is taken
    every ``checkpoint_interval`` commits (0 disables automatic
    checkpoints — call :meth:`Database.checkpoint` yourself).
    """
    from repro.engine.lsm import LsmStore, MANIFEST_FILENAME

    if storage not in ("snapshot", "lsm"):
        raise errors.ConnectionError_(
            f"unknown storage engine {storage!r} — "
            "expected 'snapshot' or 'lsm'"
        )
    started = time.perf_counter()
    os.makedirs(directory, exist_ok=True)
    snapshot_path = os.path.join(directory, SNAPSHOT_FILENAME)
    wal_path = os.path.join(directory, WAL_FILENAME)

    # An initialised directory dictates its own engine.
    if os.path.exists(os.path.join(directory, MANIFEST_FILENAME)):
        storage = "lsm"
    elif os.path.exists(snapshot_path):
        storage = "snapshot"

    store = None
    if storage == "lsm":
        store = LsmStore.open(directory)
        fresh = store._image is None
        database = store.build_database(
            name=name,
            dialect=dialect,
            admin_user=admin_user,
            plan_cache_size=plan_cache_size,
        )
        if fresh:
            # The manifest is what marks the directory as LSM-format,
            # so the creation-time choice must be durable before any
            # commit is: a crash ahead of the first flush would
            # otherwise reopen this directory under the snapshot
            # engine.
            store.initialise(database)
        last_seq = store.last_seq
        commit_seq = store.flushed_stamp
        database.lsm_store = store
    else:
        image, last_seq, commit_seq = _load_snapshot(snapshot_path)
        if image is not None:
            database = restore_database(
                image, plan_cache_size=plan_cache_size
            )
        else:
            database = Database(
                name=name,
                dialect=dialect,
                admin_user=admin_user,
                plan_cache_size=plan_cache_size,
            )
    # Resume the MVCC commit counter above everything in the snapshot
    # so replayed (and future) stamps stay monotonic.
    database.transactions.restore(commit_seq)

    records, max_seq = _read_wal(wal_path)
    replayed = _replay(database, records, last_seq)
    if replayed:
        _verify_indexes(database)
        _RECOVERED_TXNS.increment(replayed)

    wal = WriteAheadLog(
        wal_path,
        sync=sync,
        group_window=group_window,
        group_size=group_size,
    )
    manager = DurabilityManager(
        database,
        wal,
        directory,
        last_seq=max(last_seq, max_seq),
        checkpoint_interval=checkpoint_interval,
        lsm=store,
    )
    database.durability = manager
    if records:
        # Fold the surviving log into a fresh snapshot so the WAL
        # restarts empty; skipping already-folded records made the
        # replay idempotent, this makes the on-disk state canonical.
        manager.checkpoint()
    _RECOVERIES.increment()
    _RECOVERY_SECONDS.observe(time.perf_counter() - started)
    return database
