"""PyDBC: the JDBC-shaped connectivity layer.

SQLJ is specified *against* the JDBC interface ("Leverages JDBC
technology"); this package is that interface over :mod:`repro.engine`.
It mirrors the JDBC classes the paper uses — ``DriverManager``,
``Connection``, ``Statement`` / ``PreparedStatement`` /
``CallableStatement``, ``ResultSet``, ``DatabaseMetaData`` — including
the JDBC 2.0 features the paper highlights: objects-by-value through
``get_object``/``set_object``, UDT metadata via ``get_udts``, and the
``PY_OBJECT`` (the paper's ``JAVA_OBJECT``) type code.

URLs take the form ``pydbc:<dialect>:<database-name>`` (mirroring
``jdbc:odbc:acme.cs``); ``DBAPI:DEFAULT:CONNECTION`` (also spelled
``JDBC:DEFAULT:CONNECTION``) works inside external routine bodies as the
paper prescribes.
"""

from repro.dbapi.connection import Connection
from repro.dbapi.driver import DriverManager, registry
from repro.dbapi.metadata import DatabaseMetaData
from repro.dbapi.pool import ConnectionPool, PooledConnection
from repro.dbapi.resultset import ResultSet
from repro.dbapi.statement import (
    BatchUpdateError,
    CallableStatement,
    PreparedStatement,
    Statement,
)

__all__ = [
    "DriverManager",
    "registry",
    "Connection",
    "ConnectionPool",
    "PooledConnection",
    "Statement",
    "PreparedStatement",
    "CallableStatement",
    "BatchUpdateError",
    "ResultSet",
    "DatabaseMetaData",
]
