"""Systematic SQL expression semantics: three-valued logic, NULL
propagation, CASE, LIKE, CAST and built-in functions."""

import decimal

import pytest

D = decimal.Decimal


def value(session, expression, params=()):
    """Evaluate a scalar expression through the engine."""
    rows = session.execute(f"select {expression}", params).rows
    assert len(rows) == 1
    return rows[0][0]


@pytest.fixture
def s(db):
    session = db.create_session(autocommit=True)
    # A one-row table carrying a NULL and a non-NULL value for 3VL tests.
    session.execute(
        "create table v (t boolean, f boolean, u boolean, "
        "n integer, x integer)"
    )
    session.execute(
        "insert into v values (true, false, null, null, 7)"
    )
    return session


def predicate_rows(session, condition):
    """Rows surviving WHERE <condition>: 1 if true, 0 if false/unknown."""
    return len(
        session.execute(f"select 1 from v where {condition}").rows
    )


class TestThreeValuedLogic:
    # Kleene AND truth table
    @pytest.mark.parametrize(
        "condition, expected",
        [
            ("t and t", 1),
            ("t and f", 0),
            ("t and u", 0),  # unknown: filtered
            ("f and u", 0),
            ("u and u", 0),
            ("f and f", 0),
        ],
    )
    def test_and(self, s, condition, expected):
        assert predicate_rows(s, condition) == expected

    @pytest.mark.parametrize(
        "condition, expected",
        [
            ("t or f", 1),
            ("t or u", 1),  # true dominates unknown
            ("f or u", 0),
            ("u or u", 0),
            ("f or f", 0),
        ],
    )
    def test_or(self, s, condition, expected):
        assert predicate_rows(s, condition) == expected

    @pytest.mark.parametrize(
        "condition, expected",
        [
            ("not f", 1),
            ("not t", 0),
            ("not u", 0),  # NOT unknown = unknown
        ],
    )
    def test_not(self, s, condition, expected):
        assert predicate_rows(s, condition) == expected

    def test_null_comparisons_are_unknown(self, s):
        assert predicate_rows(s, "n = n") == 0
        assert predicate_rows(s, "n <> n") == 0
        assert predicate_rows(s, "n < 5") == 0
        assert predicate_rows(s, "x = 7 and n = 1") == 0
        assert predicate_rows(s, "x = 7 or n = 1") == 1

    def test_is_null_is_never_unknown(self, s):
        assert predicate_rows(s, "n is null") == 1
        assert predicate_rows(s, "n is not null") == 0
        assert predicate_rows(s, "x is not null") == 1

    def test_between_with_null_bound(self, s):
        assert predicate_rows(s, "x between n and 10") == 0
        assert predicate_rows(s, "x between 1 and 10") == 1
        # FALSE via one bound is decisive even if the other is NULL.
        assert predicate_rows(s, "x between 100 and n") == 0

    def test_in_list_with_null(self, s):
        assert predicate_rows(s, "x in (7, n)") == 1  # found: true
        assert predicate_rows(s, "x in (1, n)") == 0  # unknown
        assert predicate_rows(s, "x not in (1, n)") == 0  # unknown
        assert predicate_rows(s, "x not in (1, 2)") == 1


class TestNullPropagation:
    @pytest.mark.parametrize(
        "expression",
        [
            "1 + null", "null - 1", "2 * null", "null / 2",
            "null || 'x'", "'x' || null", "-(null)",
            "upper(null)", "length(null)", "abs(null)",
            "cast(null as integer)",
        ],
    )
    def test_null_in_gives_null_out(self, s, expression):
        assert value(s, expression) is None

    def test_coalesce_is_null_tolerant(self, s):
        assert value(s, "coalesce(null, null, 3)") == 3
        assert value(s, "coalesce(null, null)") is None

    def test_nullif(self, s):
        assert value(s, "nullif(1, 1)") is None
        assert value(s, "nullif(1, 2)") == 1


class TestCase:
    def test_searched_case_first_match_wins(self, s):
        assert value(
            s,
            "case when 1 = 2 then 'a' when 1 = 1 then 'b' "
            "when 2 = 2 then 'c' end",
        ) == "b"

    def test_searched_case_no_match_no_else(self, s):
        assert value(s, "case when 1 = 2 then 'a' end") is None

    def test_simple_case(self, s):
        assert value(
            s, "case 2 when 1 then 'one' when 2 then 'two' else 'many' "
            "end"
        ) == "two"

    def test_simple_case_null_operand_never_matches(self, s):
        assert value(
            s,
            "case cast(null as integer) when 1 then 'one' "
            "else 'other' end",
        ) == "other"

    def test_unknown_condition_skipped(self, s):
        assert value(
            s,
            "case when cast(null as integer) = 1 then 'bad' "
            "else 'good' end",
        ) == "good"


class TestLike:
    @pytest.mark.parametrize(
        "text, pattern, matches",
        [
            ("hello", "h%", True),
            ("hello", "%o", True),
            ("hello", "h_llo", True),
            ("hello", "h__o", False),
            ("hello", "hello", True),
            ("hello", "HELLO", False),  # LIKE is case sensitive
            ("50%", "50!%", True),
            ("505", "50!%", False),
            ("a_b", "a!_b", True),
            ("axb", "a!_b", False),
            ("", "%", True),
            ("", "_", False),
        ],
    )
    def test_patterns(self, s, text, pattern, matches):
        escape = " escape '!'" if "!" in pattern else ""
        expression = f"'{text}' like '{pattern}'{escape}"
        assert predicate_rows(s, expression) == (1 if matches else 0)

    def test_null_operand(self, s):
        assert predicate_rows(s, "cast(null as varchar) like '%'") == 0

    def test_not_like(self, s):
        assert predicate_rows(s, "'abc' not like 'a%'") == 0
        assert predicate_rows(s, "'xyz' not like 'a%'") == 1


class TestCast:
    @pytest.mark.parametrize(
        "expression, expected",
        [
            ("cast('42' as integer)", 42),
            ("cast(42 as varchar(10))", "42"),
            ("cast(1.50 as varchar(10))", "1.50"),
            ("cast(true as varchar(10))", "true"),
            ("cast(1.5 as double precision)", 1.5),
            ("cast('1.50' as decimal(6,2))", D("1.50")),
            ("cast(7 as decimal(6,2))", D("7.00")),
            ("cast('true' as boolean)", True),
        ],
    )
    def test_casts(self, s, expression, expected):
        result = value(s, expression)
        if expected is not None:
            assert result == expected

    def test_cast_failure(self, s):
        from repro import errors

        with pytest.raises(errors.InvalidCastError):
            value(s, "cast('pears' as integer)")

    def test_cast_overflow(self, s):
        from repro import errors

        with pytest.raises(errors.NumericOverflowError):
            value(s, "cast(99999 as smallint)")


class TestBuiltins:
    @pytest.mark.parametrize(
        "expression, expected",
        [
            ("upper('abc')", "ABC"),
            ("lower('ABC')", "abc"),
            ("length('hello')", 5),
            ("substring('hello', 2, 3)", "ell"),
            ("substring('hello', 2)", "ello"),
            ("trim('  x  ')", "x"),
            ("ltrim('  x')", "x"),
            ("rtrim('x  ')", "x"),
            ("replace('banana', 'na', 'NA')", "baNANA"),
            ("position('ll', 'hello')", 3),
            ("position('zz', 'hello')", 0),
            ("abs(-5)", 5),
            ("mod(7, 3)", 1),
            ("round(2.567, 2)", D("2.57")),
            ("floor(2.9)", 2),
            ("ceiling(2.1)", 3),
            ("power(2, 10)", 1024.0),
            ("sqrt(16)", 4.0),
            ("sign(-3)", -1),
            ("concat('a', 1, 'b')", "a1b"),
        ],
    )
    def test_functions(self, s, expression, expected):
        assert value(s, expression) == expected

    def test_mod_by_zero(self, s):
        from repro import errors

        with pytest.raises(errors.DivisionByZeroError):
            value(s, "mod(1, 0)")

    def test_sqrt_negative(self, s):
        from repro import errors

        with pytest.raises(errors.DataError):
            value(s, "sqrt(-1)")

    def test_current_user(self, s):
        assert value(s, "current_user") == "dba"

    def test_current_date_is_a_date(self, s):
        import datetime

        assert isinstance(value(s, "current_date"), datetime.date)
