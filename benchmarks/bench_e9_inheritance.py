"""E9 — Part 2 inheritance and substitutability (paper slides 33-36).

A supertype column (``addr``) holds a mix of Address and Address2Line
instances ("normal Java substitutability").  Workloads:

* method dispatch through ``>>to_string()`` over the mixed column —
  verifying each row dispatches to its *runtime* class's override,
* the paper's substitution UPDATE
  (``set home_addr = mailing_addr where home_addr is null``),
* dispatch overhead: ``>>`` method invocation in SQL vs calling the same
  method on fetched objects host-side.

Expected shape: dynamic dispatch picks the subtype override on every
subtype row; SQL-side invocation costs more per call than a host-side
call (it round-trips the binding lookup and value copy) but stays within
a small constant factor.
"""

import pytest

from benchmarks.common import (
    fresh_name,
    install_address_types,
    report,
)
from repro import Database

N_ROWS = 400


def build_engine():
    database = Database(name=fresh_name("e9"))
    session = database.create_session(autocommit=True)
    install_address_types(database, session)
    session.execute(
        "create table mixed (name varchar(30), home addr, "
        "mailing addr_2_line)"
    )
    # Even rows: plain Address in ``home``; odd rows: leave home NULL so
    # the paper's substitution UPDATE has work to do.
    for i in range(N_ROWS):
        if i % 2 == 0:
            session.execute(
                "insert into mixed values (?, "
                "new addr(?, ?), new addr_2_line(?, ?, ?))",
                [
                    f"P{i:04d}", f"{i} Oak St", f"{i % 100:05d}",
                    f"{i} Box Rd", f"attn {i}", f"{i % 100:05d}",
                ],
            )
        else:
            session.execute(
                "insert into mixed values (?, null, "
                "new addr_2_line(?, ?, ?))",
                [
                    f"P{i:04d}", f"{i} Box Rd", f"attn {i}",
                    f"{i % 100:05d}",
                ],
            )
    return database, session


@pytest.fixture(scope="module")
def engine():
    return build_engine()


class TestInheritanceShape:
    def test_substitution_update_fills_nulls_with_subtype(self, engine):
        database, _session = engine
        session = database.create_session(autocommit=True)
        nulls_before = session.execute(
            "select count(*) from mixed where home is null"
        ).rows[0][0]
        assert nulls_before == N_ROWS // 2
        session.execute(
            "update mixed set home = mailing where home is null"
        )
        assert session.execute(
            "select count(*) from mixed where home is null"
        ).rows[0][0] == 0

    def test_dynamic_dispatch_over_mixed_column(self, engine):
        database, _session = engine
        session = database.create_session(autocommit=True)
        session.execute(
            "update mixed set home = mailing where home is null"
        )
        rows = session.execute(
            "select name, home>>to_string() from mixed order by name"
        ).rows
        two_line = sum(1 for _n, text in rows if "Line2=" in text)
        one_line = sum(1 for _n, text in rows if "Line2=" not in text)
        report(
            "E9: dispatch over mixed addr column",
            [
                ("Address rows (base to_string)", one_line),
                ("Address2Line rows (override)", two_line),
            ],
            ("runtime class", "rows"),
        )
        assert two_line == N_ROWS // 2
        assert one_line == N_ROWS // 2

    def test_inherited_attribute_through_supertype_column(self, engine):
        database, _session = engine
        session = database.create_session(autocommit=True)
        # zip_attr is declared on addr; readable on subtype values too.
        rows = session.execute(
            "select mailing>>zip_attr from mixed limit 5"
        ).rows
        assert all(r[0] is not None for r in rows)

    def test_subtype_only_attribute_requires_subtype_view(self, engine):
        from repro import errors

        database, _session = engine
        session = database.create_session(autocommit=True)
        # line2_attr is declared on addr_2_line; reading it through an
        # addr-typed column is a static type error (the compiler binds
        # against the declared column type).
        with pytest.raises(errors.SQLException):
            session.execute("select home>>line2_attr from mixed")
        # ...but through the subtype-typed column it works.
        rows = session.execute(
            "select mailing>>line2_attr from mixed limit 3"
        ).rows
        assert all("attn" in r[0] for r in rows)


def dispatch_in_sql(session):
    return session.execute(
        "select home>>to_string() from mixed where home is not null"
    ).rows


def dispatch_host_side(session):
    objects = session.execute(
        "select home from mixed where home is not null"
    ).rows
    return [[obj[0].to_string()] for obj in objects]


class TestDispatchEquivalence:
    def test_same_strings_both_ways(self, engine):
        _database, session = engine
        assert sorted(dispatch_in_sql(session)) == \
            sorted(dispatch_host_side(session))


@pytest.mark.benchmark(group="e9-dispatch")
def test_method_dispatch_in_sql(benchmark, engine):
    _database, session = engine
    rows = benchmark(dispatch_in_sql, session)
    assert rows


@pytest.mark.benchmark(group="e9-dispatch")
def test_method_dispatch_host_side(benchmark, engine):
    _database, session = engine
    rows = benchmark(dispatch_host_side, session)
    assert rows


@pytest.mark.benchmark(group="e9-substitution")
def test_substitution_update_throughput(benchmark, engine):
    database, _session = engine

    def substitute():
        session = database.create_session(autocommit=True)
        return session.execute(
            "update mixed set home = mailing where home is not null"
        ).update_count

    count = benchmark(substitute)
    assert count > 0
