"""Structured slow-query log: one JSON object per line.

Any statement whose wall time crosses a threshold is emitted as a
single JSON line carrying everything needed to find it again: the raw
statement, its normalized key (the join column against
``repro_stats.statements``), timings, the wait breakdown, the user and
database, and the active trace/span ids when tracing is on.

Thresholds, most specific wins:

* per session — ``repro.connect(slow_query_ms=...)`` sets
  ``session.slow_query_ms``;
* process-wide — :func:`configure`, the server's ``--slow-query-ms``
  CLI flag, or the ``REPRO_SLOW_QUERY_MS`` environment variable.

Unset everywhere means disabled; ``0`` logs every statement (handy in
tests and when building a workload profile).  Records go to stderr by
default; :func:`configure` accepts any text stream.  Every emission
also bumps the ``slow_query.count`` counter so the log's activity is
visible from ``repro_stats.metrics`` without tailing a file.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, Dict, Optional, TextIO

from repro.observability import metrics as _metrics
from repro.observability import stats as _stats
from repro.observability import tracing as _tracing

__all__ = [
    "ENV_VAR",
    "configure",
    "threshold_ms",
    "effective_threshold",
    "maybe_log",
    "emit",
]

ENV_VAR = "REPRO_SLOW_QUERY_MS"

_SLOW_QUERIES = _metrics.registry.counter("slow_query.count")

_lock = threading.Lock()
_threshold_ms: Optional[float] = None
_stream: Optional[TextIO] = None


def _parse_env(value: str) -> Optional[float]:
    value = value.strip()
    if not value:
        return None
    try:
        return float(value)
    except ValueError:
        sys.stderr.write(
            f"repro: ignoring non-numeric {ENV_VAR}={value!r}\n"
        )
        return None


def configure(
    threshold: Optional[float],
    stream: Optional[TextIO] = None,
) -> None:
    """Set the process-wide threshold (ms) and optionally the stream.

    ``None`` disables the process-wide log (per-session thresholds
    still apply).  The stream persists across reconfigurations until
    replaced; ``None`` leaves the current stream (default stderr).
    """
    global _threshold_ms, _stream
    with _lock:
        _threshold_ms = None if threshold is None else float(threshold)
        if stream is not None:
            _stream = stream


def threshold_ms() -> Optional[float]:
    """The process-wide threshold in milliseconds, or None."""
    return _threshold_ms


def effective_threshold(session: Any = None) -> Optional[float]:
    """Threshold for ``session``: its own override, else the global."""
    if session is not None:
        override = getattr(session, "slow_query_ms", None)
        if override is not None:
            return float(override)
    return _threshold_ms


def emit(record: Dict[str, Any]) -> None:
    """Write one record as a JSON line (and count it)."""
    _SLOW_QUERIES.increment()
    out = _stream if _stream is not None else sys.stderr
    try:
        out.write(json.dumps(record, default=str) + "\n")
    except (OSError, ValueError):
        pass  # a torn log stream must never fail the statement


def maybe_log(
    session: Any,
    *,
    sql: str,
    key: Optional[str],
    seconds: float,
    rows: int = 0,
    context: Any = None,
    error_sqlstate: Optional[str] = None,
    source: str = "engine",
    batch_rows: Optional[int] = None,
) -> bool:
    """Emit a record when ``seconds`` crosses the session's threshold.

    Returns True when a record was written.  ``context`` is the
    statement's :class:`repro.observability.stats.StatementContext`
    (wait breakdown) when the engine has one; remote/client callers
    pass None and get a record without waits.  ``batch_rows`` is the
    parameter-row count of a batch execution; the record then carries
    the batch size and the per-row mean so a slow 10k-row bulk load is
    distinguishable from a slow single statement.
    """
    threshold = effective_threshold(session)
    if threshold is None:
        return False
    duration_ms = seconds * 1000.0
    if duration_ms < threshold:
        return False
    db_name = getattr(session, "database_name", None)
    if db_name is None:
        # Engine sessions expose the Database object; remote sessions
        # raise on the ``database`` property, hence the name-first order.
        try:
            db_name = getattr(
                getattr(session, "database", None), "name", None
            )
        except Exception:
            db_name = None
    record: Dict[str, Any] = {
        "ts": time.time(),
        "source": source,
        "db": db_name,
        "user": getattr(session, "user", None),
        "statement": sql,
        "key": key,
        "duration_ms": duration_ms,
        "rows": rows,
    }
    if batch_rows is not None and batch_rows > 0:
        record["batch_rows"] = batch_rows
        record["per_row_ms"] = duration_ms / batch_rows
    if context is not None:
        breakdown = _stats.wait_breakdown(context)
        record["rows_scanned"] = breakdown.pop("rows_scanned")
        record["waits"] = breakdown
    if error_sqlstate is not None:
        record["sqlstate"] = error_sqlstate
    tracer = _tracing.current
    if tracer.enabled:
        span = tracer.current()
        if span is not None:
            record["trace_id"] = span.trace_id
            record["span_id"] = span.span_id
    emit(record)
    return True


# Environment configuration at import, mirroring tracing's REPRO_TRACE.
configure(_parse_env(os.environ.get(ENV_VAR, "")))
