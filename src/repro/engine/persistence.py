"""Database persistence (save/load to a file).

The paper's Part 1 objectives defer "database persistence" to follow-on
work; this module provides it for the engine: :func:`save_database`
serialises a database's entire catalog — tables with their rows, views,
installed archives, routines, user-defined types, and grants — and
:func:`load_database` reconstructs a fully working database from the
file.

Host-language bindings are *not* pickled: routine callables and UDT
classes are re-resolved on load from their EXTERNAL NAME strings and the
persisted archives, exactly as they were at CREATE time.  The one
genuine limit: Part 2 *values* stored in object columns must be
instances of importable classes (pickle's usual rule); rows holding
instances of archive-defined classes raise a clear error at save time.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import errors
from repro.engine.catalog import (
    AttributeBinding,
    Column,
    InstalledPar,
    MethodBinding,
    Routine,
    RoutineParam,
    Table,
    UserDefinedType,
    View,
)
from repro.engine.database import Database
from repro.engine.indexes import Index
from repro.engine.virtual import VirtualTable

__all__ = [
    "save_database",
    "load_database",
    "image_of",
    "restore_database",
    "DatabaseImage",
]

FORMAT_VERSION = 1


@dataclass
class _ColumnImage:
    name: str
    spelling: str
    not_null: bool
    default: Any
    unique: bool = False
    primary_key: bool = False


@dataclass
class _TableImage:
    name: str
    owner: str
    columns: List[_ColumnImage]
    rows: List[List[Any]]
    # (index name, column names); defaulted so pre-index images load.
    indexes: List[Tuple[str, List[str]]] = field(default_factory=list)
    # ANALYZE statistics (a TableStatistics, or None when the table was
    # never analyzed); defaulted so pre-statistics images load.
    stats: Any = None


@dataclass
class _ViewImage:
    name: str
    owner: str
    column_names: Optional[List[str]]
    query: Any


@dataclass
class _ParamImage:
    name: str
    spelling: str
    mode: str


@dataclass
class _RoutineImage:
    name: str
    kind: str
    params: List[_ParamImage]
    returns: Optional[str]
    data_access: str
    dynamic_result_sets: int
    external_name: str
    language: str
    parameter_style: str
    owner: str
    par_name: Optional[str]


@dataclass
class _MemberImage:
    sql_name: str
    python_name: str
    param_spellings: List[str]
    returns: Optional[str]
    static: bool
    is_constructor: bool


@dataclass
class _TypeImage:
    name: str
    external_name: str
    owner: str
    under: Optional[str]
    attributes: List[Tuple[str, str, str, bool]]  # sql, field, spelling, static
    methods: List[_MemberImage]
    constructors: List[_MemberImage]
    ordering_kind: Optional[str]
    ordering_method: Optional[str]


@dataclass
class DatabaseImage:
    """Everything needed to reconstruct a database."""

    version: int
    name: str
    dialect: str
    admin_user: str
    pars: Dict[str, InstalledPar]
    types: List[_TypeImage]
    tables: List[_TableImage]
    views: List[_ViewImage]
    routines: List[_RoutineImage]
    grants: Dict[Tuple[str, str], Dict[str, set]] = field(
        default_factory=dict
    )


# ---------------------------------------------------------------------------
# save
# ---------------------------------------------------------------------------


def _member_image(binding: MethodBinding) -> _MemberImage:
    return _MemberImage(
        sql_name=binding.sql_name,
        python_name=binding.python_name,
        param_spellings=[
            d.sql_spelling() for d in binding.param_descriptors
        ],
        returns=(
            binding.returns.sql_spelling()
            if binding.returns is not None else None
        ),
        static=binding.static,
        is_constructor=binding.is_constructor,
    )


def image_of(
    database: Database, *, include_rows: bool = True
) -> DatabaseImage:
    """Capture ``database`` as a picklable :class:`DatabaseImage`.

    Used by :func:`save_database` and by the durability checkpointer
    (:mod:`repro.engine.durability`), which folds the write-ahead log
    into exactly this snapshot format.  ``include_rows=False`` captures
    the catalog only (empty row lists) — the LSM manifest
    (:mod:`repro.engine.lsm`) stores schema this way because row data
    lives in the SSTable runs, not the manifest.
    """
    catalog = database.catalog

    types: List[_TypeImage] = []
    for udt in catalog.types.values():
        types.append(
            _TypeImage(
                name=udt.name,
                external_name=udt.external_name,
                owner=udt.owner,
                under=udt.supertype.name if udt.supertype else None,
                attributes=[
                    (a.sql_name, a.field_name,
                     a.descriptor.sql_spelling(), a.static)
                    for a in udt.attributes.values()
                ],
                methods=[
                    _member_image(m) for m in udt.methods.values()
                ],
                constructors=[
                    _member_image(c) for c in udt.constructors
                ],
                ordering_kind=udt.ordering_kind,
                ordering_method=udt.ordering_method,
            )
        )

    tables: List[_TableImage] = []
    for table in catalog.tables.values():
        if isinstance(table, VirtualTable):
            continue  # re-registered by Database bootstrap
        tables.append(
            _TableImage(
                name=table.name,
                owner=table.owner,
                columns=[
                    _ColumnImage(
                        c.name, c.descriptor.sql_spelling(),
                        c.not_null, c.default, c.unique, c.primary_key,
                    )
                    for c in table.columns
                ],
                rows=(
                    [list(row) for row in table.rows]
                    if include_rows else []
                ),
                indexes=[
                    (index.name, list(index.column_names))
                    for index in table.indexes
                ],
                stats=catalog.get_statistics(table.name),
            )
        )

    views = [
        _ViewImage(v.name, v.owner, v.column_names, v.query)
        for v in catalog.views.values()
    ]

    routines: List[_RoutineImage] = []
    for routine in catalog.routines.values():
        if routine.language == "SYSTEM":
            continue  # re-registered by Database bootstrap
        routines.append(
            _RoutineImage(
                name=routine.name,
                kind=routine.kind,
                params=[
                    _ParamImage(
                        p.name, p.descriptor.sql_spelling(), p.mode
                    )
                    for p in routine.params
                ],
                returns=(
                    routine.returns.sql_spelling()
                    if routine.returns is not None else None
                ),
                data_access=routine.data_access,
                dynamic_result_sets=routine.dynamic_result_sets,
                external_name=routine.external_name,
                language=routine.language,
                parameter_style=routine.parameter_style,
                owner=routine.owner,
                par_name=routine.par_name,
            )
        )

    return DatabaseImage(
        version=FORMAT_VERSION,
        name=database.name,
        dialect=database.dialect.name,
        admin_user=database.admin_user,
        pars=dict(catalog.pars),
        types=types,
        tables=tables,
        views=views,
        routines=routines,
        grants={
            key: {priv: set(holders) for priv, holders in slots.items()}
            for key, slots in database.privileges._grants.items()
        },
    )


#: Backwards-compatible private alias (pre-durability callers).
_image_of = image_of


def save_database(database: Database, path: str) -> str:
    """Serialise ``database`` to ``path``; returns the path."""
    image = image_of(database)
    try:
        payload = pickle.dumps(image, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise errors.DataError(
            "database is not serialisable — object columns may only "
            "hold instances of importable classes (archive-defined "
            f"classes cannot be pickled): {exc}"
        ) from exc
    with open(path, "wb") as handle:
        handle.write(payload)
    return path


# ---------------------------------------------------------------------------
# load
# ---------------------------------------------------------------------------


def load_database(path: str) -> Database:
    """Reconstruct a database saved by :func:`save_database`."""
    with open(path, "rb") as handle:
        try:
            image = pickle.load(handle)
        except Exception as exc:
            raise errors.DataError(
                f"cannot load database image: {exc}"
            ) from exc
    if not isinstance(image, DatabaseImage):
        raise errors.DataError(
            "file does not contain a PySQLJ database image"
        )
    return restore_database(image)


def restore_database(
    image: DatabaseImage, *, plan_cache_size: int = 128
) -> Database:
    """Reconstruct a live :class:`Database` from a
    :class:`DatabaseImage` (the inverse of :func:`image_of`)."""
    if image.version != FORMAT_VERSION:
        raise errors.DataError(
            f"database image version {image.version} is not supported"
        )

    database = Database(
        name=image.name,
        dialect=image.dialect,
        admin_user=image.admin_user,
        plan_cache_size=plan_cache_size,
    )
    catalog = database.catalog
    session = database.create_session()

    # 1. Archives (needed to re-resolve routines and type classes).
    catalog.pars.update(image.pars)

    # 2. User-defined types, supertypes first.
    from repro.datatypes.registration import resolve_type_class

    pending = list(image.types)
    while pending:
        progressed = False
        remaining = []
        for type_image in pending:
            if type_image.under is not None and \
                    type_image.under not in catalog.types:
                remaining.append(type_image)
                continue
            _restore_type(type_image, catalog, session,
                          resolve_type_class)
            progressed = True
        if not progressed:
            names = ", ".join(t.name for t in remaining)
            raise errors.DataError(
                f"cannot restore types with unresolved supertypes: "
                f"{names}"
            )
        pending = remaining

    # 3. Tables (with rows) and views.
    for table_image in image.tables:
        columns = [
            Column(
                c.name,
                catalog.resolve_type(c.spelling),
                not_null=c.not_null,
                default=c.default,
                unique=getattr(c, "unique", False),
                primary_key=getattr(c, "primary_key", False),
            )
            for c in table_image.columns
        ]
        table = Table(table_image.name, columns, table_image.owner)
        table.rows = [list(row) for row in table_image.rows]
        catalog.create_table(table)
        for index_name, column_names in getattr(
            table_image, "indexes", []
        ):
            index = Index(index_name, table, list(column_names))
            catalog.create_index(index)
        stats = getattr(table_image, "stats", None)
        if stats is not None:
            catalog.set_statistics(table.name, stats)
    for view_image in image.views:
        catalog.create_view(
            View(
                view_image.name,
                view_image.query,
                view_image.owner,
                view_image.column_names,
            )
        )

    # 4. Routines, re-resolving the callables.
    from repro.procedures.registration import resolve_external

    for routine_image in image.routines:
        routine = Routine(
            name=routine_image.name,
            kind=routine_image.kind,
            params=[
                RoutineParam(
                    p.name, catalog.resolve_type(p.spelling), p.mode
                )
                for p in routine_image.params
            ],
            returns=(
                catalog.resolve_type(routine_image.returns)
                if routine_image.returns is not None else None
            ),
            data_access=routine_image.data_access,
            dynamic_result_sets=routine_image.dynamic_result_sets,
            external_name=routine_image.external_name,
            language=routine_image.language,
            parameter_style=routine_image.parameter_style,
            owner=routine_image.owner,
            par_name=routine_image.par_name,
        )
        with session.impersonate(routine.owner):
            routine.callable = resolve_external(
                session, routine.external_name
            )
        catalog.create_routine(routine)

    # 5. Grants.
    database.privileges._grants.update(image.grants)
    return database


def _restore_type(type_image, catalog, session, resolve_type_class):
    python_class = resolve_type_class(session, type_image.external_name)
    supertype = (
        catalog.get_type(type_image.under)
        if type_image.under is not None else None
    )
    udt = UserDefinedType(
        name=type_image.name,
        external_name=type_image.external_name,
        python_class=python_class,
        owner=type_image.owner,
        supertype=supertype,
    )
    catalog.create_type(udt)
    for sql_name, field_name, spelling, static in type_image.attributes:
        udt.attributes[sql_name] = AttributeBinding(
            sql_name=sql_name,
            field_name=field_name,
            descriptor=catalog.resolve_type(spelling),
            static=static,
        )
    for member in type_image.methods:
        udt.methods[member.sql_name] = _restore_member(member, catalog)
    for member in type_image.constructors:
        udt.constructors.append(_restore_member(member, catalog))
    udt.ordering_kind = type_image.ordering_kind
    udt.ordering_method = type_image.ordering_method


def _restore_member(member, catalog) -> MethodBinding:
    return MethodBinding(
        sql_name=member.sql_name,
        python_name=member.python_name,
        param_descriptors=[
            catalog.resolve_type(s) for s in member.param_spellings
        ],
        returns=(
            catalog.resolve_type(member.returns)
            if member.returns is not None else None
        ),
        static=member.static,
        is_constructor=member.is_constructor,
    )
