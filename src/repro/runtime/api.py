"""Entry points called by translator-generated code.

A translated module starts with::

    from repro.runtime import sqlj
    __profile_0 = sqlj.load_profile(__file__, "Foo_SJProfile0")

and each ``#sql`` clause becomes a call to one of the functions below.
"""

from __future__ import annotations

import datetime
import decimal
import importlib
import os
from typing import Any, List, Optional, Sequence, Tuple, Type

from repro import errors
from repro.engine.database import StatementResult
from repro.observability import metrics as _metrics
from repro.observability import tracing as _tracing
from repro.profiles.model import Profile
from repro.profiles.serialization import SER_SUFFIX, load_profile as \
    _load_profile_file
from repro.runtime.context import ConnectionContext
from repro.runtime.iterators import (
    NamedIterator,
    PositionalIterator,
    SQLJIterator,
)

__all__ = [
    "load_profile",
    "execute",
    "execute_batch",
    "query",
    "fetch",
    "scalar",
    "select_into",
    "call_proc",
    "resolve_type_name",
    "ConnectionContext",
    "PositionalIterator",
    "NamedIterator",
]

_TYPE_NAMES = {
    "int": int,
    "str": str,
    "string": str,
    "float": float,
    "bool": bool,
    "boolean": bool,
    "bytes": bytes,
    "decimal": decimal.Decimal,
    "decimal.decimal": decimal.Decimal,
    "date": datetime.date,
    "time": datetime.time,
    "datetime": datetime.datetime,
    "timestamp": datetime.datetime,
    "object": object,
}


def resolve_type_name(name: Any) -> Optional[type]:
    """Resolve an iterator column type declaration to a Python type.

    Accepts a type object, one of the simple type names above
    (case-insensitive), or a dotted import path to a class (for Part 2
    UDT classes used as iterator column types).
    """
    if name is None or isinstance(name, type):
        return name
    text = str(name).strip()
    simple = _TYPE_NAMES.get(text.lower())
    if simple is not None:
        return simple
    if "." in text:
        module_name, _, attr = text.rpartition(".")
        try:
            module = importlib.import_module(module_name)
            resolved = getattr(module, attr)
        except (ImportError, AttributeError) as exc:
            raise errors.TranslationError(
                f"cannot resolve iterator column type {text!r}: {exc}"
            ) from exc
        if not isinstance(resolved, type):
            raise errors.TranslationError(
                f"iterator column type {text!r} is not a class"
            )
        return resolved
    raise errors.TranslationError(
        f"unknown iterator column type {text!r}"
    )


def load_profile(module_file: str, profile_name: str) -> Profile:
    """Load ``<profile_name>.ser`` from the generated module's directory."""
    directory = os.path.dirname(os.path.abspath(module_file))
    return _load_profile_file(
        os.path.join(directory, profile_name + SER_SUFFIX)
    )


def _context_for(context: Optional[ConnectionContext]) -> ConnectionContext:
    if context is None:
        return ConnectionContext.get_default_context()
    if not isinstance(context, ConnectionContext):
        raise errors.ConnectionError_(
            f"[{context!r}] is not a connection context"
        )
    return context


_ROWS_FETCHED = _metrics.registry.counter("rows.fetched")


def _run_entry(
    span_name: str,
    profile: Profile,
    index: int,
    context: Optional[ConnectionContext],
    params: Sequence[Any],
) -> StatementResult:
    """Execute a profile entry under a clause-kind span (tracing on)."""
    with _tracing.current.span(span_name, entry=index):
        return _context_for(context).execute_entry(profile, index, params)


def execute(
    profile: Profile,
    index: int,
    context: Optional[ConnectionContext],
    params: Sequence[Any] = (),
) -> StatementResult:
    """Execute a non-query ``#sql`` clause."""
    if not _tracing.current.enabled:
        return _context_for(context).execute_entry(profile, index, params)
    return _run_entry("sqlj.execute", profile, index, context, params)


def execute_batch(
    profile: Profile,
    index: int,
    context: Optional[ConnectionContext],
    param_rows: Sequence[Sequence[Any]],
) -> List[int]:
    """Execute an UPDATE-role clause once per parameter row, atomically.

    The translator emits this for ``#sql`` clauses inside loops it can
    prove are pure binds: the generated code collects each iteration's
    parameter tuple into a list and ships the whole list here after the
    loop.  The rows go through ``session.execute_batch`` — one parse,
    one transaction (all rows commit or roll back together), one logical
    WAL record and fsync barrier, and over ``repro://`` one round trip.
    Returns the per-row update counts.
    """
    resolved = _context_for(context)
    if not _tracing.current.enabled:
        return resolved.execute_batch_entry(profile, index, param_rows)
    with _tracing.current.span(
        "sqlj.execute_batch", entry=index, rows=len(param_rows)
    ):
        return resolved.execute_batch_entry(profile, index, param_rows)


def query(
    profile: Profile,
    index: int,
    context: Optional[ConnectionContext],
    params: Sequence[Any],
    iterator_class: Type[SQLJIterator],
) -> SQLJIterator:
    """Execute a query clause and bind its result to a typed iterator."""
    if not _tracing.current.enabled:
        result = _context_for(context).execute_entry(profile, index, params)
    else:
        result = _run_entry("sqlj.query", profile, index, context, params)
    if not result.is_rowset:
        raise errors.DataError(
            f"profile entry {index} did not produce a result set"
        )
    return iterator_class(result)


def scalar(
    profile: Profile,
    index: int,
    context: Optional[ConnectionContext],
    params: Sequence[Any] = (),
) -> Any:
    """Execute a ``#sql x = { VALUES(...) }`` clause.

    The entry is a one-row, one-column query (the translator rewrites
    ``VALUES(expr)`` to ``SELECT expr``); returns that single value.
    """
    if not _tracing.current.enabled:
        result = _context_for(context).execute_entry(profile, index, params)
    else:
        result = _run_entry("sqlj.scalar", profile, index, context, params)
    if not result.is_rowset:
        raise errors.DataError(
            f"profile entry {index} did not produce a value"
        )
    if len(result.rows) != 1 or result.shape is None or \
            len(result.shape) != 1:
        raise errors.CardinalityError(
            "VALUES clause must produce exactly one row and one column"
        )
    return result.rows[0][0]


def select_into(
    profile: Profile,
    index: int,
    context: Optional[ConnectionContext],
    params: Sequence[Any] = (),
) -> Tuple[Any, ...]:
    """Execute a single-row ``SELECT ... INTO`` clause.

    SQLJ semantics: no row raises SQLSTATE 02000, more than one row
    raises a cardinality violation; otherwise the row is returned for
    assignment into the INTO host variables.
    """
    if not _tracing.current.enabled:
        result = _context_for(context).execute_entry(profile, index, params)
    else:
        result = _run_entry(
            "sqlj.select_into", profile, index, context, params
        )
    if not result.is_rowset:
        raise errors.DataError(
            f"profile entry {index} is not a query"
        )
    if not result.rows:
        raise errors.SQLException(
            "SELECT INTO returned no rows", sqlstate="02000"
        )
    if len(result.rows) > 1:
        raise errors.CardinalityError(
            "SELECT INTO returned more than one row"
        )
    return tuple(result.rows[0])


def call_proc(
    profile: Profile,
    index: int,
    context: Optional[ConnectionContext],
    params: Sequence[Any],
    out_positions: Sequence[int],
) -> Tuple[Any, ...]:
    """Execute a CALL clause with OUT/INOUT host variables.

    ``params`` holds one slot per ``?`` marker (None at OUT-only
    positions); returns the procedure's output values in the order of
    ``out_positions`` so generated code can tuple-assign them back into
    the host variables.
    """
    if not _tracing.current.enabled:
        result = _context_for(context).execute_entry(profile, index, params)
    else:
        result = _run_entry("sqlj.call", profile, index, context, params)
    if result.kind != "call":
        raise errors.DataError(
            f"profile entry {index} is not a CALL"
        )
    outs = []
    for position in out_positions:
        if position >= len(result.out_values):
            raise errors.DataError(
                f"procedure returned no OUT value at position "
                f"{position + 1}"
            )
        outs.append(result.out_values[position])
    return tuple(outs)


def fetch(iterator: SQLJIterator) -> Optional[Tuple[Any, ...]]:
    """FETCH :iter INTO ... — returns the typed row or None at end.

    Generated code assigns the tuple to the INTO host variables only when
    a row was produced, leaving them unchanged at end-of-fetch, exactly
    like SQLJ.
    """
    if not isinstance(iterator, PositionalIterator):
        raise errors.InvalidCursorStateError(
            "FETCH requires a positional iterator"
        )
    tracer = _tracing.current
    if tracer.enabled:
        with tracer.span("sqlj.fetch"):
            row = iterator.fetch_row()
    else:
        row = iterator.fetch_row()
    if row is not None:
        _ROWS_FETCHED.increment()
    return row
