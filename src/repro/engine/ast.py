"""Abstract syntax tree for the engine's SQL dialect.

All nodes are frozen-ish dataclasses (mutable for planner annotation
convenience but treated as immutable by convention).  The tree covers the
statements the paper exercises: queries with joins/grouping/ordering, DML,
DDL for tables and views, the SQLJ Part 1 ``CREATE PROCEDURE/FUNCTION ...
EXTERNAL NAME`` forms, the Part 2 ``CREATE TYPE ... UNDER`` form with
``>>`` attribute/method references and ``NEW`` constructor calls, GRANT /
REVOKE, CALL, and transaction control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Union

__all__ = [
    "Expression", "Literal", "ColumnRef", "Parameter", "Unary", "Binary",
    "IsNull", "Between", "InList", "InSubquery", "Like", "CaseExpr",
    "WhenClause", "Cast", "FunctionCall", "AggregateCall", "ScalarSubquery",
    "Exists", "NewObject", "AttributeRef", "MethodCall", "Statement",
    "SelectItem", "StarItem", "TableName", "SubqueryRef", "Join", "OrderItem",
    "Select", "SetOperation", "ValuesSource", "Insert", "AttributePath",
    "Assignment", "Update", "Delete", "ColumnDef", "CreateTable",
    "CreateView", "AlterTable", "CreateIndex", "Drop", "ParamDef",
    "CreateRoutine", "AttrDef", "MethodDef",
    "OrderingSpec", "CreateType", "Grant", "Revoke", "Call", "Commit",
    "Explain", "Analyze", "Rollback", "Savepoint", "RollbackTo",
    "ReleaseSavepoint", "QueryExpr",
]


class Node:
    """Common base so ``isinstance(x, Node)`` identifies AST objects."""


class Expression(Node):
    """Base class for scalar expressions."""


@dataclass
class Literal(Expression):
    """A SQL literal: number, string, TRUE/FALSE, NULL."""

    value: Any


@dataclass
class ColumnRef(Expression):
    """Possibly-qualified column reference (``t.col`` or ``col``)."""

    name: str
    table: Optional[str] = None

    def display(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Parameter(Expression):
    """A ``?`` dynamic parameter; ``index`` is 0-based order of appearance."""

    index: int


@dataclass
class Unary(Expression):
    """Unary operator: ``-``, ``+`` or ``NOT``."""

    op: str
    operand: Expression


@dataclass
class Binary(Expression):
    """Binary operator: arithmetic, comparison, AND/OR, ``||`` concat."""

    op: str
    left: Expression
    right: Expression


@dataclass
class IsNull(Expression):
    operand: Expression
    negated: bool = False


@dataclass
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass
class InList(Expression):
    operand: Expression
    items: List[Expression] = field(default_factory=list)
    negated: bool = False


@dataclass
class InSubquery(Expression):
    operand: Expression
    subquery: "QueryExpr" = None  # type: ignore[assignment]
    negated: bool = False


@dataclass
class Like(Expression):
    operand: Expression
    pattern: Expression
    escape: Optional[Expression] = None
    negated: bool = False


@dataclass
class WhenClause(Node):
    condition: Expression
    result: Expression


@dataclass
class CaseExpr(Expression):
    """Searched or simple CASE (simple form carries ``operand``)."""

    operand: Optional[Expression]
    whens: List[WhenClause]
    else_result: Optional[Expression]


@dataclass
class Cast(Expression):
    operand: Expression
    target_type: str


@dataclass
class FunctionCall(Expression):
    """Scalar function call — built-in or a Part 1 external function."""

    name: str
    args: List[Expression] = field(default_factory=list)


@dataclass
class AggregateCall(Expression):
    """COUNT/SUM/AVG/MIN/MAX; ``argument is None`` means ``COUNT(*)``."""

    name: str
    argument: Optional[Expression]
    distinct: bool = False


@dataclass
class ScalarSubquery(Expression):
    query: "QueryExpr"


@dataclass
class Exists(Expression):
    query: "QueryExpr"
    negated: bool = False


@dataclass
class NewObject(Expression):
    """SQLJ Part 2 constructor invocation: ``new addr('s', 'z')``."""

    type_name: str
    args: List[Expression] = field(default_factory=list)


@dataclass
class AttributeRef(Expression):
    """SQLJ Part 2 attribute access: ``home_addr>>zip``.

    ``target`` may also name a UDT (for static attributes).
    """

    target: Expression
    attribute: str


@dataclass
class MethodCall(Expression):
    """SQLJ Part 2 method invocation: ``home_addr>>to_string()``."""

    target: Expression
    method: str
    args: List[Expression] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Query structure
# ---------------------------------------------------------------------------


class Statement(Node):
    """Base class for executable statements."""


@dataclass
class SelectItem(Node):
    expression: Expression
    alias: Optional[str] = None


@dataclass
class StarItem(Node):
    """``*`` or ``t.*`` in a select list."""

    table: Optional[str] = None


class TableRef(Node):
    """Base for FROM-clause items."""


@dataclass
class TableName(TableRef):
    name: str
    alias: Optional[str] = None


@dataclass
class SubqueryRef(TableRef):
    query: "QueryExpr"
    alias: str = ""


@dataclass
class Join(TableRef):
    kind: str  # INNER, LEFT, RIGHT, FULL, CROSS
    left: TableRef
    right: TableRef
    condition: Optional[Expression] = None


@dataclass
class OrderItem(Node):
    expression: Expression
    ascending: bool = True


@dataclass
class Select(Statement):
    """A single SELECT block (set operations wrap these)."""

    items: List[Node] = field(default_factory=list)
    from_clause: List[TableRef] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: List[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: List[OrderItem] = field(default_factory=list)
    distinct: bool = False
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None


@dataclass
class SetOperation(Statement):
    op: str  # UNION, INTERSECT, EXCEPT
    all: bool
    left: "QueryExpr"
    right: "QueryExpr"
    order_by: List[OrderItem] = field(default_factory=list)


#: Anything that produces a rowset.
QueryExpr = Union[Select, SetOperation]


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------


@dataclass
class ValuesSource(Node):
    rows: List[List[Expression]] = field(default_factory=list)


@dataclass
class Insert(Statement):
    table: str
    columns: Optional[List[str]]
    source: Union[ValuesSource, Select, SetOperation] = None  # type: ignore


@dataclass
class AttributePath(Node):
    """Assignment target ``column>>attr`` (Part 2 in-place field update)."""

    column: str
    attributes: List[str] = field(default_factory=list)


@dataclass
class Assignment(Node):
    target: Union[str, AttributePath]
    value: Expression


@dataclass
class Update(Statement):
    table: str
    assignments: List[Assignment] = field(default_factory=list)
    where: Optional[Expression] = None


@dataclass
class Delete(Statement):
    table: str
    where: Optional[Expression] = None


# ---------------------------------------------------------------------------
# DDL
# ---------------------------------------------------------------------------


@dataclass
class ColumnDef(Node):
    name: str
    type_spelling: str
    not_null: bool = False
    default: Optional[Expression] = None
    unique: bool = False
    primary_key: bool = False


@dataclass
class CreateTable(Statement):
    name: str
    columns: List[ColumnDef] = field(default_factory=list)


@dataclass
class CreateView(Statement):
    name: str
    column_names: Optional[List[str]] = None
    query: QueryExpr = None  # type: ignore[assignment]


@dataclass
class AlterTable(Statement):
    """ALTER TABLE <t> ADD [COLUMN] <def> | DROP [COLUMN] <name>."""

    table: str
    action: str  # ADD or DROP
    column_def: Optional[ColumnDef] = None
    column_name: Optional[str] = None


@dataclass
class CreateIndex(Statement):
    """CREATE INDEX <name> ON <table> (<column> [, <column> ...])."""

    name: str
    table: str
    columns: List[str] = field(default_factory=list)


@dataclass
class Drop(Statement):
    kind: str  # TABLE, VIEW, PROCEDURE, FUNCTION, TYPE, INDEX
    name: str
    if_exists: bool = False


@dataclass
class ParamDef(Node):
    """Routine parameter with SQLJ Part 1 mode (IN / OUT / INOUT)."""

    name: str
    type_spelling: str
    mode: str = "IN"


@dataclass
class CreateRoutine(Statement):
    """CREATE PROCEDURE / CREATE FUNCTION with EXTERNAL NAME binding.

    ``external_name`` has the paper's form ``par_name:module.function`` (the
    archive part is optional for system routines).
    """

    kind: str  # PROCEDURE or FUNCTION
    name: str
    params: List[ParamDef] = field(default_factory=list)
    returns: Optional[str] = None
    data_access: str = "CONTAINS SQL"  # NO SQL | READS | MODIFIES | CONTAINS
    dynamic_result_sets: int = 0
    external_name: str = ""
    language: str = "PYTHON"
    parameter_style: str = "PYTHON"


@dataclass
class AttrDef(Node):
    """Attribute mapping inside CREATE TYPE."""

    sql_name: str
    type_spelling: str
    external_name: str
    static: bool = False


@dataclass
class MethodDef(Node):
    """Method mapping inside CREATE TYPE.

    A method whose ``sql_name`` equals the type name is a constructor
    (mirroring the paper's ``method addr(...) returns addr``).
    """

    sql_name: str
    params: List[ParamDef] = field(default_factory=list)
    returns: Optional[str] = None
    external_name: str = ""
    static: bool = False


@dataclass
class OrderingSpec(Node):
    """Part 2 ordering clause: ``ordering full by method cmp`` or
    ``ordering equals only by method eq``.

    FULL orderings make instances comparable with the relational
    operators and sortable; EQUALS ONLY permits ``=``/``<>`` only.
    """

    kind: str  # FULL or EQUALS
    method: str


@dataclass
class CreateType(Statement):
    name: str
    external_name: str
    under: Optional[str] = None
    language: str = "PYTHON"
    attributes: List[AttrDef] = field(default_factory=list)
    methods: List[MethodDef] = field(default_factory=list)
    ordering: Optional[OrderingSpec] = None


# ---------------------------------------------------------------------------
# Access control, CALL, transactions
# ---------------------------------------------------------------------------


@dataclass
class Grant(Statement):
    """GRANT <privilege> ON [<kind>] <object> TO <grantees>."""

    privilege: str  # SELECT, INSERT, UPDATE, DELETE, EXECUTE, USAGE
    object_kind: str  # TABLE, PAR, DATATYPE, ROUTINE
    object_name: str
    grantees: List[str] = field(default_factory=list)


@dataclass
class Revoke(Statement):
    privilege: str
    object_kind: str
    object_name: str
    grantees: List[str] = field(default_factory=list)


@dataclass
class Call(Statement):
    """CALL procedure(args); OUT arguments are ``Parameter`` nodes."""

    procedure: str
    args: List[Expression] = field(default_factory=list)


@dataclass
class Explain(Statement):
    """EXPLAIN [ANALYZE] <query>: return the compiled plan as text rows.

    With ``analyze`` the query is actually executed through an
    instrumented plan and each line carries actual row counts/timings.
    """

    query: QueryExpr = None  # type: ignore[assignment]
    analyze: bool = False
    #: output format: ``"text"`` (default) or ``"json"``
    #: (``EXPLAIN (FORMAT JSON) ...``).
    format: str = "text"


@dataclass
class Analyze(Statement):
    """ANALYZE [<table>]: collect planner statistics.

    Without a table name every base table visible to the session is
    analyzed.  Results land in ``Catalog.statistics`` and bump the
    catalog's ``stats_version`` so cached plans are re-costed.
    """

    table: Optional[str] = None


@dataclass
class Savepoint(Statement):
    """SAVEPOINT <name>."""

    name: str


@dataclass
class RollbackTo(Statement):
    """ROLLBACK TO SAVEPOINT <name>."""

    name: str


@dataclass
class ReleaseSavepoint(Statement):
    """RELEASE SAVEPOINT <name>."""

    name: str


@dataclass
class Commit(Statement):
    pass


@dataclass
class Rollback(Statement):
    pass
