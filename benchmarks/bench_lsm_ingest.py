"""LSM ingest benchmark: write-stall under sustained write-heavy load.

Both storage engines execute, log and recover statements identically;
what differs is what a *checkpoint* costs while writes keep arriving:

* **snapshot** — each checkpoint pickles and fsyncs the entire
  database image, so the committing thread stalls for O(database) no
  matter how small the delta since the last checkpoint;
* **lsm** — each checkpoint flushes only the un-flushed memtable delta
  to an immutable sorted run, so the stall is O(delta) and stays flat
  as the database grows.

The workload makes that asymmetry measurable: preload a base table
(the "cold" data a long-lived database accumulates), then sustain a
per-row autocommit ingest sized at ~10 checkpoint intervals, so ten-
plus checkpoints fire *during* the timed loop on each engine.  The
metrics registry is reset after the preload, so each engine's own
pause histogram — ``wal.checkpoint.seconds`` for snapshot,
``lsm.stall_ms`` for LSM, both measured around the commit-path pause
the checkpointing statement actually suffers — covers exactly the
timed loop.

Reported per arm: rows/sec, worst and median insert latency (the
application's view, including background-compaction jitter), the
engine's mean and worst pause, and flush/compaction counters.  The
headline ``speedup`` is mean snapshot pause / mean LSM pause: the
mean is what sustained ingest pays at *every* checkpoint, and unlike
a max-of-a-dozen it is not dominated by single-fsync queueing jitter
on shared CI disks.  The acceptance floor is >= 5x (the LSM flush
stall must be at most 1/5 of the snapshot checkpoint pause), enforced
in smoke and full runs; worst-case pauses are reported alongside.

Usage::

    PYTHONPATH=src python benchmarks/bench_lsm_ingest.py [--base N]
        [--rows N] [--interval N]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import time
from typing import Any, Dict

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

SCHEMA = (
    "create table events (id integer, kind varchar(16), payload "
    "varchar(64), weight integer)"
)
INSERT = "insert into events values (?, ?, ?, ?)"
KINDS = ("click", "view", "purchase", "refund")


def _row(n: int):
    return [
        n,
        KINDS[n % len(KINDS)],
        f"payload-{n:08d}-{'x' * (n % 17)}",
        n % 1000,
    ]


def _arm(storage: str, base: int, rows: int, interval: int) -> Dict[str, Any]:
    from repro import observability
    from repro.engine.durability import open_database

    directory = tempfile.mkdtemp(prefix=f"bench_lsm_{storage}_")
    db = open_database(
        directory,
        name="ingest",
        storage=storage,
        sync=False,
        checkpoint_interval=interval,
    )
    try:
        session = db.create_session(autocommit=True)
        session.execute(SCHEMA)
        # Preload the cold base in one batch commit, then checkpoint it
        # out of the WAL so both engines enter the timed loop with the
        # same durable state: base on disk, empty log.
        session.execute_batch(
            INSERT, [_row(n) for n in range(base)]
        )
        db.checkpoint()

        # Scope the pause histograms to the timed loop: without this
        # the O(base) preload flush would dominate the LSM maximum.
        observability.reset_metrics()
        before = observability.snapshot()
        latencies = []
        start = time.perf_counter()
        for n in range(base, base + rows):
            t0 = time.perf_counter()
            session.execute(INSERT, _row(n))
            latencies.append(time.perf_counter() - t0)
        elapsed = time.perf_counter() - start
        after = observability.snapshot()

        [[count]] = session.execute(
            "select count(*) from events"
        ).rows
        assert count == base + rows, (count, base + rows)

        def counter_delta(name: str) -> int:
            return after["counters"].get(name, 0) - before[
                "counters"
            ].get(name, 0)

        checkpoints = counter_delta("wal.checkpoints")
        assert checkpoints >= 10, (
            f"{storage}: only {checkpoints} checkpoints fired during "
            "ingest; grow --rows or shrink --interval"
        )
        if storage == "lsm":
            pause_metric = "lsm.stall_ms"
            pause_scale = 1.0
        else:
            pause_metric = "wal.checkpoint.seconds"
            pause_scale = 1000.0
        pause = after["histograms"].get(pause_metric) or {}
        worst_pause = (pause.get("max") or 0.0) * pause_scale
        mean_pause = (pause.get("mean") or 0.0) * pause_scale
        return {
            "arm": storage,
            "rows": rows,
            "seconds": elapsed,
            "rows_per_second": rows / elapsed if elapsed else float("inf"),
            "worst_insert_ms": max(latencies) * 1000.0,
            "median_insert_ms": statistics.median(latencies) * 1000.0,
            "checkpoints": checkpoints,
            "flushes": counter_delta("lsm.flushes"),
            "compactions": counter_delta("lsm.compactions"),
            "pause_metric": pause_metric,
            "mean_pause_ms": mean_pause,
            "worst_pause_ms": worst_pause,
        }
    finally:
        db.close()
        shutil.rmtree(directory, ignore_errors=True)


def bench_lsm_ingest(
    base: int, rows: int, interval: int
) -> Dict[str, Any]:
    """Run both arms; ``speedup`` is the worst-stall ratio
    (snapshot / lsm, higher is better for the LSM engine)."""
    arms = {
        storage: _arm(storage, base, rows, interval)
        for storage in ("snapshot", "lsm")
    }
    stall_ratio = (
        arms["snapshot"]["mean_pause_ms"]
        / arms["lsm"]["mean_pause_ms"]
    )
    ingest_ratio = (
        arms["lsm"]["rows_per_second"]
        / arms["snapshot"]["rows_per_second"]
    )
    return {
        "experiment": "lsm_ingest",
        "base_rows": base,
        "ingest_rows": rows,
        "checkpoint_interval": interval,
        "arms": list(arms.values()),
        "mean_stall_ms_snapshot": arms["snapshot"]["mean_pause_ms"],
        "mean_stall_ms_lsm": arms["lsm"]["mean_pause_ms"],
        "worst_stall_ms_snapshot": arms["snapshot"]["worst_pause_ms"],
        "worst_stall_ms_lsm": arms["lsm"]["worst_pause_ms"],
        "ingest_throughput_scaling": ingest_ratio,
        "speedup": stall_ratio,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--base", type=int, default=60_000)
    parser.add_argument("--rows", type=int, default=2_000)
    parser.add_argument("--interval", type=int, default=150)
    args = parser.parse_args(argv)
    result = bench_lsm_ingest(args.base, args.rows, args.interval)
    print(json.dumps(result, indent=2))
    if result["speedup"] < 5.0:
        print(
            f"FAIL: LSM worst stall is 1/{result['speedup']:.1f} of "
            "the snapshot checkpoint pause; floor is 1/5",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
