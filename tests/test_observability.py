"""Tracing, metrics, and EXPLAIN ANALYZE (the observability subsystem).

Covers span nesting and timing, metrics counter/histogram semantics,
EXPLAIN ANALYZE actual-row agreement with real query results, trace
sink output formats, operator error wrapping, and the no-op behaviour
of every hook while tracing is disabled (the default).
"""

from __future__ import annotations

import io
import json

import pytest

from repro import errors, observability
from repro.engine.executor import (
    Filter,
    QueryPlan,
    SeqScan,
    instrument_plan,
)
from repro.observability import tracing
from repro.observability.metrics import MetricsRegistry
from repro import ConnectionContext


@pytest.fixture(autouse=True)
def _reset_tracer():
    """Every test starts and ends with tracing disabled."""
    tracing.disable_tracing()
    yield
    tracing.disable_tracing()


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = tracing.Tracer()
        with tracer.span("statement", sql="SELECT 1") as root:
            with tracer.span("parse"):
                pass
            with tracer.span("execute") as execute:
                with tracer.span("fetch"):
                    pass
        assert [child.name for child in root.children] == \
            ["parse", "execute"]
        assert [child.name for child in execute.children] == ["fetch"]
        assert root.attributes == {"sql": "SELECT 1"}

    def test_timing_is_monotonic_and_contains_children(self):
        tracer = tracing.Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.start_time <= inner.start_time
        assert inner.end_time <= outer.end_time
        assert inner.duration >= 0.0
        assert outer.duration >= inner.duration

    def test_finished_roots_are_retained(self):
        tracer = tracing.Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [span.name for span in tracer.finished] == ["a", "c"]

    def test_sibling_trees_do_not_leak_into_each_other(self):
        tracer = tracing.Tracer()
        with tracer.span("first") as first:
            pass
        with tracer.span("second") as second:
            pass
        assert first.children == []
        assert second.children == []

    def test_json_lines_are_valid_json_with_depths(self):
        tracer = tracing.Tracer()
        with tracer.span("statement", sql="SELECT 1") as root:
            with tracer.span("execute"):
                pass
        records = [json.loads(line) for line in root.json_lines()]
        assert [r["name"] for r in records] == ["statement", "execute"]
        assert [r["depth"] for r in records] == [0, 1]
        assert records[0]["attributes"] == {"sql": "SELECT 1"}
        assert all(r["duration_ms"] >= 0.0 for r in records)

    def test_tree_lines_indent_children(self):
        tracer = tracing.Tracer()
        with tracer.span("statement") as root:
            with tracer.span("execute"):
                pass
        lines = root.tree_lines()
        assert lines[0].startswith("statement [")
        assert lines[1].startswith("  execute [")


class TestTracerManagement:
    def test_disabled_by_default_and_span_is_shared_noop(self):
        tracer = tracing.get_tracer()
        assert tracer.enabled is False
        first = tracing.span("anything", sql="x")
        second = tracing.span("другое")
        assert first is second  # the singleton null span
        with first as span:
            span.annotate(more="attrs")  # no-op, no error

    def test_enable_tracing_json_emits_to_stream(self):
        stream = io.StringIO()
        tracing.enable_tracing("json", stream)
        assert tracing.tracing_enabled()
        with tracing.span("statement", sql="SELECT 1"):
            with tracing.span("execute"):
                pass
        lines = stream.getvalue().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["statement", "execute"]

    def test_enable_tracing_tree_emits_indented_text(self):
        stream = io.StringIO()
        tracing.enable_tracing("tree", stream)
        with tracing.span("statement"):
            with tracing.span("execute"):
                pass
        text = stream.getvalue()
        assert "statement [" in text
        assert "\n  execute [" in text

    def test_configure_from_environment(self):
        tracer = tracing.configure_from_environment({"REPRO_TRACE": "1"})
        assert tracer.enabled
        tracer = tracing.configure_from_environment({"REPRO_TRACE": "off"})
        assert not tracer.enabled
        tracer = tracing.configure_from_environment({})
        assert not tracer.enabled

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            tracing.enable_tracing("bogus")

    def test_unknown_env_mode_warns_but_does_not_raise(self, capsys):
        tracer = tracing.configure_from_environment({"REPRO_TRACE": "bogus"})
        assert not tracer.enabled
        assert "bogus" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_semantics(self):
        registry = MetricsRegistry()
        registry.increment("a")
        registry.increment("a", 4)
        registry.increment("b")
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a": 5, "b": 1}

    def test_histogram_semantics(self):
        registry = MetricsRegistry()
        for value in (2.0, 1.0, 3.0):
            registry.observe("lat", value)
        summary = registry.snapshot()["histograms"]["lat"]
        assert summary["count"] == 3
        assert summary["sum"] == 6.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == 2.0

    def test_empty_histogram_mean_is_none(self):
        registry = MetricsRegistry()
        assert registry.histogram("lat").mean is None

    def test_reset_preserves_counter_identity(self):
        # Hot paths cache Counter objects at import; reset must zero them
        # in place so the cached handles keep reporting to the registry.
        registry = MetricsRegistry()
        counter = registry.counter("a")
        counter.increment(3)
        registry.reset()
        assert registry.counter("a") is counter
        counter.increment()
        assert registry.snapshot()["counters"]["a"] == 1

    def test_snapshot_is_a_copy(self):
        registry = MetricsRegistry()
        registry.increment("a")
        snapshot = registry.snapshot()
        snapshot["counters"]["a"] = 999
        assert registry.snapshot()["counters"]["a"] == 1


class TestPipelineMetrics:
    def test_mixed_workload_populates_process_counters(self, payroll):
        session = payroll
        before = observability.snapshot()["counters"]
        session.execute("SELECT name, state FROM emps")
        session.execute(
            "CALL correct_states('CA                  ', 'CA')"
        )
        after = observability.snapshot()["counters"]

        def delta(name):
            return after.get(name, 0) - before.get(name, 0)

        assert delta("statements.select") >= 1
        assert delta("statements.call") >= 1
        assert delta("rows.returned") >= 1
        assert delta("rows.scanned") >= 1
        assert delta("procedures.calls") >= 1

    def test_sql_errors_counted_by_sqlstate(self, session):
        before = observability.snapshot()["counters"]
        with pytest.raises(errors.SQLException) as excinfo:
            session.execute("SELECT * FROM no_such_table")
        state = excinfo.value.sqlstate
        after = observability.snapshot()["counters"]
        assert after.get(f"errors.{state}", 0) >= \
            before.get(f"errors.{state}", 0) + 1

    def test_statement_seconds_only_sampled_while_tracing(self, session):
        histogram = observability.registry.histogram("statement.seconds")
        untraced = histogram.count
        session.execute("SELECT 1")
        assert histogram.count == untraced
        tracing.enable_tracing("json", io.StringIO())
        session.execute("SELECT 1")
        assert histogram.count == untraced + 1


# ---------------------------------------------------------------------------
# Engine pipeline tracing
# ---------------------------------------------------------------------------


class TestPipelineTracing:
    def test_statement_span_tree(self, emps):
        stream = io.StringIO()
        tracer = tracing.enable_tracing("json", stream)
        emps.execute("SELECT name FROM emps WHERE sales > 100")
        root = tracer.finished[-1]
        assert root.name == "statement"
        assert root.attributes["sql"].startswith("SELECT name")
        names = [span.name for span, _depth in root.walk()]
        assert names == ["statement", "parse", "plan", "execute", "fetch"]

    def test_sqlj_clause_spans(self, emps):
        from repro.runtime import PositionalIterator, sqlj
        from repro.translator import TranslationOptions, Translator

        translator = Translator(
            TranslationOptions(exemplar=emps.database)
        )
        result = translator.translate_source(
            "#sql iterator Names (str);\n"
            "def top():\n"
            "    rows: Names\n"
            "    #sql rows = { SELECT name FROM emps };\n"
            "    return rows\n",
            "obs_mod",
        )
        profile = result.profiles[0]
        context = ConnectionContext(emps)

        class Names(PositionalIterator):
            _column_types = (str,)

        tracer = tracing.enable_tracing("json", io.StringIO())
        iterator = sqlj.query(profile, 0, context, (), Names)
        assert iterator is not None
        root = tracer.finished[-1]
        names = [span.name for span, _depth in root.walk()]
        assert names[0] == "sqlj.query"
        assert "sqlj.clause" in names
        assert "statement" in names

    def test_procedure_span(self, payroll):
        tracer = tracing.enable_tracing("json", io.StringIO())
        payroll.execute(
            "CALL correct_states('CA                  ', 'CA')"
        )
        root = tracer.finished[-1]
        names = [span.name for span, _depth in root.walk()]
        assert "procedure" in names
        procedure = next(
            span for span, _ in root.walk() if span.name == "procedure"
        )
        assert procedure.attributes["name"] == "correct_states"

    def test_connection_tracer_override(self, db):
        from repro.dbapi.driver import DriverManager

        connection = DriverManager.get_connection(
            "pydbc:standard:obs", database=db
        )
        private = tracing.Tracer()
        connection.tracer = private
        statement = connection.create_statement()
        statement.execute_update("create table t (v integer)")
        assert tracing.get_tracer().enabled is False  # global untouched
        assert private.finished
        assert private.finished[-1].name == "dbapi.statement"


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE
# ---------------------------------------------------------------------------


class TestExplainAnalyze:
    def test_actual_rows_match_query_results(self, emps):
        query = "SELECT name FROM emps WHERE sales > 100"
        expected = len(emps.execute(query).rows)
        result = emps.execute(f"EXPLAIN ANALYZE {query}")
        lines = [row[0] for row in result.rows]
        assert any(
            line.strip().startswith("Filter")
            and f"actual rows={expected}" in line
            for line in lines
        )
        assert lines[-1].startswith(f"Total: rows={expected} ")

    def test_join_plan_annotates_every_operator(self, session):
        session.execute("create table a (x integer)")
        session.execute("create table b (y integer)")
        for value in (1, 2, 3):
            session.execute(f"insert into a values ({value})")
        for value in (2, 3, 4):
            session.execute(f"insert into b values ({value})")
        result = session.execute(
            "EXPLAIN ANALYZE SELECT x, y FROM a JOIN b ON x = y"
        )
        lines = [row[0] for row in result.rows]
        plan_lines = [line for line in lines if "(" in line]
        assert any("HashJoin" in line for line in lines)
        # Every operator line carries actual statistics.
        operator_lines = [
            line for line in lines
            if line.strip() and not line.startswith("Total:")
        ]
        assert operator_lines
        for line in operator_lines:
            assert "actual rows=" in line, line
        assert any("actual rows=2" in line for line in plan_lines)
        assert lines[-1].startswith("Total: rows=2 ")

    def test_plain_explain_has_no_actuals_and_does_not_execute(self, emps):
        result = emps.execute("EXPLAIN SELECT name FROM emps")
        lines = [row[0] for row in result.rows]
        assert not any("actual rows=" in line for line in lines)
        assert not any(line.startswith("Total:") for line in lines)

    def test_filter_description_in_explain(self, emps):
        result = emps.execute(
            "EXPLAIN SELECT name FROM emps WHERE sales > 100"
        )
        lines = [row[0] for row in result.rows]
        assert any("Filter (sales > 100)" in line for line in lines)

    def test_instrument_plan_counts_rows_per_node(self, emps):
        table = emps.catalog.get_table("emps")
        scan = SeqScan(table)
        filtered = Filter(scan, lambda env: True)
        plan = QueryPlan(filtered, shape=None)
        instrumentation = instrument_plan(filtered)
        rows = plan.run(emps)
        assert instrumentation.stats_for(scan).rows_out == len(rows)
        assert instrumentation.stats_for(filtered).rows_out == len(rows)
        assert instrumentation.stats_for(scan).seconds >= 0.0


# ---------------------------------------------------------------------------
# Operator error wrapping
# ---------------------------------------------------------------------------


class TestOperatorErrors:
    def test_raw_exception_names_originating_operator(self, emps):
        table = emps.catalog.get_table("emps")

        def explode(env):
            raise ValueError("boom")

        plan = QueryPlan(Filter(SeqScan(table), explode), shape=None)
        with pytest.raises(errors.OperatorExecutionError) as excinfo:
            plan.run(emps)
        message = str(excinfo.value)
        assert "ValueError" in message
        assert "Filter" in message
        assert "boom" in message
        assert excinfo.value.sqlstate == "XX000"

    def test_sql_exceptions_pass_through_unwrapped(self, emps):
        def deny(env):
            raise errors.DataError("typed failure")

        plan = QueryPlan(Filter(SeqScan(emps.catalog.get_table("emps")),
                                deny), shape=None)
        with pytest.raises(errors.DataError):
            plan.run(emps)


class TestMetricsConcurrency:
    """Regression: counter/histogram updates used to be bare
    ``value += n`` read-modify-writes, which lost increments when
    threads interleaved.  Totals must now be exact, and a concurrent
    ``snapshot()`` must never see a histogram whose count and sum
    disagree."""

    def test_counter_increments_are_exact_under_threads(self):
        from repro.testing import run_concurrent

        reg = MetricsRegistry()
        counter = reg.counter("hammered")
        threads, per_thread = 16, 2000

        def hammer(_i):
            for _ in range(per_thread):
                counter.increment()

        run_concurrent(threads, hammer).raise_first()
        assert counter.value == threads * per_thread

    def test_histogram_totals_exact_and_snapshots_consistent(self):
        from repro.testing import run_concurrent

        reg = MetricsRegistry()
        histogram = reg.histogram("latency")
        threads, per_thread = 8, 1000
        torn = []

        def observe(_i):
            for _ in range(per_thread):
                histogram.observe(2.0)

        def snapshot(_i):
            for _ in range(300):
                summary = reg.snapshot()["histograms"]["latency"]
                # Every value is 2.0, so sum must equal 2 * count in
                # every snapshot, not just the final one.
                if summary["sum"] != 2.0 * summary["count"]:
                    torn.append(summary)

        ops = [
            (lambda i=i: observe(i)) if i < threads
            else (lambda i=i: snapshot(i))
            for i in range(threads + 4)
        ]
        run_concurrent(threads + 4, ops).raise_first()
        assert not torn, f"inconsistent snapshots: {torn[:3]}"
        summary = histogram.summary()
        assert summary["count"] == threads * per_thread
        assert summary["sum"] == 2.0 * threads * per_thread
        assert summary["min"] == summary["max"] == 2.0

    def test_registry_reset_under_concurrent_increments(self):
        from repro.testing import run_concurrent

        reg = MetricsRegistry()
        counter = reg.counter("resettable")

        def bump(_i):
            for _ in range(500):
                counter.increment()

        def reset(_i):
            for _ in range(50):
                reg.reset()

        ops = [(lambda: bump(0)), (lambda: bump(1)), (lambda: reset(2))]
        run_concurrent(3, ops).raise_first()
        reg.reset()
        assert counter.value == 0

    def test_snapshot_never_tears_against_reset_and_writers(self):
        """Regression: snapshot() reads under the instrument locks.

        Writers observe a fixed value into a histogram while another
        thread resets the registry and a fourth takes snapshots.  With
        per-instrument locking every snapshot satisfies
        ``sum == count * value`` exactly; a snapshot reading ``count``
        and ``total`` around a concurrent observe/reset would not.
        """
        from repro.testing import run_concurrent

        reg = MetricsRegistry()
        hist = reg.histogram("torn.check")
        counter = reg.counter("torn.counter")
        snapshots = []

        def write(_i):
            for _ in range(2000):
                hist.observe(2.0)
                counter.increment()

        def reset(_i):
            for _ in range(200):
                reg.reset()

        def snapshot(_i):
            for _ in range(500):
                snapshots.append(reg.snapshot())

        ops = [
            (lambda: write(0)),
            (lambda: write(1)),
            (lambda: reset(2)),
            (lambda: snapshot(3)),
        ]
        run_concurrent(4, ops).raise_first()

        assert len(snapshots) == 500
        for snap in snapshots:
            summary = snap["histograms"]["torn.check"]
            count = summary["count"]
            assert 0 <= count <= 4000
            assert summary["sum"] == count * 2.0
            if count == 0:
                assert summary["mean"] is None
            else:
                assert summary["mean"] == 2.0
                assert summary["min"] == summary["max"] == 2.0
            value = snap["counters"]["torn.counter"]
            assert isinstance(value, int) and 0 <= value <= 4000


# ---------------------------------------------------------------------------
# Trace-context propagation over the wire
# ---------------------------------------------------------------------------


class TestDistributedTracing:
    """Client trace context rides the EXECUTE frame to the server."""

    def test_remote_execution_is_one_connected_span_tree(self):
        import repro
        from repro.server import ReproServer

        tracer = tracing.Tracer()
        tracing.set_tracer(tracer)
        srv = ReproServer(page_size=16).start_background()
        try:
            url = f"repro://127.0.0.1:{srv.port}/tracedb"
            with repro.connect(url) as conn:
                st = conn.create_statement()
                st.execute_update("CREATE TABLE pts (x INT)")
                st.execute_update("INSERT INTO pts VALUES (7)")
                rs = st.execute_query("SELECT x FROM pts")
                assert rs.next() and rs.get_int(1) == 7
                st.close()
        finally:
            srv.stop_background()

        sql = "SELECT x FROM pts"
        client_spans = [
            span
            for root in tracer.finished
            for span, _ in root.walk()
            if span.name == "remote.execute"
            and span.attributes.get("sql") == sql
        ]
        server_roots = [
            root
            for root in tracer.finished
            if root.name == "server.execute"
            and root.attributes.get("sql") == sql
        ]
        assert len(client_spans) == 1
        assert len(server_roots) == 1
        client, server = client_spans[0], server_roots[0]

        # One tree: the server-side root adopted the client's trace id
        # and points its parent at the client's remote.execute span.
        assert server.trace_id == client.trace_id
        assert server.parent_id == client.span_id
        assert client.trace_id is not None

        # The engine's own statement spans hang off the server root, so
        # the full pipeline is reachable from the client's trace id.
        nested = [span.name for span, depth in server.walk() if depth > 0]
        assert "statement" in nested
        assert "execute" in nested

        # Timing order sanity: the server span is contained within the
        # client's round trip (same perf_counter clock, same process).
        assert client.start_time <= server.start_time
        assert server.end_time <= client.end_time
