"""Testing toolkit: deterministic fault injection, a barrier-driven
concurrency harness, and seeded SQL workload generation.

Production code never imports this package; faults reach the engine
through the neutral hooks in :mod:`repro.faultpoints`.
"""

from repro.testing.concurrency import ConcurrentResult, run_concurrent
from repro.testing.faults import FaultPlan, FaultRule
from repro.testing.generators import WorkloadGenerator
from repro.testing.retry import retry_serialization

__all__ = [
    "ConcurrentResult",
    "FaultPlan",
    "FaultRule",
    "WorkloadGenerator",
    "retry_serialization",
    "run_concurrent",
]
