"""Network server + remote driver: the client/server boundary.

Covers the tentpole of the server PR: multi-client TCP concurrency,
cursor paging, SQLSTATE round-trips through error frames, graceful
shutdown draining, seeded ``net.*`` fault replay, pool health checks
for dead TCP connections, and a differential run proving remote and
local connections are indistinguishable on a generated workload.

The second-process acceptance test at the bottom starts the server via
``python -m repro.server`` and runs the TUTORIAL.md §2 embedded-SQL
example, translated here, in a fresh interpreter over ``repro://``.
"""

import socket
import subprocess
import sys
import textwrap
import threading
import time

import pytest

import repro
from repro import ConnectionContext, errors
from repro.dbapi.remote import RemoteRows, RemoteTarget, parse_remote_url
from repro.server import ReproServer
from repro.server import protocol
from repro.testing import FaultPlan, WorkloadGenerator, run_concurrent


@pytest.fixture
def server():
    srv = ReproServer(page_size=16).start_background()
    yield srv
    srv.stop_background()


def url_of(srv, name):
    return f"repro://127.0.0.1:{srv.port}/{name}"


# ---------------------------------------------------------------------------
# basics
# ---------------------------------------------------------------------------


class TestRemoteBasics:
    def test_roundtrip_ddl_dml_query(self, server):
        with repro.connect(url_of(server, "basics")) as conn:
            stmt = conn.create_statement()
            stmt.execute_update(
                "create table emps (name varchar(50), sales int)"
            )
            assert stmt.execute_update(
                "insert into emps values ('Ann', 10), ('Bob', 20)"
            ) == 2
            rs = stmt.execute_query(
                "select name, sales from emps order by sales desc"
            )
            assert rs.next()
            assert (rs.get_string(1), rs.get_int("sales")) == ("Bob", 20)
            assert rs.next() and rs.get_string("name") == "Ann"
            assert not rs.next()

    def test_prepared_statement_remote(self, server):
        with repro.connect(url_of(server, "prepared")) as conn:
            conn.create_statement().execute_update(
                "create table t (n int, s varchar(10))"
            )
            ps = conn.prepare_statement("insert into t values (?, ?)")
            for i in range(5):
                ps.set_int(1, i)
                ps.set_string(2, f"v{i}")
                ps.execute_update()
            ps = conn.prepare_statement("select s from t where n = ?")
            ps.set_int(1, 3)
            rs = ps.execute_query()
            assert rs.next() and rs.get_string(1) == "v3"

    def test_prepare_parses_client_side(self, server):
        with repro.connect(url_of(server, "parse")) as conn:
            with pytest.raises(errors.SQLSyntaxError):
                conn.prepare_statement("selec broken")

    def test_callable_statement_out_params(self, server, tmp_path):
        # Install the routine through the shared registry (the server
        # runs in-process), then CALL it over the wire: the routine
        # executes server-side and the OUT value rides the RESULT frame.
        from repro.procedures import build_par
        from repro.sqltypes import typecodes

        with repro.connect(url_of(server, "routines")) as conn:
            conn.create_statement().execute_update(
                "create table seen (n int)"
            )
        par = build_par(
            str(tmp_path / "r.par"),
            {"mod": "def fill(container):\n    container[0] = 'remote'\n"},
        )
        local = repro.registry.lookup("routines").create_session(
            autocommit=True
        )
        local.execute(f"call sqlj.install_par('{par}', 'rp')")
        local.execute(
            "create procedure fill(out x varchar(10)) no sql "
            "external name 'rp:mod.fill' language python "
            "parameter style python"
        )
        local.execute("grant execute on fill to public")
        local.close()

        with repro.connect(url_of(server, "routines")) as conn:
            stmt = conn.prepare_call("{call fill(?)}")
            stmt.register_out_parameter(1, typecodes.VARCHAR)
            stmt.execute()
            assert stmt.get_string(1) == "remote"

    def test_autocommit_and_transactions(self, server):
        with repro.connect(url_of(server, "txn")) as conn:
            st = conn.create_statement()
            st.execute_update("create table t (n int)")
            conn.set_auto_commit(False)
            st.execute_update("insert into t values (1)")
            assert conn.session.transaction_log.active
            conn.rollback()
            assert not conn.session.transaction_log.active
            rs = st.execute_query("select count(*) from t")
            rs.next()
            assert rs.get_int(1) == 0
            st.execute_update("insert into t values (2)")
            conn.commit()
            rs = st.execute_query("select count(*) from t")
            rs.next()
            assert rs.get_int(1) == 1

    def test_sqlstate_error_roundtrip(self, server):
        with repro.connect(url_of(server, "errs")) as conn:
            st = conn.create_statement()
            with pytest.raises(errors.UndefinedTableError) as exc:
                st.execute_query("select * from nope")
            assert exc.value.sqlstate == "42P01"
            with pytest.raises(errors.SQLSyntaxError) as exc:
                st.execute_update("not sql at all")
            assert exc.value.sqlstate.startswith("42")
            st.execute_update("create table u (n int unique)")
            st.execute_update("insert into u values (1)")
            with pytest.raises(errors.UniqueViolationError) as exc:
                st.execute_update("insert into u values (1)")
            assert exc.value.sqlstate == "23505"

    def test_connect_rejects_data_dir_for_remote(self, server):
        with pytest.raises(errors.ConnectionError_):
            repro.connect(url_of(server, "x"), data_dir="/tmp/nope")

    def test_malformed_remote_urls(self):
        for bad in ("repro://", "repro://host:1", "repro:standard:x"):
            with pytest.raises(errors.ConnectionError_):
                parse_remote_url(bad)
        parts = parse_remote_url("repro://h:9/db?user=smith&dialect=acme")
        assert parts == {
            "host": "h", "port": 9, "database": "db",
            "user": "smith", "dialect": "acme", "auth": None,
        }


# ---------------------------------------------------------------------------
# cursor paging
# ---------------------------------------------------------------------------


class TestCursorPaging:
    def test_large_result_pages_through_cursor(self, server):
        with repro.connect(url_of(server, "paging")) as conn:
            st = conn.create_statement()
            st.execute_update("create table big (n int)")
            ps = conn.prepare_statement("insert into big values (?)")
            for i in range(100):
                ps.set_int(1, i)
                ps.execute_update()
            before = repro.observability.snapshot()["counters"].get(
                "remote.fetches", 0
            )
            rs = st.execute_query("select n from big order by n")
            rows = [rs.get_int(1) for _ in iter(rs.next, False)]
            assert rows == list(range(100))
            after = repro.observability.snapshot()["counters"].get(
                "remote.fetches", 0
            )
            # page_size=16 → 100 rows need several FETCH round trips
            assert after - before >= 5

    def test_slice_and_negative_index(self, server):
        with repro.connect(url_of(server, "slices")) as conn:
            st = conn.create_statement()
            st.execute_update("create table s (n int)")
            for i in range(40):
                st.execute_update(f"insert into s values ({i})")
            result = conn.session.execute("select n from s order by n")
            assert isinstance(result.rows, RemoteRows)
            assert len(result.rows) == 40
            assert result.rows[-1] == [39]
            assert result.rows[10:13] == [[10], [11], [12]]
            rs_all = [row[0] for row in result.rows]
            assert rs_all == list(range(40))

    def test_scrollable_resultset_over_remote_rows(self, server):
        with repro.connect(url_of(server, "scroll")) as conn:
            st = conn.create_statement()
            st.execute_update("create table s (n int)")
            for i in range(50):
                st.execute_update(f"insert into s values ({i})")
            rs = st.execute_query("select n from s order by n")
            assert rs.last() and rs.get_int(1) == 49
            assert rs.first() and rs.get_int(1) == 0
            assert rs.absolute(25) and rs.get_int(1) == 24
            assert rs.fetch_all() == [[n] for n in range(25, 50)]


# ---------------------------------------------------------------------------
# multi-client concurrency
# ---------------------------------------------------------------------------


class TestMultiClient:
    def test_concurrent_clients_serialise_writes(self, server):
        setup = repro.connect(url_of(server, "conc"))
        setup.create_statement().execute_update(
            "create table counter (n int)"
        )
        setup.create_statement().execute_update(
            "insert into counter values (0)"
        )
        setup.close()

        def bump(_thread):
            with repro.connect(url_of(server, "conc")) as conn:
                for _ in range(5):
                    conn.create_statement().execute_update(
                        "update counter set n = n + 1"
                    )

        result = run_concurrent(8, bump, timeout=60.0)
        result.raise_first()
        with repro.connect(url_of(server, "conc")) as conn:
            rs = conn.create_statement().execute_query(
                "select n from counter"
            )
            rs.next()
            assert rs.get_int(1) == 40

    def test_connection_limit_refused_with_08004(self):
        srv = ReproServer(max_connections=1).start_background()
        try:
            keep = repro.connect(url_of(srv, "limit"))
            with pytest.raises(errors.ConnectionError_) as exc:
                repro.connect(url_of(srv, "limit"))
            assert exc.value.sqlstate == "08004"
            keep.close()
        finally:
            srv.stop_background()

    def test_auth_token_gate(self):
        srv = ReproServer(auth_token="sesame").start_background()
        try:
            with pytest.raises(errors.AuthorizationError) as exc:
                repro.connect(url_of(srv, "authy"))
            assert exc.value.sqlstate == "28000"
            conn = repro.connect(url_of(srv, "authy") + "?auth=sesame")
            conn.create_statement().execute_update(
                "create table ok (n int)"
            )
            conn.close()
        finally:
            srv.stop_background()

    def test_pre_handshake_sockets_count_toward_limit(self):
        # Sockets that dialled but never sent HELLO occupy their slot
        # during the handshake window — the cap is on connections, not
        # on completed handshakes.
        srv = ReproServer(max_connections=2).start_background()
        idlers = []
        try:
            idlers = [
                socket.create_connection(("127.0.0.1", srv.port))
                for _ in range(2)
            ]
            time.sleep(0.3)  # let the event loop accept both
            with pytest.raises(errors.ConnectionError_) as exc:
                repro.connect(url_of(srv, "flood"))
            assert exc.value.sqlstate == "08004"
        finally:
            for sock in idlers:
                sock.close()
            srv.stop_background()


# ---------------------------------------------------------------------------
# cancel + graceful shutdown
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_cancel_inflight_statement_57014(self, server):
        conn = repro.connect(url_of(server, "cancel"))
        conn.create_statement().execute_update("create table t (n int)")
        plan = FaultPlan(seed=1).inject("executor.run", delay=0.4, times=1)
        outcome = {}

        def run():
            try:
                conn.create_statement().execute_query("select * from t")
                outcome["error"] = None
            except errors.ReproError as exc:
                outcome["error"] = exc

        with plan.armed():
            worker = threading.Thread(target=run)
            worker.start()
            time.sleep(0.15)
            conn.session.cancel()
            worker.join(timeout=30)
        assert isinstance(outcome["error"], errors.QueryCanceledError)
        assert outcome["error"].sqlstate == "57014"
        # the session survives a cancel
        rs = conn.create_statement().execute_query(
            "select count(*) from t"
        )
        rs.next()
        assert rs.get_int(1) == 0
        conn.close()

    def test_stale_cancel_does_not_kill_next_statement(self, server):
        # A cancel that loses the race — its target already answered —
        # must be discarded by sequence number, not left armed to
        # spuriously cancel whatever runs next.  TCP ordering makes
        # this deterministic: the CANCEL frame is written before the
        # next EXECUTE, so the server always sees it first.
        with repro.connect(url_of(server, "stale")) as conn:
            st = conn.create_statement()
            st.execute_update("create table t (n int)")
            st.execute_update("insert into t values (1)")
            conn.session.cancel()  # targets the finished INSERT
            rs = st.execute_query("select count(*) from t")
            rs.next()
            assert rs.get_int(1) == 1  # no spurious 57014

    def test_graceful_shutdown_drains_inflight(self):
        srv = ReproServer().start_background()
        conn = repro.connect(url_of(srv, "drain"))
        conn.create_statement().execute_update("create table t (n int)")
        conn.create_statement().execute_update("insert into t values (7)")
        plan = FaultPlan(seed=2).inject("executor.run", delay=0.5, times=1)
        outcome = {}

        def run():
            try:
                rs = conn.create_statement().execute_query(
                    "select n from t"
                )
                rs.next()
                outcome["value"] = rs.get_int(1)
            except errors.ReproError as exc:  # pragma: no cover
                outcome["value"] = exc

        with plan.armed():
            worker = threading.Thread(target=run)
            worker.start()
            time.sleep(0.15)
            srv.stop_background()  # graceful: drains the slow SELECT
            worker.join(timeout=30)
        assert outcome["value"] == 7
        # afterwards the link is down and typed as such
        with pytest.raises(errors.ConnectionError_):
            conn.create_statement().execute_query("select n from t")

    def test_server_refuses_while_draining_or_after(self):
        srv = ReproServer().start_background()
        url = url_of(srv, "gone")
        repro.connect(url).close()
        srv.stop_background()
        with pytest.raises(errors.ConnectionError_):
            repro.connect(url)


# ---------------------------------------------------------------------------
# net.* fault replay
# ---------------------------------------------------------------------------


class TestNetFaults:
    def test_torn_client_frame_is_connection_lost(self, server):
        conn = repro.connect(url_of(server, "torn"))
        conn.create_statement().execute_update("create table t (n int)")
        plan = FaultPlan(seed=3).inject(
            "net.write", corrupt=lambda data: data[:7], times=1
        )
        with plan.armed():
            with pytest.raises(errors.ConnectionLostError) as exc:
                conn.create_statement().execute_query("select * from t")
        assert exc.value.sqlstate == "08006"
        assert plan.fired["net.write"] == 1
        assert conn.session.closed  # desynced stream must not be reused

    def test_mid_response_disconnect(self, server):
        conn = repro.connect(url_of(server, "midresp"))
        conn.create_statement().execute_update("create table t (n int)")
        plan = FaultPlan(seed=4).inject(
            "net.respond", corrupt=lambda data: data[:3], times=1
        )
        with plan.armed():
            with pytest.raises(errors.ConnectionLostError):
                conn.create_statement().execute_query("select * from t")
        assert plan.fired["net.respond"] == 1

    def test_slow_peer_delay_still_succeeds(self, server):
        conn = repro.connect(url_of(server, "slow"))
        conn.create_statement().execute_update("create table t (n int)")
        plan = FaultPlan(seed=5).inject("net.write", delay=0.2, times=1)
        with plan.armed():
            started = time.monotonic()
            conn.create_statement().execute_update(
                "insert into t values (1)"
            )
            assert time.monotonic() - started >= 0.2
        conn.close()

    def test_seeded_replay_is_exact(self, server):
        conn = repro.connect(url_of(server, "replay"))
        conn.create_statement().execute_update("create table t (n int)")

        def workload(plan):
            failures = 0
            with plan.armed():
                for _ in range(10):
                    try:
                        conn2 = repro.connect(url_of(server, "replay"))
                        conn2.create_statement().execute_update(
                            "insert into t values (1)"
                        )
                        conn2.close()
                    except errors.ConnectionError_:
                        failures += 1
            return failures, dict(plan.fired)

        plan = FaultPlan(seed=6).inject(
            "net.write", corrupt=lambda data: data[:5], probability=0.3
        )
        first = workload(plan)
        plan.reset()
        second = workload(plan)
        assert first == second
        assert first[1].get("net.write", 0) > 0


# ---------------------------------------------------------------------------
# pool health for remote connections (the PR's bugfix)
# ---------------------------------------------------------------------------


class TestRemotePoolHealth:
    def test_dead_tcp_connection_replaced_on_checkout(self):
        srv = ReproServer().start_background()
        url = url_of(srv, "poolheal")
        pool = repro.DriverManager.get_pool(url, max_size=2)
        conn = pool.checkout()
        conn.create_statement().execute_update("create table t (n int)")
        first_session = conn.session
        conn.close()  # idle, healthy
        port = srv.port
        srv.stop_background()  # the idle session's peer dies

        srv2 = ReproServer(port=port).start_background()
        try:
            conn2 = pool.checkout()  # must NOT hand out the dead session
            assert conn2.session is not first_session
            conn2.create_statement().execute_update(
                "create table t2 (n int)"
            )
            conn2.close()
            assert first_session.closed  # ping probe marked it dead
        finally:
            srv2.stop_background()

    def test_fault_injected_silent_socket_death(self):
        srv = ReproServer().start_background()
        try:
            url = url_of(srv, "silent")
            pool = repro.DriverManager.get_pool(url, max_size=2)
            conn = pool.checkout()
            victim = conn.session
            # Kill the socket under the session without marking it
            # closed — a silently dropped TCP connection.  The ping
            # probe at checkin notices, disposes the session, and the
            # next checkout gets a fresh one.
            plan = FaultPlan(seed=7).inject(
                "pool.checkin",
                corrupt=lambda s: (s._sock.close() or s),
                times=1,
            )
            with plan.armed():
                conn.close()
            assert victim.closed  # probe caught the dead link
            conn2 = pool.checkout()
            assert conn2.session is not victim
            conn2.create_statement().execute_update(
                "create table ok (n int)"
            )
            conn2.close()
        finally:
            srv.stop_background()

    def test_max_age_recycles_remote_sessions(self):
        srv = ReproServer().start_background()
        try:
            url = url_of(srv, "aged")
            pool = repro.DriverManager.get_pool(
                url, max_size=2, max_age=0.05
            )
            conn = pool.checkout()
            old = conn.session
            conn.close()
            time.sleep(0.1)
            conn2 = pool.checkout()
            assert conn2.session is not old
            assert old.closed  # retired session was closed, not leaked
            conn2.close()
        finally:
            srv.stop_background()

    def test_handshake_timeout_is_bounded(self):
        # A server that accepts the TCP dial but never answers HELLO
        # must fail the handshake within the connect timeout instead of
        # blocking forever on an unbounded read.
        from repro.dbapi.remote import RemoteSession

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        try:
            started = time.monotonic()
            with pytest.raises(errors.ConnectionError_):
                RemoteSession(
                    "127.0.0.1", port, "db", connect_timeout=0.5
                )
            assert time.monotonic() - started < 5
        finally:
            listener.close()

    def test_health_probe_runs_outside_pool_lock(self):
        # A hung health probe must slow only its own checkout; other
        # pool operations (here: stats(), which takes the pool lock)
        # keep working while the probe is stuck.
        srv = ReproServer().start_background()
        try:
            pool = repro.DriverManager.get_pool(
                url_of(srv, "nolock"), max_size=2
            )
            conn = pool.checkout()
            victim = conn.session
            conn.close()  # one idle session
            release = threading.Event()

            def stuck_ping(timeout=None):
                release.wait(10)
                return False

            victim.ping = stuck_ping
            picked = {}

            def blocked_checkout():
                c = pool.checkout(timeout=15)
                picked["session"] = c.session
                c.close()

            worker = threading.Thread(target=blocked_checkout)
            worker.start()
            time.sleep(0.3)  # worker is now inside the stuck probe
            started = time.monotonic()
            stats = pool.stats()
            assert time.monotonic() - started < 1.0
            assert stats["in_use"] == 1  # the probing slot is reserved
            release.set()
            worker.join(timeout=30)
            assert picked["session"] is not victim  # probe said dead
            pool.close()
        finally:
            srv.stop_background()


# ---------------------------------------------------------------------------
# protocol-level hygiene
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_handshake_rejects_bad_magic_and_version(self, server):
        for hello in (
            {"magic": "wrong", "version": protocol.PROTOCOL_VERSION},
            {"magic": protocol.MAGIC, "version": 999},
        ):
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                protocol.send_frame(
                    sock, protocol.MSG_HELLO, dict(hello, database="x")
                )
                msg_type, payload = protocol.recv_frame(sock)
                assert msg_type == protocol.MSG_ERROR
                error = protocol.rebuild_error(payload)
                assert error.sqlstate == "08P01"

    def test_oversized_frame_announcement_rejected(self):
        header = (protocol.MAX_FRAME + 1).to_bytes(4, "little") + b"\x01"
        with pytest.raises(errors.ProtocolError):
            protocol.parse_header(header)

    def test_error_rebuild_unknown_class_degrades(self):
        error = protocol.rebuild_error(
            {"error": "SomeFutureError", "sqlstate": "58000",
             "message": "m", "vendor_code": 3}
        )
        assert isinstance(error, errors.SQLException)
        assert error.sqlstate == "58000"
        assert error.vendor_code == 3


# ---------------------------------------------------------------------------
# wire safety: the payload encoding is data-only
# ---------------------------------------------------------------------------


class TestWireSafety:
    """Frames carry data, never code.

    Protocol v1 pickled payloads, which handed arbitrary code execution
    to any peer that could reach the socket — before the auth token was
    even looked at.  v2's typed encoding can only decode into plain SQL
    data values; these tests pin that property.
    """

    def test_typed_encoding_roundtrips_sql_data(self):
        import datetime
        import decimal

        payload = {
            "none": None, "flag": True, "off": False,
            "int": -42, "big": 2 ** 90, "float": 2.5,
            "text": "héllo", "blob": b"\x00\xff",
            "dec": decimal.Decimal("12.34"),
            "date": datetime.date(1999, 12, 31),
            "time": datetime.time(23, 59, 58),
            "ts": datetime.datetime(2000, 1, 1, 12, 30, 45, 123456),
            "list": [1, [2, None]], "tuple": (1, "a"),
        }
        frame = protocol.encode_frame(protocol.MSG_RESULT, payload)
        decoded = protocol.decode_payload(frame[protocol.HEADER_SIZE:])
        assert decoded == payload
        assert isinstance(decoded["tuple"], tuple)
        assert isinstance(decoded["dec"], decimal.Decimal)
        assert decoded["big"] == 2 ** 90

    def test_arbitrary_objects_cannot_cross(self):
        with pytest.raises(errors.ProtocolError):
            protocol.encode_frame(protocol.MSG_RESULT, {"x": object()})

    def test_pickle_payload_is_garbage_not_code(self):
        import pickle

        body = pickle.dumps({"magic": protocol.MAGIC})
        with pytest.raises(errors.ProtocolError):
            protocol.decode_payload(body)

    def test_malicious_hello_does_not_execute_preauth(self, server, tmp_path):
        # A pickle bomb in place of HELLO must be rejected as garbage
        # without any side effect — even though no token was presented.
        import os
        import pickle

        marker = tmp_path / "owned"

        class Evil:
            def __reduce__(self):
                return (os.mkdir, (str(marker),))

        body = pickle.dumps(Evil())
        frame = (
            len(body).to_bytes(4, "little")
            + bytes([protocol.MSG_HELLO])
            + body
        )
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=10
        ) as sock:
            sock.sendall(frame)
            sock.settimeout(10)
            assert sock.recv(1024) == b""  # dropped, no code ran
        assert not marker.exists()


# ---------------------------------------------------------------------------
# cursor hygiene: abandoned paged results must not pin rows server-side
# ---------------------------------------------------------------------------


class TestCursorHygiene:
    def test_resultset_close_releases_server_cursor(self, server):
        with repro.connect(url_of(server, "curclose")) as conn:
            st = conn.create_statement()
            st.execute_update("create table big (n int)")
            ps = conn.prepare_statement("insert into big values (?)")
            for i in range(60):
                ps.set_int(1, i)
                ps.execute_update()
            rs = st.execute_query("select n from big order by n")
            assert rs.next()
            rows = rs.to_statement_result().rows
            cursor_id = rows._cursor
            assert cursor_id is not None  # 60 rows > page_size 16
            rs.close()  # sends CLOSE_CURSOR for the unread remainder
            assert rows._cursor is None
            with pytest.raises(errors.InvalidCursorStateError):
                conn.session._fetch_page(cursor_id)

    def test_abandoned_cursors_are_lru_capped(self):
        srv = ReproServer(page_size=4, max_cursors=2).start_background()
        try:
            with repro.connect(url_of(srv, "lru")) as conn:
                st = conn.create_statement()
                st.execute_update("create table t (n int)")
                for i in range(12):
                    st.execute_update(f"insert into t values ({i})")
                results = [
                    conn.session.execute("select n from t order by n")
                    for _ in range(3)
                ]
                # three live cursors > max_cursors=2: the oldest was
                # evicted server-side, the newer two still page fine
                with pytest.raises(errors.InvalidCursorStateError):
                    list(results[0].rows)
                assert [r[0] for r in results[2].rows] == list(range(12))
                assert [r[0] for r in results[1].rows] == list(range(12))
        finally:
            srv.stop_background()


# ---------------------------------------------------------------------------
# SQLJ runtime over the wire (location transparency)
# ---------------------------------------------------------------------------


class TestConnectionContextRemote:
    def test_context_and_pooled_context(self, server):
        url = url_of(server, "ctx")
        with repro.connect(url) as conn:
            conn.create_statement().execute_update(
                "create table people (name varchar(50), year int)"
            )
            conn.create_statement().execute_update(
                "insert into people values ('Ada', 1815), ('Alan', 1912)"
            )
        with ConnectionContext(url) as ctx:
            result = ctx.session.execute(
                "select name from people order by year"
            )
            assert list(result.rows) == [["Ada"], ["Alan"]]
        with ConnectionContext(url, pooled=True) as ctx:
            assert ctx.session.ping()

    def test_observability_counters_flow(self, server):
        with repro.connect(url_of(server, "obs")) as conn:
            conn.create_statement().execute_update(
                "create table t (n int)"
            )
            conn.create_statement().execute_update(
                "insert into t values (1)"
            )
        counters = repro.observability.snapshot()["counters"]
        assert counters.get("server.connections", 0) >= 1
        assert counters.get("server.requests", 0) >= 2
        assert counters.get("remote.executions", 0) >= 2
        assert counters.get("remote.connects", 0) >= 1

    def test_trace_propagation_across_the_wire(self, server):
        import io
        import json

        from repro.observability import tracing

        with repro.connect(url_of(server, "traced")) as conn:
            conn.create_statement().execute_update(
                "create table t (n int)"
            )
            buffer = io.StringIO()
            tracing.enable_tracing("json", stream=buffer)
            try:
                conn.create_statement().execute_update(
                    "insert into t values (1)"
                )
            finally:
                tracing.disable_tracing()
        spans = [json.loads(line) for line in buffer.getvalue().splitlines()]
        names = {span["name"] for span in spans}
        # both halves of the wire appear in one trace stream: the client
        # span and the server-side execution span it propagated to
        assert "remote.execute" in names
        assert "server.execute" in names


# ---------------------------------------------------------------------------
# differential: remote vs local must be indistinguishable
# ---------------------------------------------------------------------------


class TestDifferential:
    def test_workload_identical_remote_and_local(self, server):
        generator = WorkloadGenerator(seed=11)
        statements = (
            [generator.ddl()]
            + generator.seed_statements(20)
            + generator.statements(120)
        )
        local = repro.connect("pydbc:standard:wl_local", durable=False)
        remote = repro.connect(url_of(server, "wl_remote"))
        try:
            for sql in statements:
                local_outcome = self._apply(local, sql)
                remote_outcome = self._apply(remote, sql)
                assert local_outcome == remote_outcome, sql
        finally:
            local.close()
            remote.close()

    @staticmethod
    def _apply(conn, sql):
        try:
            result = conn.session.execute(sql, ())
        except errors.ReproError as exc:
            return ("error", exc.sqlstate)
        if result.is_rowset:
            key = lambda row: tuple((v is None, v) for v in row)
            return ("rows", sorted(map(tuple, result.rows), key=key))
        return ("update", result.update_count)


# ---------------------------------------------------------------------------
# acceptance: second process runs the TUTORIAL §2 example over repro://
# ---------------------------------------------------------------------------


TUTORIAL_SECTION_2_PROGRAM = """
#sql iterator ByPos (str, int);
#sql public iterator ByName (int year, str name);
#sql context Department;

def load(n):
    #sql { INSERT INTO emp VALUES (:n) };
    pass

def scan():
    positer: ByPos
    #sql positer = { SELECT name, year FROM people };
    name = None; year = 0
    out = []
    while True:
        #sql { FETCH :positer INTO :name, :year };
        if positer.endfetch():
            break
        out.append((name, year))
    positer.close()
    return out
"""

CLIENT_SCRIPT = """
import sys
sys.path.insert(0, {build_dir!r})

import repro
from repro import ConnectionContext, errors
from repro.testing import FaultPlan

url = "repro://127.0.0.1:{port}/tutorial"
conn = repro.connect(url)
stmt = conn.create_statement()
stmt.execute_update("create table emp (n int)")
stmt.execute_update(
    "create table people (name varchar(50), year int)")
stmt.execute_update(
    "insert into people values ('Ada', 1815), ('Alan', 1912)")

ConnectionContext.set_default_context(ConnectionContext(conn))
import tutorial_app

tutorial_app.load(41)
tutorial_app.load(42)
print("scan:", sorted(tutorial_app.scan()))
rs = stmt.execute_query("select count(*) from emp")
rs.next(); print("emp:", rs.get_int(1))

plan = FaultPlan(seed=9).inject(
    "net.write", corrupt=lambda data: data[:6], times=1)
with plan.armed():
    try:
        stmt.execute_query("select * from people")
        print("fault: MISSED")
    except errors.ConnectionError_ as exc:
        print("fault:", exc.sqlstate)
"""


class TestSecondProcessAcceptance:
    def test_tutorial_section2_over_the_wire(self, tmp_path):
        from repro import Database
        from repro.translator import TranslationOptions, Translator

        # Translate the §2 program against a local exemplar schema.
        exemplar = Database(name="exemplar")
        session = exemplar.create_session(autocommit=True)
        session.execute("create table emp (n int)")
        session.execute(
            "create table people (name varchar(50), year int)"
        )
        source = tmp_path / "tutorial_app.psqlj"
        source.write_text(TUTORIAL_SECTION_2_PROGRAM)
        build_dir = tmp_path / "build"
        Translator(TranslationOptions(exemplar=exemplar)).translate_file(
            str(source), output_dir=str(build_dir)
        )

        # Server: its own process, via the CLI.
        server_proc = subprocess.Popen(
            [sys.executable, "-m", "repro.server", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=_subprocess_env(),
        )
        try:
            banner = server_proc.stdout.readline()
            assert "listening on" in banner, banner
            port = int(banner.rsplit(":", 1)[1])

            # Client: a third process, connecting over TCP.
            script = textwrap.dedent(
                CLIENT_SCRIPT.format(build_dir=str(build_dir), port=port)
            )
            completed = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                timeout=120,
                env=_subprocess_env(),
            )
            assert completed.returncode == 0, completed.stderr
            lines = completed.stdout.strip().splitlines()
            assert lines[0] == "scan: [('Ada', 1815), ('Alan', 1912)]"
            assert lines[1] == "emp: 2"
            assert lines[2] == "fault: 08006"
        finally:
            server_proc.terminate()
            server_proc.wait(timeout=30)


def _subprocess_env():
    import os

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env
