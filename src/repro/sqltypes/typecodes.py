"""Generic SQL type codes, mirroring ``java.sql.Types``.

The paper's JDBC 2.0 section introduces new codes for the SQLJ features:
``JAVA_OBJECT`` (a class stored by value — here :data:`PY_OBJECT`),
``STRUCT``, ``BLOB``, ``CLOB``, ``ARRAY``, ``REF`` and ``DISTINCT``.  The
numeric values follow the JDBC constants so that readers of the paper can
map them one-to-one.
"""

from __future__ import annotations

from typing import Dict

BIT = -7
TINYINT = -6
SMALLINT = 5
INTEGER = 4
BIGINT = -5
FLOAT = 6
REAL = 7
DOUBLE = 8
NUMERIC = 2
DECIMAL = 3
CHAR = 1
VARCHAR = 12
LONGVARCHAR = -1
DATE = 91
TIME = 92
TIMESTAMP = 93
BINARY = -2
VARBINARY = -3
LONGVARBINARY = -4
NULL = 0
OTHER = 1111
BOOLEAN = 16

# JDBC 2.0 additions highlighted by the paper
BLOB = 2004
CLOB = 2005
ARRAY = 2003
REF = 2006
STRUCT = 2002
DISTINCT = 2001
#: The paper's ``JAVA_OBJECT``: a host-language class stored by value.
PY_OBJECT = 2000
#: Alias preserving the paper's name.
JAVA_OBJECT = PY_OBJECT

_NAMES: Dict[int, str] = {
    BIT: "BIT",
    TINYINT: "TINYINT",
    SMALLINT: "SMALLINT",
    INTEGER: "INTEGER",
    BIGINT: "BIGINT",
    FLOAT: "FLOAT",
    REAL: "REAL",
    DOUBLE: "DOUBLE",
    NUMERIC: "NUMERIC",
    DECIMAL: "DECIMAL",
    CHAR: "CHAR",
    VARCHAR: "VARCHAR",
    LONGVARCHAR: "LONGVARCHAR",
    DATE: "DATE",
    TIME: "TIME",
    TIMESTAMP: "TIMESTAMP",
    BINARY: "BINARY",
    VARBINARY: "VARBINARY",
    LONGVARBINARY: "LONGVARBINARY",
    NULL: "NULL",
    OTHER: "OTHER",
    BOOLEAN: "BOOLEAN",
    BLOB: "BLOB",
    CLOB: "CLOB",
    ARRAY: "ARRAY",
    REF: "REF",
    STRUCT: "STRUCT",
    DISTINCT: "DISTINCT",
    PY_OBJECT: "PY_OBJECT",
}


def type_code_name(code: int) -> str:
    """Return the symbolic name of a type code (``"INTEGER"`` for 4)."""
    return _NAMES.get(code, f"UNKNOWN({code})")


def is_numeric(code: int) -> bool:
    """True for codes whose values participate in SQL arithmetic."""
    return code in (
        TINYINT,
        SMALLINT,
        INTEGER,
        BIGINT,
        FLOAT,
        REAL,
        DOUBLE,
        NUMERIC,
        DECIMAL,
    )


def is_character(code: int) -> bool:
    """True for character-string type codes."""
    return code in (CHAR, VARCHAR, LONGVARCHAR, CLOB)
