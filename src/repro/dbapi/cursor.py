"""A minimal DB-API 2.0 (PEP 249) cursor over the JDBC-shaped driver.

The paper's API surface is JDBC (``Statement`` / ``PreparedStatement``
/ ``ResultSet``), but Python callers — and differential tests against
:mod:`sqlite3` — expect ``connection.cursor()`` with ``execute`` /
``executemany`` / ``fetchall``.  :class:`Cursor` provides exactly that
over the same engine or remote session, with ``qmark`` parameter style
(the engine's native ``?`` markers).

``executemany`` is the bulk-load entry point: the whole parameter-row
sequence goes through ``session.execute_batch`` as one atomic batch —
one parse, one transaction, one logical WAL record and fsync barrier,
and over ``repro://`` one round trip — instead of a Python-level loop
of single executes.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro import errors
from repro.dbapi.statement import strip_call_escape

__all__ = ["Cursor"]

#: PEP 249 module-level attributes, re-exported by ``repro.dbapi``.
paramstyle = "qmark"
apilevel = "2.0"


class Cursor:
    """One statement execution context, PEP 249 style.

    Obtained from :meth:`repro.dbapi.connection.Connection.cursor`.
    Transaction control stays on the connection (``commit`` /
    ``rollback``), as the DB-API specifies.
    """

    arraysize = 1

    def __init__(self, connection: Any) -> None:
        self.connection = connection
        self._rows: Optional[Any] = None  # list or RemoteRows
        self._position = 0
        self._description: Optional[List[Tuple]] = None
        self.rowcount = -1
        self._closed = False

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self, sql: str, params: Sequence[Any] = ()
    ) -> "Cursor":
        """Execute one statement; returns the cursor (PEP 249 allows
        chaining ``cur.execute(...).fetchall()``)."""
        self._check_open()
        result = self.connection.session.execute(
            strip_call_escape(sql), list(params)
        )
        if result.is_rowset:
            self._rows = result.rows
            self._description = [
                (name, None, None, None, None, None, None)
                for name in result.column_names()
            ]
            self.rowcount = len(result.rows)
        else:
            self._rows = None
            self._description = None
            self.rowcount = result.update_count
        self._position = 0
        return self

    def executemany(
        self,
        sql: str,
        seq_of_params: Sequence[Sequence[Any]],
    ) -> "Cursor":
        """Execute one DML statement against every parameter row as a
        single atomic batch.

        This is the DB-API face of the engine's bulk fast path: the
        statement is parsed once, all rows commit (or roll back)
        together, durability costs one WAL record and one fsync
        barrier, and a remote session ships everything in one
        ``MSG_EXECUTE_BATCH`` frame.  ``rowcount`` is the total
        affected-row count.  Queries are rejected, as the DB-API
        specifies.
        """
        self._check_open()
        counts = self.connection.session.execute_batch(
            sql, [list(params) for params in seq_of_params]
        )
        self._rows = None
        self._description = None
        self._position = 0
        self.rowcount = sum(counts)
        return self

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def description(self) -> Optional[List[Tuple]]:
        return self._description

    def _check_rowset(self) -> Any:
        if self._rows is None:
            raise errors.InvalidCursorStateError(
                "no result set; the last statement returned no rows"
            )
        return self._rows

    def fetchone(self) -> Optional[Tuple]:
        rows = self._check_rowset()
        if self._position >= len(rows):
            return None
        row = rows[self._position]
        self._position += 1
        return tuple(row)

    def fetchmany(self, size: Optional[int] = None) -> List[Tuple]:
        rows = self._check_rowset()
        if size is None:
            size = self.arraysize
        page = [
            tuple(rows[index])
            for index in range(
                self._position, min(self._position + size, len(rows))
            )
        ]
        self._position += len(page)
        return page

    def fetchall(self) -> List[Tuple]:
        rows = self._check_rowset()
        page = [
            tuple(rows[index])
            for index in range(self._position, len(rows))
        ]
        self._position = len(rows)
        return page

    def __iter__(self) -> Iterator[Tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # ------------------------------------------------------------------
    # lifecycle / no-ops the DB-API requires
    # ------------------------------------------------------------------
    def setinputsizes(self, sizes: Any) -> None:
        pass

    def setoutputsize(self, size: Any, column: Any = None) -> None:
        pass

    def close(self) -> None:
        self._rows = None
        self._closed = True

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise errors.InvalidCursorStateError("cursor is closed")
        self.connection._check_open()
