"""Session-scoped state for external routines.

The paper (Part 1 technical objectives): "Initially support persistence
only for duration of a call.  Consider session and database persistence
as follow-on."  This module implements the *session* follow-on: a routine
body can obtain a dict that lives as long as the invoking session, so
repeated calls within one connection can share state — without touching
any global.

Usage inside a routine body::

    from repro.procedures.state import session_state

    def counter():
        state = session_state()
        state["calls"] = state.get("calls", 0) + 1
        return state["calls"]

Call-duration persistence is the default (locals); database persistence
is provided by :mod:`repro.engine.persistence`.
"""

from __future__ import annotations

import threading
from typing import Any, Dict

from repro.procedures.invocation import default_connection_session

__all__ = ["session_state", "call_state"]

# Guards lazy creation of the per-session state dicts: two threads
# sharing one (pooled) session must not each install a fresh dict and
# drop the other's writes.
_CREATION_LOCK = threading.Lock()


def session_state() -> Dict[str, Any]:
    """State dict scoped to the invoking session.

    Only callable from inside an external routine invocation; the dict is
    created on first use and lives until the session closes.
    """
    session = default_connection_session()
    state = getattr(session, "_routine_session_state", None)
    if state is None:
        with _CREATION_LOCK:
            state = getattr(session, "_routine_session_state", None)
            if state is None:
                state = {}
                session._routine_session_state = state
    return state


def call_state() -> Dict[str, Any]:
    """State dict scoped to the *outermost* routine invocation.

    Useful for helpers shared by a routine and the nested routines it
    triggers; discarded when the outermost invocation returns (the
    paper's initial "duration of a call" persistence, made explicit).
    """
    session = default_connection_session()
    state = getattr(session, "_routine_call_state", None)
    if state is None:  # pragma: no cover - guarded by invocation setup
        state = {}
        session._routine_call_state = state
    return state
