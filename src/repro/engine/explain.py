"""EXPLAIN: textual rendering of compiled query plans.

``EXPLAIN <query>`` returns one row per plan line, e.g.::

    Sort (1 key)
      Project
        Filter
          SeqScan on emps

Plans are rule-based and deterministic (see the planner), so EXPLAIN
output is stable enough to assert on in tests.
"""

from __future__ import annotations

from typing import List

from repro.engine.executor import (
    Distinct,
    Filter,
    GroupAggregate,
    Limit,
    NestedLoopJoin,
    Operator,
    Project,
    SeqScan,
    SingleRow,
    Sort,
    UnionOp,
)

__all__ = ["describe_operator", "format_plan"]


def describe_operator(operator: Operator) -> str:
    """One-line description of a single operator."""
    if isinstance(operator, SeqScan):
        return f"SeqScan on {operator.table.name}"
    if isinstance(operator, SingleRow):
        return "Result (no table)"
    if isinstance(operator, Filter):
        return "Filter"
    if isinstance(operator, Project):
        return f"Project ({len(operator.items)} columns)"
    if isinstance(operator, NestedLoopJoin):
        return f"NestedLoopJoin ({operator.kind})"
    if isinstance(operator, Sort):
        keys = len(operator.keys)
        return f"Sort ({keys} key{'s' if keys != 1 else ''})"
    if isinstance(operator, Limit):
        return "Limit"
    if isinstance(operator, Distinct):
        return "Distinct"
    if isinstance(operator, GroupAggregate):
        return (
            f"GroupAggregate ({len(operator.keys)} group keys, "
            f"{len(operator.aggregates)} aggregates)"
        )
    if isinstance(operator, UnionOp):
        label = operator.op.capitalize()
        return f"{label} ALL" if operator.all_rows else label
    return type(operator).__name__


def _children(operator: Operator) -> List[Operator]:
    if isinstance(operator, (UnionOp, NestedLoopJoin)):
        return [operator.left, operator.right]
    child = getattr(operator, "child", None)
    return [child] if child is not None else []


def format_plan(operator: Operator, indent: int = 0) -> List[str]:
    """Render the operator tree as indented lines, root first."""
    lines = ["  " * indent + describe_operator(operator)]
    for child in _children(operator):
        lines.extend(format_plan(child, indent + 1))
    return lines
