"""E4 — "Binary portability across different database systems"
(paper slides 6 and 10).

One profile, translated once against the standard dialect, is customized
for three simulated vendors (standard / acme / zenith — differing in
row-limit syntax and string concatenation).  We verify:

* the *uncustomized* binary only runs on SQL-compatible engines (the
  default JDBC-style path ships raw SQL text),
* after customization the same binary produces identical results on all
  three engines,
* customization is a one-time deployment cost, amortised across
  executions (measured by the benchmark group).
"""

import pytest

from benchmarks.common import fresh_name, make_emps_db, report
from repro import errors
from repro.profiles.customization import ConnectedProfile
from repro.profiles.customizer import customize_profile
from repro.profiles.model import EntryInfo, Profile

#: A query exercising both dialect divergences: LIMIT and ``||``.
PORTABLE_SQL = (
    "SELECT name || '-' || id AS tag, sales FROM emps "
    "WHERE sales > ? ORDER BY sales DESC, name LIMIT 5"
)

DIALECTS = ("standard", "acme", "zenith")


def make_profile():
    profile = Profile(name=fresh_name("e4"), context_type="Default")
    profile.data.add(EntryInfo(index=0, sql=PORTABLE_SQL, role="QUERY"))
    return profile


def engines(rows=500):
    for dialect in DIALECTS:
        yield dialect, make_emps_db(rows, dialect=dialect)


class TestPortabilityShape:
    def test_uncustomized_binary_is_not_portable(self):
        profile = make_profile()
        outcomes = {}
        for dialect, (_db, session) in engines(50):
            connected = ConnectedProfile(profile, session)
            try:
                connected.execute(0, [1])
                outcomes[dialect] = "ok"
            except errors.SQLException:
                outcomes[dialect] = "FAILS"
        # Standard SQL text runs only where the grammar matches.
        assert outcomes["standard"] == "ok"
        assert outcomes["acme"] == "FAILS"  # no ||, no LIMIT
        assert outcomes["zenith"] == "FAILS"  # no LIMIT
        report(
            "E4: uncustomized binary per vendor",
            [(d, o) for d, o in outcomes.items()],
            ("dialect", "outcome"),
        )

    def test_customized_binary_runs_identically_everywhere(self):
        profile = make_profile()
        for dialect in DIALECTS:
            customize_profile(profile, dialect)
        results = {}
        for dialect, (_db, session) in engines(500):
            connected = ConnectedProfile(profile, session)
            results[dialect] = connected.execute(0, [1]).rows
        assert results["standard"] == results["acme"] == \
            results["zenith"]
        assert len(results["standard"]) == 5

    def test_customization_records_vendor_sql(self):
        profile = make_profile()
        for dialect in DIALECTS:
            customize_profile(profile, dialect)
        texts = {
            c.dialect_name: c.sql_texts[0]
            for c in profile.customizations
        }
        assert "LIMIT 5" in texts["standard"]
        assert "TOP 5" in texts["acme"] and "+" in texts["acme"]
        assert "FETCH FIRST 5 ROWS ONLY" in texts["zenith"]
        report(
            "E4: vendor SQL shipped in the profile",
            [(d, t) for d, t in sorted(texts.items())],
            ("dialect", "customized SQL"),
        )

    def test_customizations_accumulate_like_the_slides(self):
        # Installation-phase slides: Customizer1 then Customizer2 add
        # customizations to the same binary.
        profile = make_profile()
        customize_profile(profile, "acme")
        assert len(profile.customizations) == 1
        customize_profile(profile, "zenith")
        assert len(profile.customizations) == 2
        customize_profile(profile, "acme")  # re-run replaces, not dups
        assert len(profile.customizations) == 2


@pytest.mark.benchmark(group="e4-customize")
def test_customization_cost(benchmark):
    def customize():
        profile = make_profile()
        for dialect in DIALECTS:
            customize_profile(profile, dialect)
        return profile

    profile = benchmark(customize)
    assert len(profile.customizations) == 3


@pytest.fixture(scope="module", params=DIALECTS)
def customized_engine(request):
    dialect = request.param
    profile = make_profile()
    for d in DIALECTS:
        customize_profile(profile, d)
    database, session = make_emps_db(500, dialect=dialect)
    connected = ConnectedProfile(profile, session)
    return dialect, connected


@pytest.mark.benchmark(group="e4-execute")
def test_customized_execution_per_dialect(benchmark, customized_engine):
    dialect, connected = customized_engine
    result = benchmark(connected.execute, 0, [1])
    assert len(result.rows) == 5
