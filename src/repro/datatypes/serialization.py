"""Object serialization for Part 2 values.

The paper requires stored classes to implement ``java.io.Serializable``;
the Python analogue is picklability.  These helpers are used by the dbapi
layer for objects-by-value transport and by the E8 benchmark's
BLOB-mapping baseline (the approach Part 2 makes unnecessary).
"""

from __future__ import annotations

import pickle
from typing import Any

from repro import errors

__all__ = ["serialize_object", "deserialize_object"]


def serialize_object(obj: Any) -> bytes:
    """Serialise a UDT instance to bytes."""
    try:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise errors.DataError(
            f"object of class {type(obj).__name__!r} is not serialisable: "
            f"{exc}"
        ) from exc


def deserialize_object(payload: bytes) -> Any:
    """Reconstruct a UDT instance from bytes."""
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise errors.DataError(
            f"cannot deserialise object payload: {exc}"
        ) from exc
