"""Per-statement statistics: a ``pg_stat_statements`` for the engine.

The collector keys on the *normalized* statement text — literals
replaced by ``?`` so ``INSERT INTO t VALUES (1)`` and
``INSERT INTO t VALUES (2)`` share one row — and accumulates, per key:

* calls, errors (total and by SQLSTATE),
* total wall time plus a ring of recent samples for mean/p99,
* rows returned and rows scanned,
* plan-cache hits,
* wait time attributed to the database reader-writer lock (shared vs
  exclusive acquisition) and to the WAL fsync/group-commit barrier.

Attribution works through one persistent per-thread
:class:`StatementContext` accumulator: the engine brackets each
statement with :func:`begin` / :meth:`StatementStats.record` (or
:func:`abandon` on an unrecorded unwind), and the wait hooks
(:func:`note_lock_wait`, :func:`note_wal_wait`, :func:`note_scan`)
charge the accumulator of the thread that paid the wait.  Nested
statements (a routine body executing SQL inside a CALL) spill the
outer statement's accrued waits on entry and restore them on exit, so
waits land on the innermost statement that paid them while the
fast path — no nesting, no waits — allocates nothing and moves no
data.  The same hooks also feed the process-wide metrics registry
(``waits.lock.shared`` / ``waits.lock.exclusive`` / ``waits.wal.sync``
histograms), so wait totals are visible even with no statement active
(e.g. ``Session.commit()`` called directly).

Collection is on by default; set ``REPRO_STATEMENT_STATS=0`` to turn
every hook into a no-op.  The fast path is deliberately cheap — the
lock-wait hooks only run on the *blocked* path, and the per-statement
cost (two clock reads, a depth bump on the reused thread-local
accumulator, one locked accumulate keyed by raw statement text) is
covered by the <5% overhead guard in ``benchmarks/common.py``.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from typing import Any, Dict, List, Optional

from repro.observability import metrics as _metrics

__all__ = [
    "StatementContext",
    "StatementStats",
    "normalize_statement",
    "wait_breakdown",
    "begin",
    "abandon",
    "active",
    "note_lock_wait",
    "note_wal_wait",
    "note_scan",
    "stats_enabled",
    "set_enabled",
    "ENV_VAR",
]

ENV_VAR = "REPRO_STATEMENT_STATS"

#: Module-level gate, read by the engine before every push.  Mutable at
#: runtime through :func:`set_enabled` (tests, benchmarks).
enabled = os.environ.get(ENV_VAR, "1").strip().lower() not in (
    "0", "false", "off",
)

#: Recent per-statement durations kept for the p99 estimate.
RECENT_SAMPLES = 128

#: Maximum distinct normalized statements tracked per database.  On
#: overflow the least-called entry is evicted (pg_stat_statements'
#: ``deallocation`` policy) and ``stats.evictions`` counts it.
DEFAULT_CAPACITY = 500

_WAIT_SHARED = _metrics.registry.histogram("waits.lock.shared")
_WAIT_EXCLUSIVE = _metrics.registry.histogram("waits.lock.exclusive")
_WAIT_WAL = _metrics.registry.histogram("waits.wal.sync")
_EVICTIONS = _metrics.registry.counter("stats.evictions")


def stats_enabled() -> bool:
    return enabled


def set_enabled(value: bool) -> None:
    """Flip statement-stats collection process-wide (tests/benchmarks)."""
    global enabled
    enabled = bool(value)


# ---------------------------------------------------------------------------
# per-thread attribution context
# ---------------------------------------------------------------------------


#: Index layout of a :class:`StatementContext` (a ``list`` subclass —
#: hot writers use the indexes; the named properties below serve the
#: cold readers).  The first six slots are the wait/scan accumulators;
#: the last three are the bracket bookkeeping.
_SHARED_WAIT = 0
_EXCLUSIVE_WAIT = 1
_WAL_WAIT = 2
_SHARED_WAITS = 3
_EXCLUSIVE_WAITS = 4
_ROWS_SCANNED = 5
_DIRTY = 6
_DEPTH = 7
_SPILL = 8

_NEW_STATE = (0.0, 0.0, 0.0, 0, 0, 0, 0, 0, None)

#: The per-thread accumulator charging waits and scans to the thread's
#: innermost statement — a *plain* nine-slot list (see the index
#: constants above).  Plain deliberately: a ``list`` subclass would
#: defeat CPython's exact-list subscript specialization, and the hot
#: path indexes this object several times per statement.  One instance
#: lives per thread, forever, and is reused across statements:
#: :func:`begin` bumps the ``_DEPTH`` slot,
#: :meth:`StatementStats.record` (or :func:`abandon`) consumes the
#: accumulated slots and decrements it, so the fast path allocates
#: nothing.  ``_DIRTY`` marks that a wait hook fired since the last
#: consume: the fast path (no waits, no scans) tests one slot instead
#: of six.  Nesting (a CALL statement's routine body running its own
#: SQL) spills the outer statement's accrued-but-unconsumed slots to
#: the ``_SPILL`` list on :func:`begin` and restores them when the
#: depth returns, so the innermost statement never steals an outer
#: statement's waits.  Cold readers (the slow-query log) go through
#: :func:`wait_breakdown`, which is only meaningful *inside* the
#: bracket, before the consume.
StatementContext = list


def wait_breakdown(context: StatementContext) -> dict:
    """The in-flight statement's waits (ms) and scan count, for cold
    readers like the slow-query log.  Read before the consume in
    :meth:`StatementStats.record` resets the accumulator."""
    return {
        "lock_shared_ms": context[_SHARED_WAIT] * 1000.0,
        "lock_exclusive_ms": context[_EXCLUSIVE_WAIT] * 1000.0,
        "wal_sync_ms": context[_WAL_WAIT] * 1000.0,
        "rows_scanned": context[_ROWS_SCANNED],
    }


_local = threading.local()


def begin() -> StatementContext:
    """Open the statement bracket for this thread; returns its context."""
    try:
        state = _local.state
    except AttributeError:
        state = _local.state = list(_NEW_STATE)
    if state[_DIRTY]:
        # An enclosing statement accrued waits before we started (a
        # CALL that blocked on the write lock, then ran its body): set
        # them aside so this inner statement consumes only its own.
        spill = state[_SPILL]
        if spill is None:
            spill = state[_SPILL] = []
        spill.append((
            state[_DEPTH],
            state[_SHARED_WAIT],
            state[_EXCLUSIVE_WAIT],
            state[_WAL_WAIT],
            state[_SHARED_WAITS],
            state[_EXCLUSIVE_WAITS],
            state[_ROWS_SCANNED],
        ))
        _reset(state)
    state[_DEPTH] += 1
    return state


def _reset(state: StatementContext) -> None:
    state[_SHARED_WAIT] = state[_EXCLUSIVE_WAIT] = 0.0
    state[_WAL_WAIT] = 0.0
    state[_SHARED_WAITS] = state[_EXCLUSIVE_WAITS] = 0
    state[_ROWS_SCANNED] = 0
    state[_DIRTY] = 0


def _close(state: StatementContext) -> None:
    """Depth bookkeeping shared by the consume paths; restores any
    spilled outer-statement accruals once their depth is current again."""
    depth = state[_DEPTH] - 1
    if depth < 0:  # tolerate a mispaired exit, like the tracer does
        depth = 0
    state[_DEPTH] = depth
    spill = state[_SPILL]
    if spill and spill[-1][0] == depth:
        _restore(state, spill, depth)


def _restore(state: StatementContext, spill: list, depth: int) -> None:
    """Merge the spill entry for ``depth`` back into the accumulator:
    the enclosing statement is innermost again and its pre-nesting
    waits are live once more."""
    _, sw, ew, ww, swc, ewc, rs = spill.pop()
    state[_SHARED_WAIT] += sw
    state[_EXCLUSIVE_WAIT] += ew
    state[_WAL_WAIT] += ww
    state[_SHARED_WAITS] += swc
    state[_EXCLUSIVE_WAITS] += ewc
    state[_ROWS_SCANNED] += rs
    state[_DIRTY] = 1


def abandon(state: StatementContext) -> None:
    """Close a bracket without recording (non-SQL exception unwind):
    the statement's accruals are discarded, not misattributed to
    whatever runs next on this thread."""
    if state[_DIRTY]:
        _reset(state)
    _close(state)


def active() -> Optional[StatementContext]:
    """The accumulator charging this thread's statement, if one runs."""
    state = getattr(_local, "state", None)
    if state is not None and state[_DEPTH]:
        return state
    return None


# ---------------------------------------------------------------------------
# wait hooks (called from engine.locks / engine.durability / executor)
# ---------------------------------------------------------------------------


def note_lock_wait(exclusive: bool, seconds: float) -> None:
    """Record a *blocked* reader-writer-lock acquisition.

    Called only when the acquiring thread actually waited; uncontended
    acquisitions never reach here, which is what keeps the fast path
    free of clock reads.
    """
    if exclusive:
        _WAIT_EXCLUSIVE.observe(seconds)
    else:
        _WAIT_SHARED.observe(seconds)
    context = active()
    if context is not None:
        if exclusive:
            context[_EXCLUSIVE_WAIT] += seconds
            context[_EXCLUSIVE_WAITS] += 1
        else:
            context[_SHARED_WAIT] += seconds
            context[_SHARED_WAITS] += 1
        context[_DIRTY] = 1


def note_wal_wait(seconds: float) -> None:
    """Record time spent in the WAL fsync/group-commit barrier."""
    _WAIT_WAL.observe(seconds)
    context = active()
    if context is not None:
        context[_WAL_WAIT] += seconds
        context[_DIRTY] = 1


def note_scan(rows: int) -> None:
    """Charge ``rows`` heap/index reads to the active statement."""
    context = active()
    if context is not None:
        context[_ROWS_SCANNED] += rows
        context[_DIRTY] = 1


# ---------------------------------------------------------------------------
# statement normalization
# ---------------------------------------------------------------------------

_NORMALIZE_CACHE: Dict[str, str] = {}
_NORMALIZE_CACHE_LIMIT = 1024


def normalize_statement(sql: str) -> str:
    """Literals → ``?`` so parameter values do not explode the key space.

    Lexer-based, so string contents containing digits or quotes are
    handled exactly; an unlexable statement falls back to its raw text
    (it will fail to parse anyway, and the error should still be
    attributable).  Results are memoized by raw text, which also makes
    the per-execution cost of a repeated statement one dict hit.
    """
    cached = _NORMALIZE_CACHE.get(sql)
    if cached is not None:
        return cached
    from repro.engine.lexer import tokenize

    try:
        parts: List[str] = []
        for token in tokenize(sql):
            if token.kind == token.EOF:
                break
            if token.kind in (token.NUMBER, token.STRING):
                parts.append("?")
            elif token.value == "." and parts:
                # Keep qualified names (repro_stats.statements) intact.
                parts[-1] += "."
            elif parts and parts[-1].endswith("."):
                parts[-1] += token.value
            else:
                parts.append(token.value)
        normalized = " ".join(parts)
    except Exception:
        normalized = sql.strip()
    if len(_NORMALIZE_CACHE) >= _NORMALIZE_CACHE_LIMIT:
        _NORMALIZE_CACHE.clear()
    _NORMALIZE_CACHE[sql] = normalized
    return normalized


# ---------------------------------------------------------------------------
# the collector
# ---------------------------------------------------------------------------


class _Entry:
    __slots__ = (
        "key",
        "calls",
        "errors",
        "error_states",
        "total_seconds",
        "recent",
        "rows_returned",
        "rows_scanned",
        "plan_cache_hits",
        "shared_wait",
        "exclusive_wait",
        "wal_wait",
        "shared_waits",
        "exclusive_waits",
    )

    def __init__(self, key: str) -> None:
        self.key = key
        self.calls = 0
        self.errors = 0
        self.error_states: Dict[str, int] = {}
        self.total_seconds = 0.0
        self.recent: deque = deque(maxlen=RECENT_SAMPLES)
        self.rows_returned = 0
        self.rows_scanned = 0
        self.plan_cache_hits = 0
        self.shared_wait = 0.0
        self.exclusive_wait = 0.0
        self.wal_wait = 0.0
        self.shared_waits = 0
        self.exclusive_waits = 0


def _p99(samples: deque) -> Optional[float]:
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(len(ordered) * 0.99))
    return ordered[index]


class StatementStats:
    """One database's accumulated per-statement statistics."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: Dict[str, _Entry] = {}
        # Raw-text → entry aliases, so a repeated statement resolves
        # its entry with ONE dict probe instead of two (normalize memo,
        # then entries-by-key).  Purely a memo: cleared wholesale at
        # the same limit as the normalize cache, rebuilt on demand, and
        # purged of a victim's aliases when capacity evicts its entry.
        self._by_raw: Dict[str, _Entry] = {}

    def record(
        self,
        sql: str,
        seconds: float,
        rows_returned: int = 0,
        context: Optional[StatementContext] = None,
        error_sqlstate: Optional[str] = None,
        cache_hit: bool = False,
    ) -> str:
        """Fold one finished execution into its entry; returns the key.

        When ``context`` is this thread's accumulator (the engine's
        case) this call also *closes* the statement bracket opened by
        :func:`begin`: the accrued waits are consumed into the entry
        and the context is reset for the next statement.
        """
        dirty = context is not None and context[_DIRTY]
        # acquire/release instead of ``with``: the context-manager
        # protocol costs more than the uncontended acquire itself, and
        # this is the per-statement hot path (3.11's zero-cost
        # try/finally keeps the unlock guarantee free).
        self._lock.acquire()
        try:
            entry = self._by_raw.get(sql)
            if entry is None:
                entry = self._entry_for_locked(sql)
            entry.calls += 1
            entry.total_seconds += seconds
            entry.recent.append(seconds)
            if rows_returned:
                entry.rows_returned += rows_returned
            if cache_hit:
                entry.plan_cache_hits += 1
            if error_sqlstate is not None:
                entry.errors += 1
                entry.error_states[error_sqlstate] = (
                    entry.error_states.get(error_sqlstate, 0) + 1
                )
            if dirty:
                # The common statement neither waited nor scanned: one
                # flag test above instead of twelve accumulates here.
                entry.rows_scanned += context[_ROWS_SCANNED]
                entry.shared_wait += context[_SHARED_WAIT]
                entry.exclusive_wait += context[_EXCLUSIVE_WAIT]
                entry.wal_wait += context[_WAL_WAIT]
                entry.shared_waits += context[_SHARED_WAITS]
                entry.exclusive_waits += context[_EXCLUSIVE_WAITS]
        finally:
            self._lock.release()
        if context is not None:
            if dirty:
                _reset(context)
            # _close(), inlined: the call frame is measurable here.
            depth = context[_DEPTH] - 1
            if depth < 0:
                depth = 0
            context[_DEPTH] = depth
            spill = context[_SPILL]
            if spill and spill[-1][0] == depth:
                _restore(context, spill, depth)
        return entry.key

    def _entry_for_locked(self, sql: str) -> _Entry:
        """Cold path of :meth:`record`, under ``self._lock``: normalize,
        find or create the entry, and memoize the raw-text alias."""
        key = normalize_statement(sql)
        entry = self._entries.get(key)
        if entry is None:
            if len(self._entries) >= self.capacity:
                victim = min(
                    self._entries.values(), key=lambda e: e.calls
                )
                del self._entries[victim.key]
                for raw in [
                    raw
                    for raw, aliased in self._by_raw.items()
                    if aliased is victim
                ]:
                    del self._by_raw[raw]
                _EVICTIONS.increment()
            entry = self._entries[key] = _Entry(key)
        if len(self._by_raw) >= _NORMALIZE_CACHE_LIMIT:
            self._by_raw.clear()
        self._by_raw[sql] = entry
        return entry

    def reset(self) -> None:
        with self._lock:
            self._entries.clear()
            self._by_raw.clear()

    # -- view producers ---------------------------------------------------
    def statement_rows(self) -> List[List[Any]]:
        """Rows for ``repro_stats.statements`` (see engine.virtual)."""
        with self._lock:
            entries = list(self._entries.values())
        rows: List[List[Any]] = []
        for entry in entries:
            mean = (
                entry.total_seconds / entry.calls if entry.calls else None
            )
            p99 = _p99(entry.recent)
            rows.append([
                entry.key,
                entry.calls,
                entry.errors,
                ",".join(
                    f"{state}:{count}"
                    for state, count in sorted(entry.error_states.items())
                ) or None,
                entry.total_seconds * 1000.0,
                None if mean is None else mean * 1000.0,
                None if p99 is None else p99 * 1000.0,
                entry.rows_returned,
                entry.rows_scanned,
                entry.plan_cache_hits,
                entry.shared_wait * 1000.0,
                entry.exclusive_wait * 1000.0,
                entry.wal_wait * 1000.0,
            ])
        return rows

    def lock_rows(self) -> List[List[Any]]:
        """Per-statement wait attribution for ``repro_stats.locks``."""
        with self._lock:
            entries = list(self._entries.values())
        rows: List[List[Any]] = []
        for entry in entries:
            if (
                entry.shared_wait == 0.0
                and entry.exclusive_wait == 0.0
                and entry.wal_wait == 0.0
            ):
                continue
            rows.append([
                entry.key,
                entry.shared_waits,
                entry.exclusive_waits,
                entry.shared_wait * 1000.0,
                entry.exclusive_wait * 1000.0,
                entry.wal_wait * 1000.0,
            ])
        return rows
