"""Invoking external routines (SQLJ Part 1 runtime).

Implements the paper's calling conventions:

* **OUT / INOUT parameters.**  "Those parameters are declared as Java
  arrays, to act as 'containers'."  Here the containers are one-element
  Python lists: the routine assigns ``container[0]``.
* **Dynamic result sets.**  A procedure declared ``DYNAMIC RESULT SETS n``
  receives ``n`` extra one-element list containers; it stores a result
  set (a dbapi ``ResultSet`` or an engine rowset) in each.
* **Default connection.**  Inside a routine body,
  ``DriverManager.get_connection("DBAPI:DEFAULT:CONNECTION")`` (the
  paper's ``"JDBC:DEFAULT:CONNECTION"`` is accepted too) returns a
  connection sharing the invoking session and its transaction.
* **Definer's rights.**  The body runs under the routine owner's
  authorization.
* **SQLSTATE mapping.**  Uncaught exceptions surface to SQL as SQLSTATEs
  (:mod:`repro.procedures.sqlstate`).
"""

from __future__ import annotations

import contextvars
from typing import Any, List, Optional, Sequence

from repro import errors, faultpoints
from repro.engine import ast
from repro.engine.catalog import Routine
from repro.engine.database import Session, StatementResult
from repro.engine.expressions import Env, ExpressionCompiler, RowShape
from repro.observability import metrics as _metrics
from repro.observability import tracing as _tracing
from repro.procedures.sqlstate import to_sql_exception

__all__ = [
    "invoke_function",
    "execute_call",
    "default_connection_session",
    "call_routine",
]

_FUNCTION_CALLS = _metrics.registry.counter("functions.calls")
_PROCEDURE_CALLS = _metrics.registry.counter("procedures.calls")

#: Session of the innermost routine invocation on this thread/task.
_DEFAULT_SESSION: contextvars.ContextVar[Optional[Session]] = \
    contextvars.ContextVar("pysqlj_default_session", default=None)


def default_connection_session() -> Session:
    """Session behind ``DBAPI:DEFAULT:CONNECTION`` (raises outside a
    routine invocation)."""
    session = _DEFAULT_SESSION.get()
    if session is None:
        raise errors.ConnectionError_(
            "DBAPI:DEFAULT:CONNECTION is only available inside an "
            "external routine invocation"
        )
    return session


def _invoke_body(session: Session, routine: Routine, args: List[Any]) -> Any:
    """Run the routine body with the Part 1 execution environment.

    Functions can be invoked once per candidate row, so the trace span is
    only opened when tracing is on.
    """
    target = routine.callable
    if target is None:
        raise errors.RoutineResolutionError(
            f"routine {routine.name!r} has no resolved implementation"
        )
    faultpoints.trigger("procedure.invoke")
    tracer = _tracing.current
    if not tracer.enabled:
        return _run_body(session, routine, target, args)
    with tracer.span(
        "procedure", name=routine.name, language=routine.language
    ):
        return _run_body(session, routine, target, args)


def _run_body(
    session: Session, routine: Routine, target: Any, args: List[Any]
) -> Any:
    if routine.language == "SYSTEM":
        # System procedures (sqlj.*) run as the caller and receive
        # the session explicitly.
        return target(session, *args)

    token = _DEFAULT_SESSION.set(session)
    outermost = session._routine_depth == 0
    if outermost:
        # Call-duration state (see repro.procedures.state.call_state):
        # one dict for the outermost invocation and everything nested.
        session._routine_call_state = {}
    try:
        with session.impersonate(routine.owner), \
                session.routine_call():
            try:
                return target(*args)
            except Exception as exc:  # noqa: BLE001 - to SQLSTATE
                raise to_sql_exception(exc) from exc
    finally:
        _DEFAULT_SESSION.reset(token)
        if outermost:
            session._routine_call_state = None


def _host_value(descriptor: Any, value: Any) -> Any:
    """Convert a coerced SQL value for handing to host-language code.

    CHAR values cross the boundary with their pad blanks stripped: the
    paper's ``region`` example compares a CHAR(20) column against short
    string literals, which only works under trimmed semantics (SQL CHAR
    comparison ignores trailing blanks; the host language's does not).
    """
    from repro.sqltypes.core import CharType

    if isinstance(descriptor, CharType) and isinstance(value, str):
        return value.rstrip(" ")
    return value


def _coerce_in_args(routine: Routine, args: Sequence[Any]) -> List[Any]:
    in_params = routine.in_params()
    if len(args) != len(in_params):
        raise errors.ExternalRoutineInvocationError(
            f"routine {routine.name!r} expects {len(in_params)} input "
            f"arguments, got {len(args)}"
        )
    return [
        _host_value(param.descriptor, param.descriptor.coerce(value))
        for param, value in zip(in_params, args)
    ]


def invoke_function(
    session: Session, routine: Routine, args: Sequence[Any]
) -> Any:
    """Invoke a Part 1 function from a SQL expression."""
    if not routine.is_function:
        raise errors.SQLSyntaxError(
            f"{routine.name!r} is a procedure; use CALL"
        )
    _FUNCTION_CALLS.increment()
    values = _coerce_in_args(routine, args)
    result = _invoke_body(session, routine, values)
    if routine.returns is not None:
        result = routine.returns.coerce(result)
    return result


def call_routine(
    session: Session,
    routine: Routine,
    in_values: Sequence[Any],
) -> StatementResult:
    """Call a procedure with already-evaluated input values.

    Builds OUT and result-set containers, invokes the body, and collects
    outputs.  ``out_values`` in the result is aligned with the routine's
    full parameter list (None at IN positions).
    """
    session.check_execute_privilege(routine)

    if routine.is_function:
        value = invoke_function(session, routine, list(in_values))
        return StatementResult("call", function_value=value)

    _PROCEDURE_CALLS.increment()
    coerced = _coerce_in_args(routine, in_values)
    coerced_iter = iter(coerced)

    call_args: List[Any] = []
    containers: List[Optional[List[Any]]] = []
    for param in routine.params:
        if param.mode == "IN":
            call_args.append(next(coerced_iter))
            containers.append(None)
        elif param.mode == "OUT":
            container: List[Any] = [None]
            call_args.append(container)
            containers.append(container)
        else:  # INOUT
            container = [next(coerced_iter)]
            call_args.append(container)
            containers.append(container)

    result_set_containers: List[List[Any]] = [
        [None] for _ in range(routine.dynamic_result_sets)
    ]
    call_args.extend(result_set_containers)

    _invoke_body(session, routine, call_args)

    out_values: List[Any] = []
    for param, container in zip(routine.params, containers):
        if container is None:
            out_values.append(None)
        else:
            out_values.append(param.descriptor.coerce(container[0]))

    result_sets = [
        _materialise_result_set(container[0], routine)
        for container in result_set_containers
        if container[0] is not None
    ]
    return StatementResult(
        "call", out_values=out_values, result_sets=result_sets
    )


def _materialise_result_set(value: Any, routine: Routine) -> StatementResult:
    """Normalise whatever the routine stored in a result-set container."""
    if isinstance(value, StatementResult):
        if not value.is_rowset:
            raise errors.ExternalRoutineInvocationError(
                f"routine {routine.name!r} stored a non-rowset result"
            )
        return value
    to_result = getattr(value, "to_statement_result", None)
    if to_result is not None:
        return to_result()
    raise errors.ExternalRoutineInvocationError(
        f"routine {routine.name!r} stored an object of type "
        f"{type(value).__name__} in a result-set container"
    )


def execute_call(
    stmt: ast.Call, session: Session, params: Sequence[Any]
) -> StatementResult:
    """Execute a CALL statement.

    IN arguments may be arbitrary expressions (including ``?`` markers);
    OUT/INOUT arguments must be ``?`` markers or are ignored on output.
    """
    routine = session.catalog.get_routine(stmt.procedure)
    if routine.is_function:
        raise errors.SQLSyntaxError(
            f"{stmt.procedure!r} is a function; invoke it in an expression"
        )
    if len(stmt.args) != len(routine.params):
        raise errors.SQLSyntaxError(
            f"procedure {stmt.procedure!r} takes {len(routine.params)} "
            f"arguments, got {len(stmt.args)}"
        )
    compiler = ExpressionCompiler(RowShape([]), session)
    env = Env([], params, None, session)
    in_values: List[Any] = []
    for param, arg in zip(routine.params, stmt.args):
        if param.mode in ("IN", "INOUT"):
            in_values.append(compiler.compile(arg).fn(env))
    return call_routine(session, routine, in_values)
