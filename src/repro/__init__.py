"""PySQLJ: a Python reproduction of "SQLJ: Java and Relational Databases"
(SIGMOD 1998 tutorial).

Layers (bottom-up):

* :mod:`repro.engine` — from-scratch in-memory relational engine with a
  durable storage option (WAL + checkpoints + crash recovery),
* :mod:`repro.dbapi` — JDBC-shaped connectivity (PyDBC),
* :mod:`repro.translator`, :mod:`repro.profiles`, :mod:`repro.runtime`
  — SQLJ Part 0: embedded SQL, profiles, customizers,
* :mod:`repro.procedures` — SQLJ Part 1: Python callables as SQL routines,
* :mod:`repro.datatypes` — SQLJ Part 2: Python classes as SQL types.

Everything an application needs is importable from ``repro`` itself:

.. code-block:: python

    import repro

    with repro.connect("pydbc:standard:acme") as conn:
        with conn.create_statement() as stmt:
            stmt.execute_update("CREATE TABLE t (n INT)")

    # Durable variant: WAL + checkpoints + crash recovery.
    conn = repro.connect("pydbc:standard:acme", data_dir="/var/lib/acme")

The deep import paths that predate the façade
(``repro.engine.Database``, ``repro.dbapi.ConnectionPool``, ...) keep
working but emit :class:`DeprecationWarning`; new code should import
from ``repro`` (or the documented submodule homes such as
``repro.runtime.sqlj`` for translated programs).  ``repro.__all__`` is
the supported surface — ``tools/check_public_api.py`` diffs it (plus
the façade signatures) against a committed snapshot in CI.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from repro import errors
from repro.errors import ReproError, SQLException
from repro import observability
from repro.engine.database import Database, Session
from repro.engine.dialects import DIALECTS, Dialect
from repro.engine.durability import DurabilityManager, open_database
from repro.engine.persistence import load_database, save_database
from repro.engine.wal import WriteAheadLog
from repro.dbapi.connection import Connection
from repro.dbapi.driver import DatabaseRegistry, DriverManager, registry
from repro.dbapi.pool import ConnectionPool, PooledConnection
from repro.runtime.context import ConnectionContext, ExecutionContext

__version__ = "1.1.0"

#: Environment variable consulted by :func:`connect` when ``data_dir``
#: is not passed explicitly.
DATA_DIR_ENV = "REPRO_DATA_DIR"

__all__ = [
    # the one-call entry point
    "connect",
    "open_database",
    # engine
    "Database",
    "Session",
    "Dialect",
    "DIALECTS",
    "DurabilityManager",
    "WriteAheadLog",
    "save_database",
    "load_database",
    # dbapi
    "Connection",
    "ConnectionPool",
    "PooledConnection",
    "DriverManager",
    "DatabaseRegistry",
    "registry",
    # SQLJ runtime
    "ConnectionContext",
    "ExecutionContext",
    # errors and observability
    "errors",
    "ReproError",
    "SQLException",
    "observability",
    # metadata
    "DATA_DIR_ENV",
    "__version__",
]


def connect(
    url: str = "pydbc:standard:db",
    *,
    user: Optional[str] = None,
    pooled: bool = False,
    durable: bool = True,
    data_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    slow_query_ms: Optional[float] = None,
    **durability_options,
) -> Connection:
    """Open a DB-API connection to an embedded database.

    ``url`` is either a PyDBC URL, ``pydbc:<dialect>:<name>`` — the
    named embedded database is created on first use and shared
    process-wide by every later ``connect`` to the same name — or a
    remote URL, ``repro://host:port/<name>``, which dials a
    :mod:`repro.server` over TCP and returns the same DB-API surface
    (see ``docs/SERVER.md``).  For remote URLs durability is the
    *server's* concern: ``data_dir`` and durability options are
    rejected client-side.

    Durability: when ``data_dir`` is given (or the ``REPRO_DATA_DIR``
    environment variable is set) and ``durable`` is true, the database
    is opened through the durable storage engine — crash recovery runs
    on first open, every committed statement is redo-logged to the
    write-ahead log under ``<data_dir>/<name>/``, and checkpoints fold
    the log into the snapshot.  Extra keyword arguments
    (``group_window``, ``group_size``, ``checkpoint_interval``,
    ``sync``) tune it; see
    :func:`repro.engine.durability.open_database`.  Without a data
    directory the database is purely in-memory and ``durable`` is
    ignored.

    Storage engine: pass ``storage="lsm"`` to create the database on
    the LSM engine — checkpoints become O(delta) memtable flushes to
    immutable sorted runs with background compaction, instead of
    O(database) snapshot rewrites (see ``docs/STORAGE.md``).  The
    default is ``storage="snapshot"``; an existing directory keeps
    whichever engine created it.

    ``pooled=True`` checks the connection out of the process-wide
    :class:`ConnectionPool` for ``(url, user)`` instead of opening a
    fresh session, blocking up to ``timeout`` seconds (the pool default
    when ``None``); closing the connection returns it to the pool.

    ``slow_query_ms`` sets this connection's slow-query threshold:
    statements slower than that many milliseconds are emitted to the
    structured slow-query log (see ``docs/OBSERVABILITY.md``),
    overriding the process-wide ``REPRO_SLOW_QUERY_MS`` setting.
    """
    if url.lower().startswith("repro:"):
        if data_dir is not None or durability_options:
            raise errors.ConnectionError_(
                "data_dir and durability options configure the server "
                "side of a repro:// connection; pass them to "
                "ReproServer or 'python -m repro.server' instead"
            )
        if pooled:
            connection = DriverManager.get_pool(url, user=user).checkout(
                timeout=timeout
            )
        else:
            connection = DriverManager.get_connection(url, user=user)
        if slow_query_ms is not None:
            connection.session.slow_query_ms = float(slow_query_ms)
        return connection
    if data_dir is None:
        data_dir = os.environ.get(DATA_DIR_ENV) or None
    database: Optional[Database] = None
    if durable and data_dir is not None:
        dialect, name = _parse_url(url)
        database = registry.get_or_open_durable(
            name,
            dialect,
            os.path.join(data_dir, name),
            **durability_options,
        )
    elif durability_options:
        raise errors.ConnectionError_(
            "durability options "
            f"{sorted(durability_options)} require durable=True and a "
            "data_dir (or REPRO_DATA_DIR)"
        )
    if pooled:
        connection = DriverManager.get_pool(
            url, user=user, database=database
        ).checkout(timeout=timeout)
    else:
        connection = DriverManager.get_connection(
            url, user=user, database=database
        )
    if slow_query_ms is not None:
        connection.session.slow_query_ms = float(slow_query_ms)
    return connection


def _parse_url(url: str) -> Tuple[str, str]:
    """Split ``pydbc:<dialect>:<name>`` → ``(dialect, name)``."""
    parts = url.split(":")
    if len(parts) != 3 or parts[0].lower() != "pydbc":
        raise errors.ConnectionError_(
            f"malformed PyDBC URL {url!r}; expected "
            "'pydbc:<dialect>:<name>'"
        )
    return parts[1].lower(), parts[2]
