"""From-scratch in-memory relational engine.

This package is the substrate standing in for the commercial DBMSs
(Oracle, Sybase ASA, DB2, ...) the paper's SQLJ implementations targeted.
It provides a SQL lexer/parser, a catalog with tables, views, routines and
user-defined types, an iterator-model executor, session transactions, a
privilege system and a durable storage option (WAL + checkpoints + crash
recovery in :mod:`repro.engine.wal` / :mod:`repro.engine.durability`) —
everything the SQLJ layers above need to behave as the paper describes.

The names historically re-exported here (``Database``, ``Session``, ...)
now live on the top-level :mod:`repro` façade; importing them from
``repro.engine`` still works but emits :class:`DeprecationWarning`.
Submodules (``repro.engine.ast``, ``repro.engine.database``, ...) are
unaffected.
"""

from __future__ import annotations

import importlib
import warnings
from typing import Any, List

__all__ = [
    "Database",
    "Session",
    "Dialect",
    "DIALECTS",
    "save_database",
    "load_database",
]

# name -> submodule that actually defines it (PEP 562 lazy shim).
_FACADE_HOMES = {
    "Database": "repro.engine.database",
    "Session": "repro.engine.database",
    "Dialect": "repro.engine.dialects",
    "DIALECTS": "repro.engine.dialects",
    "save_database": "repro.engine.persistence",
    "load_database": "repro.engine.persistence",
}


def __getattr__(name: str) -> Any:
    home = _FACADE_HOMES.get(name)
    if home is None:
        raise AttributeError(
            f"module 'repro.engine' has no attribute {name!r}"
        )
    warnings.warn(
        f"importing {name} from repro.engine is deprecated; "
        "import it from the top-level repro package instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(home), name)


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(__all__))
