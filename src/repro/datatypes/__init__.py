"""SQLJ Part 2: host-language classes as SQL data types.

``CREATE TYPE addr EXTERNAL NAME Address LANGUAGE PYTHON (...)`` binds a
Python class to a SQL type name, maps SQL attribute/method names onto
Python fields/methods, and makes the class usable as a column or
parameter type with value semantics.  Subtypes declared ``UNDER`` a
supertype inherit its members and are substitutable for it.

Expression-level behaviour (``new``, ``>>`` access, dynamic dispatch)
lives in :mod:`repro.engine.expressions`; this package owns registration,
DDL generation from reflection, and object serialization.
"""

from repro.datatypes.ddlgen import create_type_ddl_for_class
from repro.datatypes.registration import execute_create_type
from repro.datatypes.serialization import (
    deserialize_object,
    serialize_object,
)

__all__ = [
    "execute_create_type",
    "create_type_ddl_for_class",
    "serialize_object",
    "deserialize_object",
]
