"""Engine dialects.

The paper's headline Part 0 property is *binary portability*: one
translated SQLJ binary runs against different database systems once a
vendor customizer has adapted its profile.  To make that property testable
without three commercial DBMSs, the engine supports named dialects that
differ in accepted SQL surface syntax — the same kind of differences
(row-limit syntax, string concatenation spelling) that real vendor
customizers papered over.

A profile customized for dialect X contains SQL text the X parser accepts;
running an uncustomized (standard) profile against a non-standard dialect
fails exactly like shipping un-customized SQLJ binaries would have.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Dialect", "DIALECTS", "STANDARD", "ACME", "ZENITH"]


@dataclass(frozen=True)
class Dialect:
    """Surface-syntax profile of one simulated vendor.

    Attributes
    ----------
    name:
        Registry key, also used in dbapi URLs (``pydbc:acme:mydb``).
    limit_style:
        How a row limit is spelled: ``"limit"`` (``LIMIT n``), ``"top"``
        (``SELECT TOP n ...``) or ``"fetch_first"``
        (``FETCH FIRST n ROWS ONLY``).
    plus_concatenates_strings:
        Whether ``'a' + 'b'`` performs string concatenation (Sybase-style).
    allows_double_pipe_concat:
        Whether the ISO ``||`` operator is accepted.
    """

    name: str
    limit_style: str = "limit"
    plus_concatenates_strings: bool = False
    allows_double_pipe_concat: bool = True


#: ISO-flavoured default dialect; the SQLJ translator checks against this.
STANDARD = Dialect("standard")

#: A Sybase/SQL-Server-flavoured vendor: TOP n, ``+`` concatenation, no ||.
ACME = Dialect(
    "acme",
    limit_style="top",
    plus_concatenates_strings=True,
    allows_double_pipe_concat=False,
)

#: A DB2-flavoured vendor: FETCH FIRST n ROWS ONLY.
ZENITH = Dialect("zenith", limit_style="fetch_first")

DIALECTS: Dict[str, Dialect] = {
    d.name: d for d in (STANDARD, ACME, ZENITH)
}
