"""Tests for the PyDBC (JDBC-shaped) connectivity layer."""

import decimal

import pytest

from repro import errors
from repro import DriverManager
from repro.dbapi.statement import strip_call_escape
from repro.sqltypes import typecodes

D = decimal.Decimal


@pytest.fixture
def conn(db, emps):
    connection = DriverManager.get_connection(
        "pydbc:standard:unused", database=db
    )
    yield connection
    connection.close()


class TestDriverManager:
    def test_url_creates_database(self):
        connection = DriverManager.get_connection("pydbc:standard:fresh")
        connection.session.execute("create table t (a integer)")
        # A second connection to the same URL sees the same database.
        second = DriverManager.get_connection("pydbc:standard:fresh")
        assert second.session.execute(
            "select count(*) from t"
        ).rows == [[0]]

    def test_url_dialect_selected(self):
        connection = DriverManager.get_connection("pydbc:acme:acmedb")
        assert connection.dialect_name == "acme"

    def test_dialect_conflict_rejected(self):
        DriverManager.get_connection("pydbc:acme:conflicted")
        with pytest.raises(errors.ConnectionError_):
            DriverManager.get_connection("pydbc:zenith:conflicted")

    def test_malformed_url(self):
        with pytest.raises(errors.ConnectionError_):
            DriverManager.get_connection("jdbc:odbc:acme.cs")

    def test_unknown_dialect(self):
        with pytest.raises(errors.ConnectionError_):
            DriverManager.get_connection("pydbc:oracle:whatever")

    def test_default_connection_outside_routine_fails(self):
        with pytest.raises(errors.ConnectionError_):
            DriverManager.get_connection("DBAPI:DEFAULT:CONNECTION")

    def test_user_parameter(self, db):
        connection = DriverManager.get_connection(
            "pydbc:standard:x", user="smith", database=db
        )
        assert connection.user == "smith"


class TestStatement:
    def test_execute_query(self, conn):
        rs = conn.create_statement().execute_query(
            "select name from emps where state = 'CA'"
        )
        assert rs.next()
        assert rs.get_string(1) == "Alice"
        assert not rs.next()

    def test_execute_update(self, conn):
        stmt = conn.create_statement()
        count = stmt.execute_update(
            "update emps set sales = 0 where sales is null"
        )
        assert count == 1
        assert stmt.get_update_count() == 1

    def test_execute_query_on_update_rejected(self, conn):
        with pytest.raises(errors.DataError):
            conn.create_statement().execute_query(
                "delete from emps where 1 = 0"
            )

    def test_execute_update_on_query_rejected(self, conn):
        with pytest.raises(errors.DataError):
            conn.create_statement().execute_update("select 1")

    def test_generic_execute(self, conn):
        stmt = conn.create_statement()
        assert stmt.execute("select 1") is True
        assert stmt.execute("delete from emps where 1 = 0") is False

    def test_closed_statement(self, conn):
        stmt = conn.create_statement()
        stmt.close()
        with pytest.raises(errors.InvalidCursorStateError):
            stmt.execute_query("select 1")


class TestPreparedStatement:
    def test_binding_and_reuse(self, conn):
        stmt = conn.prepare_statement(
            "select name from emps where sales > ? order by name"
        )
        stmt.set_decimal(1, D("100"))
        first = [r.get_string(1) for r in stmt.execute_query()]
        stmt.set_decimal(1, D("150"))
        second = [r.get_string(1) for r in stmt.execute_query()]
        assert first == ["Alice", "Dan", "Grace"]
        assert second == ["Dan"]

    def test_set_null(self, conn):
        stmt = conn.prepare_statement(
            "update emps set sales = ? where name = 'Alice'"
        )
        stmt.set_null(1)
        stmt.execute_update()
        rs = conn.create_statement().execute_query(
            "select sales from emps where name = 'Alice'"
        )
        rs.next()
        assert rs.get_decimal(1) is None
        assert rs.was_null()

    def test_unbound_parameter_fails(self, conn):
        stmt = conn.prepare_statement(
            "select name from emps where sales > ?"
        )
        with pytest.raises(errors.DataError):
            stmt.execute_query()

    def test_clear_parameters(self, conn):
        stmt = conn.prepare_statement(
            "select name from emps where sales > ?"
        )
        stmt.set_int(1, 0)
        stmt.clear_parameters()
        with pytest.raises(errors.DataError):
            stmt.execute_query()

    def test_type_checked_binders(self, conn):
        stmt = conn.prepare_statement("select ?")
        with pytest.raises(errors.InvalidCastError):
            stmt.set_string(1, 42)
        with pytest.raises(errors.InvalidCastError):
            stmt.set_int(1, "42")

    def test_one_based_indexes(self, conn):
        stmt = conn.prepare_statement("select ?")
        with pytest.raises(errors.DataError):
            stmt.set_int(0, 1)

    def test_prepared_insert(self, conn):
        stmt = conn.prepare_statement(
            "insert into emps values (?, ?, ?, ?)"
        )
        for i in range(3):
            stmt.set_string(1, f"N{i}")
            stmt.set_string(2, f"P{i}")
            stmt.set_string(3, "CA")
            stmt.set_decimal(4, D(i))
            assert stmt.execute_update() == 1
        rs = conn.create_statement().execute_query(
            "select count(*) from emps where id like 'P%'"
        )
        rs.next()
        assert rs.get_int(1) == 3


class TestResultSet:
    def test_column_access_by_name_and_index(self, conn):
        rs = conn.create_statement().execute_query(
            "select name, sales from emps where name = 'Alice'"
        )
        rs.next()
        assert rs.get_string("name") == rs.get_string(1)
        assert rs.get_decimal("sales") == rs.get_decimal(2)

    def test_find_column(self, conn):
        rs = conn.create_statement().execute_query(
            "select name, sales from emps"
        )
        assert rs.find_column("sales") == 2
        with pytest.raises(errors.UndefinedColumnError):
            rs.find_column("wages")

    def test_access_before_next_fails(self, conn):
        rs = conn.create_statement().execute_query("select 1")
        with pytest.raises(errors.InvalidCursorStateError):
            rs.get_int(1)

    def test_access_after_end_fails(self, conn):
        rs = conn.create_statement().execute_query("select 1")
        while rs.next():
            pass
        with pytest.raises(errors.InvalidCursorStateError):
            rs.get_int(1)

    def test_closed_resultset(self, conn):
        rs = conn.create_statement().execute_query("select 1")
        rs.close()
        with pytest.raises(errors.InvalidCursorStateError):
            rs.next()

    def test_iteration_protocol(self, conn):
        rs = conn.create_statement().execute_query(
            "select name from emps order by name limit 2"
        )
        assert [r.get_string(1) for r in rs] == ["Alice", "Bob"]

    def test_fetch_all(self, conn):
        rs = conn.create_statement().execute_query(
            "select name from emps order by name limit 2"
        )
        assert rs.fetch_all() == [["Alice"], ["Bob"]]
        assert rs.fetch_all() == []

    def test_typed_getters(self, conn):
        rs = conn.create_statement().execute_query(
            "select name, sales from emps where name = 'Alice'"
        )
        rs.next()
        assert rs.get_float("sales") == pytest.approx(100.5)
        assert rs.get_int("sales") == 100
        with pytest.raises(errors.InvalidCastError):
            rs.get_date("name")

    def test_metadata(self, conn):
        rs = conn.create_statement().execute_query(
            "select name, sales from emps"
        )
        md = rs.get_meta_data()
        assert md.get_column_count() == 2
        assert md.get_column_name(1) == "name"
        assert md.get_column_type(2) == typecodes.DECIMAL
        assert md.get_column_type_name(2) == "DECIMAL(6,2)"

    def test_out_of_range_column(self, conn):
        rs = conn.create_statement().execute_query("select 1")
        rs.next()
        with pytest.raises(errors.DataError):
            rs.get_int(5)


class TestConnection:
    def test_autocommit_default_true(self, conn):
        assert conn.autocommit is True

    def test_manual_transaction(self, db, emps):
        connection = DriverManager.get_connection(
            "pydbc:standard:x", database=db
        )
        connection.set_auto_commit(False)
        connection.create_statement().execute_update("delete from emps")
        connection.rollback()
        rs = connection.create_statement().execute_query(
            "select count(*) from emps"
        )
        rs.next()
        assert rs.get_int(1) == 8

    def test_close_is_idempotent(self, conn):
        conn.close()
        conn.close()
        with pytest.raises(errors.ConnectionClosedError):
            conn.create_statement()

    def test_context_manager(self, db):
        with DriverManager.get_connection(
            "pydbc:standard:x", database=db
        ) as connection:
            assert not connection.closed
        assert connection.closed

    def test_type_map(self, conn):
        class Fake:
            pass

        conn.set_type_map({"ADDR": Fake})
        assert conn.get_type_map() == {"addr": Fake}
        with pytest.raises(errors.DataError):
            conn.set_type_map({"addr": "not-a-class"})


class TestCallEscape:
    def test_strip_call_escape(self):
        assert strip_call_escape("{call p(?, ?)}") == "CALL p(?, ?)"
        assert strip_call_escape("  { CALL p() }  ") == "CALL p()"
        assert strip_call_escape("select 1") == "select 1"

    def test_multiline_escape(self):
        assert strip_call_escape(
            "{call best2(?,\n ?)}"
        ) == "CALL best2(?,\n ?)"


class TestMetadata:
    def test_get_tables(self, conn):
        md = conn.get_meta_data()
        rs = md.get_tables()
        names = [r.get_string("table_name") for r in rs]
        assert "emps" in names

    def test_get_tables_pattern(self, conn):
        conn.session.execute("create table orders (a integer)")
        md = conn.get_meta_data()
        names = [
            r.get_string("table_name")
            for r in md.get_tables(table_name_pattern="ord%")
        ]
        assert names == ["orders"]

    def test_get_columns(self, conn):
        md = conn.get_meta_data()
        rs = md.get_columns(table_name_pattern="emps")
        columns = {
            r.get_string("column_name"): r.get_int("data_type") for r in rs
        }
        assert columns["sales"] == typecodes.DECIMAL
        assert columns["name"] == typecodes.VARCHAR

    def test_get_udts_matches_paper_example(self, address_types, db):
        connection = DriverManager.get_connection(
            "pydbc:standard:x", database=db
        )
        dmd = connection.get_meta_data()
        types = [typecodes.PY_OBJECT]
        rs = dmd.get_udts("catalog-name", "schema-name", "%", types)
        found = {r.get_string("type_name"): r for r in rs}
        assert set(found) == {"addr", "addr_2_line"}

    def test_get_udts_class_names(self, address_types, db):
        connection = DriverManager.get_connection(
            "pydbc:standard:x", database=db
        )
        rs = connection.get_meta_data().get_udts()
        by_name = {}
        while rs.next():
            by_name[rs.get_string("type_name")] = (
                rs.get_string("class_name"),
                rs.get_string("remarks"),
            )
        assert by_name["addr"][0].endswith("Address")
        assert by_name["addr_2_line"][1] == "under addr"

    def test_get_procedures(self, payroll, db):
        connection = DriverManager.get_connection(
            "pydbc:standard:x", database=db
        )
        rs = connection.get_meta_data().get_procedures(
            procedure_name_pattern="ranked%"
        )
        rs.next()
        assert rs.get_string("procedure_name") == "ranked_emps"
        assert rs.get_int("dynamic_result_sets") == 1

    def test_get_procedure_columns(self, payroll, db):
        connection = DriverManager.get_connection(
            "pydbc:standard:x", database=db
        )
        rs = connection.get_meta_data().get_procedure_columns(
            procedure_name_pattern="best2"
        )
        modes = [r.get_string("column_type") for r in rs]
        assert modes.count("OUT") == 8
        assert modes.count("IN") == 1

    def test_product_name(self, conn):
        md = conn.get_meta_data()
        assert "PySQLJ" in md.get_database_product_name()
        assert md.get_user_name() == "dba"


class TestScrollableResultSet:
    @pytest.fixture
    def rs(self, conn):
        return conn.create_statement().execute_query(
            "select name from emps order by name"
        )

    def test_first_and_last(self, rs):
        assert rs.first()
        assert rs.get_string(1) == "Alice"
        assert rs.last()
        assert rs.get_string(1) == "Hank"

    def test_previous(self, rs):
        rs.last()
        assert rs.previous()
        assert rs.get_string(1) == "Grace"

    def test_previous_past_start(self, rs):
        rs.first()
        assert not rs.previous()
        assert rs.is_before_first()

    def test_absolute_positive(self, rs):
        assert rs.absolute(3)
        assert rs.get_string(1) == "Carol"
        assert rs.get_row() == 3

    def test_absolute_negative_counts_from_end(self, rs):
        assert rs.absolute(-1)
        assert rs.get_string(1) == "Hank"
        assert rs.absolute(-8)
        assert rs.get_string(1) == "Alice"

    def test_absolute_out_of_range(self, rs):
        assert not rs.absolute(100)
        assert rs.is_after_last()
        assert not rs.absolute(-100)
        assert rs.is_before_first()

    def test_absolute_zero_is_before_first(self, rs):
        assert not rs.absolute(0)
        assert rs.is_before_first()

    def test_relative(self, rs):
        rs.first()
        assert rs.relative(2)
        assert rs.get_string(1) == "Carol"
        assert rs.relative(-1)
        assert rs.get_string(1) == "Bob"

    def test_before_first_and_after_last(self, rs):
        rs.after_last()
        assert rs.is_after_last()
        assert not rs.next()
        rs.before_first()
        assert rs.next()
        assert rs.get_string(1) == "Alice"

    def test_get_row_outside_rows(self, rs):
        assert rs.get_row() == 0
        rs.first()
        assert rs.get_row() == 1

    def test_empty_set(self, conn):
        rs = conn.create_statement().execute_query(
            "select name from emps where 1 = 2"
        )
        assert not rs.first()
        assert not rs.last()
        assert not rs.is_before_first()
        assert not rs.is_after_last()
