"""The paper's running examples, translated to PySQLJ.

Everything here is a direct transliteration of the tutorial's slides:
the ``emps`` table, the ``Routines1``/``Routines2``/``Routines3``
classes (Part 1), their CREATE PROCEDURE/FUNCTION statements, and the
``Address``/``Address2Line`` classes with their CREATE TYPE statements
(Part 2).  Tests and benchmarks build on these shared assets.
"""

from __future__ import annotations

from typing import List

# ---------------------------------------------------------------------------
# Schema (paper: "Example table")
# ---------------------------------------------------------------------------

EMPS_DDL = (
    "create table emps ("
    " name varchar(50),"
    " id char(5),"
    " state char(20),"
    " sales decimal(6,2))"
)

EMPS_ROWS = [
    ("Alice", "E1", "CA", "100.50"),
    ("Bob", "E2", "MN", "50.25"),
    ("Carol", "E3", "NV", "75.00"),
    ("Dan", "E4", "FL", "200.00"),
    ("Eve", "E5", "VT", "10.00"),
    ("Frank", "E6", "TX", None),
    ("Grace", "E7", "GA", "120.75"),
    ("Hank", "E8", "AZ", "99.99"),
]


def emps_insert_statements() -> List[str]:
    statements = []
    for name, emp_id, state, sales in EMPS_ROWS:
        sales_text = "NULL" if sales is None else sales
        statements.append(
            f"insert into emps values ('{name}', '{emp_id}', '{state}', "
            f"{sales_text})"
        )
    return statements


#: state -> region mapping implemented by Routines1.region.
REGION_BY_STATE = {
    "MN": 1, "VT": 1, "NH": 1,
    "FL": 2, "GA": 2, "AL": 2,
    "CA": 3, "AZ": 3, "NV": 3,
}


def region_of(state: str) -> int:
    """Reference implementation of the paper's region function."""
    return REGION_BY_STATE.get(state, 4)


# ---------------------------------------------------------------------------
# Part 1 routines (paper: Routines1, Routines2, Routines3)
# ---------------------------------------------------------------------------

ROUTINES1_SOURCE = '''
"""The paper's Routines1: region (plain computation) and correct_states
(SQL update through the default connection)."""

from repro import DriverManager


def region(s):
    if s in ("MN", "VT", "NH"):
        return 1
    if s in ("FL", "GA", "AL"):
        return 2
    if s in ("CA", "AZ", "NV"):
        return 3
    return 4


def correct_states(old_spelling, new_spelling):
    conn = DriverManager.get_connection("JDBC:DEFAULT:CONNECTION")
    stmt = conn.prepare_statement(
        "UPDATE emps SET state = ? WHERE state = ?")
    stmt.set_string(1, new_spelling)
    stmt.set_string(2, old_spelling)
    stmt.execute_update()
'''

ROUTINES2_SOURCE = '''
"""The paper's Routines2: best_two_emps with eight OUT parameters."""

from repro import DriverManager


def best_two_emps(n1, id1, r1, s1, n2, id2, r2, s2, region_parm):
    conn = DriverManager.get_connection("DBAPI:DEFAULT:CONNECTION")
    stmt = conn.prepare_statement(
        "SELECT name, id, region_of(state) as region, sales FROM emps "
        "WHERE region_of(state) > ? AND sales IS NOT NULL "
        "ORDER BY sales DESC")
    stmt.set_int(1, region_parm)
    r = stmt.execute_query()
    if r.next():
        n1[0] = r.get_string("name")
        id1[0] = r.get_string("id")
        r1[0] = r.get_int("region")
        s1[0] = r.get_decimal("sales")
    else:
        n1[0] = "****"
        return
    if r.next():
        n2[0] = r.get_string("name")
        id2[0] = r.get_string("id")
        r2[0] = r.get_int("region")
        s2[0] = r.get_decimal("sales")
    else:
        n2[0] = "****"
'''

ROUTINES3_SOURCE = '''
"""The paper's Routines3: ordered_emps returning a dynamic result set."""

from repro import DriverManager


def ordered_emps(region_parm, rs):
    conn = DriverManager.get_connection("DBAPI:DEFAULT:CONNECTION")
    stmt = conn.prepare_statement(
        "SELECT name, region_of(state) as region, sales FROM emps "
        "WHERE region_of(state) > ? AND sales IS NOT NULL "
        "ORDER BY sales DESC")
    stmt.set_int(1, region_parm)
    rs[0] = stmt.execute_query()
'''

#: CREATE statements from the paper (par name adapted).
ROUTINE_DDL = [
    (
        "create function region_of(state char(20)) returns integer "
        "no sql external name 'routines_par:routines1.region' "
        "language python parameter style python"
    ),
    (
        "create procedure correct_states(old char(20), new char(20)) "
        "modifies sql data "
        "external name 'routines_par:routines1.correct_states' "
        "language python parameter style python"
    ),
    (
        "create procedure best2 ("
        " out n1 varchar(50), out id1 varchar(5), out r1 integer,"
        " out s1 decimal(6,2), out n2 varchar(50), out id2 varchar(5),"
        " out r2 integer, out s2 decimal(6,2), region integer) "
        "reads sql data "
        "external name 'routines_par:routines2.best_two_emps' "
        "language python parameter style python"
    ),
    (
        "create procedure ranked_emps (region integer) "
        "dynamic result sets 1 reads sql data "
        "external name 'routines_par:routines3.ordered_emps' "
        "language python parameter style python"
    ),
]


# ---------------------------------------------------------------------------
# Part 2 classes (paper: Address, Address2Line)
# ---------------------------------------------------------------------------

ADDRESS_SOURCE = '''
"""The paper's Address and Address2Line example classes."""


class Address:
    recommended_width = 25

    def __init__(self, street="Unknown", zip="None"):
        self.street = street
        self.zip = zip

    def to_string(self):
        return "Street= " + self.street + " ZIP= " + self.zip

    def remove_leading_blanks(self):
        self.street = self.street.lstrip(" ")

    @staticmethod
    def contiguous(a1, a2):
        return "yes" if a1.zip[:3] == a2.zip[:3] else "no"

    def __eq__(self, other):
        return (
            type(other) is type(self)
            and self.street == other.street
            and self.zip == other.zip
        )

    def __hash__(self):
        return hash((self.street, self.zip))


class Address2Line(Address):
    def __init__(self, street="Unknown", line2=" ", zip="None"):
        super().__init__(street, zip)
        self.line2 = line2

    def to_string(self):
        return (
            "Street= " + self.street + " Line2= " + self.line2
            + " ZIP= " + self.zip
        )

    def __eq__(self, other):
        return (
            type(other) is type(self)
            and self.street == other.street
            and self.zip == other.zip
            and self.line2 == other.line2
        )

    def __hash__(self):
        return hash((self.street, self.zip, self.line2))
'''

CREATE_TYPE_ADDR = """
create type addr external name 'address_par:addressmod.Address'
language python (
  zip_attr char(10) external name zip,
  street_attr varchar(50) external name street,
  static rec_width_attr integer external name recommended_width,
  method addr () returns addr external name Address,
  method addr (s_parm varchar(50), z_parm char(10)) returns addr
    external name Address,
  method to_string () returns varchar(255) external name to_string,
  method remove_leading_blanks () external name remove_leading_blanks;
  static method contiguous (a1 addr, a2 addr) returns char(3)
    external name contiguous
)
"""

CREATE_TYPE_ADDR_2_LINE = """
create type addr_2_line under addr
external name 'address_par:addressmod.Address2Line' language python (
  line2_attr varchar(100) external name line2,
  method addr_2_line () returns addr_2_line external name Address2Line,
  method addr_2_line (s_parm varchar(50), s2_parm char(100),
    z_parm char(10)) returns addr_2_line external name Address2Line,
  method to_string () returns varchar(255) external name to_string
)
"""

PEOPLE_WITH_ADDRESSES_DDL = (
    "create table emps_addr ("
    " name varchar(30),"
    " home_addr addr,"
    " mailing_addr addr_2_line)"
)
