"""Statement, PreparedStatement and CallableStatement.

These mirror the JDBC classes the paper's examples use:

* ``Statement.execute_query`` / ``execute_update`` for dynamic SQL,
* ``PreparedStatement`` with 1-based ``set_xxx`` binders (the JDBC side of
  the paper's "SQLJ more concise than JDBC" comparison),
* ``CallableStatement`` with ``{call proc(?, ...)}`` escape syntax,
  ``register_out_parameter``, 1-based ``get_xxx`` for OUT values, and
  ``get_result_set`` / ``get_more_results`` for dynamic result sets.
"""

from __future__ import annotations

import datetime
import decimal
import re
from typing import Any, Dict, List, Optional, Union

from repro import errors
from repro.dbapi.resultset import ResultSet
from repro.engine import ast
from repro.engine.database import StatementResult
from repro.observability import metrics as _metrics
from repro.observability import tracing as _tracing

__all__ = [
    "Statement",
    "PreparedStatement",
    "CallableStatement",
    "BatchUpdateError",
]

_EXECUTIONS = _metrics.registry.counter("dbapi.executions")

_CALL_ESCAPE_RE = re.compile(
    r"^\s*\{\s*\?\s*=\s*call\s+(?P<fncall>.+?)\s*\}\s*$|"
    r"^\s*\{\s*call\s+(?P<call>.+?)\s*\}\s*$",
    re.IGNORECASE | re.DOTALL,
)


def strip_call_escape(sql: str) -> str:
    """Normalise the JDBC ``{call ...}`` escape to a CALL statement."""
    match = _CALL_ESCAPE_RE.match(sql)
    if match:
        body = match.group("call") or match.group("fncall")
        return f"CALL {body}"
    return sql


class BatchUpdateError(errors.SQLException):
    """A batch execution failed part-way (JDBC's BatchUpdateException).

    ``update_counts`` holds the counts of the statements that executed
    before the failure.  Batches run inside a single transaction, so in
    autocommit mode these counts are informational only: the whole
    batch was rolled back and none of them remain committed.
    """

    default_sqlstate = "HY000"

    def __init__(self, message: str, update_counts: List[int]) -> None:
        super().__init__(message)
        self.update_counts = update_counts


def _run_batch_atomically(connection: Any, run: Any) -> List[int]:
    """Execute ``run()`` (a queued batch) inside ONE transaction.

    In autocommit mode the session temporarily drops to manual commit,
    runs the whole batch, and commits once at the end; any error rolls
    the entire batch back before the flag is restored, so a mid-batch
    failure never leaves a committed prefix behind (MVCC makes the
    rollback invisible to concurrent readers).  Inside an explicit
    transaction the batch simply joins it — completed statements stay
    pending and the caller's COMMIT/ROLLBACK decides.
    """
    session = connection.session
    if not connection.autocommit:
        return run()
    session.autocommit = False
    try:
        counts = run()
        session.commit()
    except BaseException:
        try:
            session.rollback()
        finally:
            session.autocommit = True
        raise
    session.autocommit = True
    return counts


class Statement:
    """Dynamic (unprepared) statement execution."""

    def __init__(self, connection: Any) -> None:
        self.connection = connection
        self._result: Optional[StatementResult] = None
        self._result_set_index = 0
        self._closed = False
        self._batch: List[Any] = []

    # ------------------------------------------------------------------
    def _run(self, sql: str, params: List[Any]) -> StatementResult:
        self._check_open()
        session = self.connection.session
        _EXECUTIONS.increment()
        tracer = self.connection._tracer or _tracing.current
        if tracer.enabled:
            with tracer.span("dbapi.statement", sql=sql):
                result = session.execute(strip_call_escape(sql), params)
        else:
            result = session.execute(strip_call_escape(sql), params)
        self._result = result
        self._result_set_index = 0
        return result

    def execute_query(self, sql: str) -> ResultSet:
        result = self._run(sql, [])
        if not result.is_rowset:
            raise errors.DataError(
                "execute_query used for a statement that returns no rows"
            )
        return ResultSet(result, self)

    def execute_update(self, sql: str) -> int:
        result = self._run(sql, [])
        if result.is_rowset:
            raise errors.DataError(
                "execute_update used for a statement that returns rows"
            )
        return result.update_count

    def execute(self, sql: str) -> bool:
        """Execute any statement; True if a result set is available."""
        result = self._run(sql, [])
        return result.is_rowset or bool(result.result_sets)

    # ------------------------------------------------------------------
    # multiple-results protocol (dynamic result sets from CALL)
    # ------------------------------------------------------------------
    def _available_results(self) -> List[StatementResult]:
        if self._result is None:
            return []
        if self._result.is_rowset:
            return [self._result]
        return self._result.result_sets

    def get_result_set(self) -> Optional[ResultSet]:
        results = self._available_results()
        if self._result_set_index >= len(results):
            return None
        return ResultSet(results[self._result_set_index], self)

    def get_more_results(self) -> bool:
        results = self._available_results()
        self._result_set_index += 1
        return self._result_set_index < len(results)

    def get_update_count(self) -> int:
        if self._result is None or self._result.is_rowset:
            return -1
        if self._result.kind == "update":
            return self._result.update_count
        return -1

    # ------------------------------------------------------------------
    # batch updates (JDBC 2.0)
    # ------------------------------------------------------------------
    def add_batch(self, sql: str) -> None:
        """Queue one complete SQL statement for batched execution.

        Plain statements batch *literal* SQL text — every queued entry
        carries its own values and may target a different table, and
        each is re-parsed at ``execute_batch`` time.  There is no
        parameter binding here: to bind many parameter rows against one
        statement (and get the engine's bulk fast path — one parse, one
        WAL record, one round trip), use
        :meth:`PreparedStatement.add_batch`, the JDBC 2.0
        prepared-batch form.
        """
        self._check_open()
        self._batch.append(sql)

    def clear_batch(self) -> None:
        self._batch.clear()

    def execute_batch(self) -> List[int]:
        """Run the queued statements as ONE transaction; returns their
        update counts.

        Partial-failure semantics (JDBC leaves them to the driver; this
        driver's choice): the batch is a single unit of work.  In
        autocommit mode the connection switches to manual commit for
        the duration, executes every queued statement, and commits once
        at the end — a mid-batch error rolls the WHOLE batch back under
        MVCC, so a failure never leaves a committed prefix behind.
        Inside an explicit transaction the batch joins it and the
        caller's COMMIT/ROLLBACK decides.

        A failure raises :class:`BatchUpdateError` whose
        ``update_counts`` carries the counts of the statements that
        executed before the error (informational — in autocommit mode
        none of them remain committed).  The queue is cleared either
        way.  DDL statements commit immediately and are not
        transactional, so they are outside the all-or-nothing
        guarantee.
        """
        self._check_open()
        batch, self._batch = list(self._batch), []
        counts: List[int] = []

        def run() -> List[int]:
            for sql in batch:
                result = self._run(sql, [])
                if result.is_rowset:
                    raise errors.DataError(
                        "queries are not allowed in a batch"
                    )
                counts.append(result.update_count)
            return counts

        try:
            return _run_batch_atomically(self.connection, run)
        except errors.SQLException as exc:
            raise BatchUpdateError(
                f"batch failed after {len(counts)} statement(s): "
                f"{exc.message}",
                counts,
            ) from exc

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise errors.InvalidCursorStateError("statement is closed")
        self.connection._check_open()


class PreparedStatement(Statement):
    """Pre-parsed (and for queries pre-planned) parameterised statement."""

    def __init__(self, connection: Any, sql: str) -> None:
        super().__init__(connection)
        self.sql = strip_call_escape(sql)
        self._plan = connection.session.prepare(self.sql)
        self._params: Dict[int, Any] = {}

    # ------------------------------------------------------------------
    # binder methods (1-based indexes, as in JDBC)
    # ------------------------------------------------------------------
    def _bind(self, index: int, value: Any) -> None:
        if index < 1:
            raise errors.DataError("parameter indexes are 1-based")
        self._params[index] = value

    def set_object(self, index: int, value: Any) -> None:
        self._bind(index, value)

    def set_string(self, index: int, value: Optional[str]) -> None:
        if value is not None and not isinstance(value, str):
            raise errors.InvalidCastError("set_string expects str or None")
        self._bind(index, value)

    def set_int(self, index: int, value: Optional[int]) -> None:
        if value is not None and not isinstance(value, int):
            raise errors.InvalidCastError("set_int expects int or None")
        self._bind(index, value)

    def set_float(self, index: int, value: Optional[float]) -> None:
        if value is not None:
            value = float(value)
        self._bind(index, value)

    def set_decimal(
        self, index: int, value: Optional[decimal.Decimal]
    ) -> None:
        if value is not None and not isinstance(value, decimal.Decimal):
            value = decimal.Decimal(str(value))
        self._bind(index, value)

    def set_boolean(self, index: int, value: Optional[bool]) -> None:
        if value is not None:
            value = bool(value)
        self._bind(index, value)

    def set_date(self, index: int, value: Optional[datetime.date]) -> None:
        self._bind(index, value)

    def set_bytes(self, index: int, value: Optional[bytes]) -> None:
        if value is not None and not isinstance(value, (bytes, bytearray)):
            raise errors.InvalidCastError("set_bytes expects bytes or None")
        self._bind(index, bytes(value) if value is not None else None)

    def set_null(self, index: int, _type_code: int = 0) -> None:
        self._bind(index, None)

    def clear_parameters(self) -> None:
        self._params.clear()

    # ------------------------------------------------------------------
    # batch updates (JDBC 2.0): one prepared statement, many bindings
    # ------------------------------------------------------------------
    def add_batch(self, sql: Optional[str] = None) -> None:
        """Queue the current parameter bindings as one batch row
        (JDBC 2.0 prepared-batch form).

        Bind parameters with the ``set_xxx`` methods, call
        ``add_batch()`` with no argument, repeat, then
        :meth:`execute_batch` runs every queued row against the one
        prepared statement.  The bindings are snapshotted here, so the
        usual JDBC loop — rebind, ``add_batch()``, rebind — works.
        """
        if sql is not None:
            raise errors.DataError(
                "prepared statements batch their own SQL; bind "
                "parameters and call add_batch() with no argument"
            )
        self._check_open()
        self._batch.append(self._param_list())

    def execute_batch(self) -> List[int]:
        """Execute every queued parameter row as ONE atomic batch;
        returns the per-row update counts.

        DML statements (INSERT/UPDATE/DELETE) take the engine's bulk
        fast path via ``session.execute_batch``: one parse, one
        transaction, one logical WAL record and one fsync barrier for
        the whole batch — and over ``repro://``, one
        ``MSG_EXECUTE_BATCH`` round trip however many rows are queued.
        CALL statements fall back to per-row execution, still inside a
        single transaction.

        The batch is all-or-nothing: a mid-batch failure (constraint
        violation, coercion error) raises :class:`BatchUpdateError`
        with EMPTY ``update_counts`` — no row of the batch was
        committed in autocommit mode, and inside an explicit
        transaction the batch's own work was rolled back while the
        surrounding transaction stays open.  The queue is cleared
        either way.
        """
        self._check_open()
        batch, self._batch = list(self._batch), []
        if not batch:
            return []
        session = self.connection.session
        statement = self._plan.statement
        _EXECUTIONS.increment()
        if isinstance(statement, (ast.Insert, ast.Update, ast.Delete)):
            try:
                return list(session.execute_batch(self.sql, batch))
            except errors.SQLException as exc:
                raise BatchUpdateError(
                    f"batch of {len(batch)} parameter row(s) failed "
                    f"atomically: {exc.message}",
                    [],
                ) from exc
        if isinstance(statement, (ast.Select, ast.SetOperation)):
            raise errors.DataError("queries are not allowed in a batch")
        counts: List[int] = []

        def run() -> List[int]:
            for params in batch:
                result = self._plan.execute(params)
                if result.is_rowset:
                    raise errors.DataError(
                        "queries are not allowed in a batch"
                    )
                counts.append(result.update_count)
            return counts

        try:
            return _run_batch_atomically(self.connection, run)
        except errors.SQLException as exc:
            raise BatchUpdateError(
                f"batch failed after {len(counts)} statement(s): "
                f"{exc.message}",
                counts,
            ) from exc

    def _param_list(self) -> List[Any]:
        if not self._params:
            return []
        highest = max(self._params)
        return [self._params.get(i + 1) for i in range(highest)]

    # ------------------------------------------------------------------
    def _run_prepared(self) -> StatementResult:
        self._check_open()
        _EXECUTIONS.increment()
        tracer = self.connection._tracer or _tracing.current
        if tracer.enabled:
            with tracer.span("dbapi.prepared", sql=self.sql):
                result = self._plan.execute(self._param_list())
        else:
            result = self._plan.execute(self._param_list())
        if (
            self.connection.autocommit
            and self.connection.session.transaction_log.active
        ):
            self.connection.session.commit()
        self._result = result
        self._result_set_index = 0
        return result

    def execute_query(self, sql: Optional[str] = None) -> ResultSet:
        if sql is not None:
            raise errors.DataError(
                "prepared statements execute their own SQL"
            )
        result = self._run_prepared()
        if not result.is_rowset:
            raise errors.DataError(
                "execute_query used for a statement that returns no rows"
            )
        return ResultSet(result, self)

    def execute_update(self, sql: Optional[str] = None) -> int:
        if sql is not None:
            raise errors.DataError(
                "prepared statements execute their own SQL"
            )
        result = self._run_prepared()
        if result.is_rowset:
            raise errors.DataError(
                "execute_update used for a statement that returns rows"
            )
        return result.update_count

    def execute(self, sql: Optional[str] = None) -> bool:
        if sql is not None:
            raise errors.DataError(
                "prepared statements execute their own SQL"
            )
        result = self._run_prepared()
        return result.is_rowset or bool(result.result_sets)


class CallableStatement(PreparedStatement):
    """Stored-procedure invocation with OUT parameters.

    ``?`` markers are numbered 1..n in order of appearance; IN markers are
    bound with ``set_xxx``, OUT markers registered with
    ``register_out_parameter`` and read back with ``get_xxx`` after
    ``execute``.
    """

    def __init__(self, connection: Any, sql: str) -> None:
        super().__init__(connection, sql)
        statement = self._plan.statement
        if not isinstance(statement, ast.Call):
            raise errors.SQLSyntaxError(
                "CallableStatement requires a CALL statement"
            )
        self._call = statement
        self._registered: Dict[int, int] = {}
        self._out_by_marker: Dict[int, Any] = {}
        # marker index (0-based) -> argument position in the CALL
        self._marker_positions: Dict[int, int] = {}
        for position, arg in enumerate(statement.args):
            if isinstance(arg, ast.Parameter):
                self._marker_positions[arg.index] = position

    def register_out_parameter(self, index: int, type_code: int) -> None:
        """Declare marker ``index`` (1-based) as an OUT parameter."""
        if index - 1 not in self._marker_positions:
            raise errors.DataError(
                f"no ? marker at index {index} to register as OUT"
            )
        self._registered[index] = type_code

    def _run_prepared(self) -> StatementResult:
        result = super()._run_prepared()
        self._out_by_marker = {}
        if result.kind == "call":
            for marker, position in self._marker_positions.items():
                if position < len(result.out_values):
                    self._out_by_marker[marker + 1] = \
                        result.out_values[position]
        return result

    # ------------------------------------------------------------------
    # OUT value accessors (1-based marker indexes)
    # ------------------------------------------------------------------
    def _out(self, index: Union[int, str]) -> Any:
        if not isinstance(index, int):
            raise errors.DataError("OUT parameters are accessed by index")
        if index not in self._registered:
            raise errors.DataError(
                f"parameter {index} was not registered as OUT"
            )
        return self._out_by_marker.get(index)

    def get_object(self, index: Union[int, str]) -> Any:
        return self._out(index)

    def get_string(self, index: Union[int, str]) -> Optional[str]:
        value = self._out(index)
        return None if value is None else str(value)

    def get_int(self, index: Union[int, str]) -> Optional[int]:
        value = self._out(index)
        return None if value is None else int(value)

    def get_decimal(
        self, index: Union[int, str]
    ) -> Optional[decimal.Decimal]:
        value = self._out(index)
        if value is None or isinstance(value, decimal.Decimal):
            return value
        return decimal.Decimal(str(value))

    def get_float(self, index: Union[int, str]) -> Optional[float]:
        value = self._out(index)
        return None if value is None else float(value)

    def get_boolean(self, index: Union[int, str]) -> Optional[bool]:
        value = self._out(index)
        return None if value is None else bool(value)
