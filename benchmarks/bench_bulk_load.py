"""Bulk-load benchmark: star-schema ingest, per-row vs batch.

A small star schema (two dimension tables plus a fact table) is loaded
the way an ETL job would: resolve each incoming record's dimension keys,
then insert the fact row.  Two arms load the same fact rows into a
durable database:

* **per_row** — one autocommit INSERT per fact: one parse, one WAL
  record, one group-commit fsync wait, and (remotely) one round trip
  per row;
* **batch** — the same rows through the batch fast path
  (``Cursor.executemany`` / ``Session.execute_batch``): one parse, one
  transaction, one logical WAL record and fsync barrier, and one
  ``MSG_EXECUTE_BATCH`` frame for the entire load.

Both arms run locally (in-process durable database) and remotely
(``repro://`` against a durable server).  ``speedup`` is the smaller of
the two batch-over-per-row rows/sec ratios, so the acceptance floor
(>= 10x full, >= 5x smoke) must hold on both paths.

Usage::

    PYTHONPATH=src python benchmarks/bench_bulk_load.py [--facts N]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from typing import Any, Dict, List, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

PRODUCTS = [
    ("prod-%03d" % n, ("widget", "gadget", "gizmo", "sprocket")[n % 4])
    for n in range(40)
]
STORES = [
    ("store-%02d" % n, ("CA", "NY", "TX", "WA", "IL")[n % 5])
    for n in range(12)
]

SCHEMA = (
    "create table dim_product (id integer unique, sku varchar(20), "
    "category varchar(20))",
    "create table dim_store (id integer unique, code varchar(20), "
    "state varchar(5))",
    "create table fact_sales (product_id integer, store_id integer, "
    "quantity integer, cents integer)",
)

FACT_INSERT = "insert into fact_sales values (?, ?, ?, ?)"


def _records(facts: int) -> List[Tuple[str, str, int, int]]:
    """Incoming ETL records: (sku, store code, quantity, cents)."""
    return [
        (
            PRODUCTS[n % len(PRODUCTS)][0],
            STORES[n % len(STORES)][0],
            1 + n % 7,
            99 + n % 1000,
        )
        for n in range(facts)
    ]


def _load_dimensions(session) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Populate the dimensions (batch, naturally) and return the
    sku -> id and store-code -> id lookup maps an ETL job would build."""
    session.execute_batch(
        "insert into dim_product values (?, ?, ?)",
        [[n, sku, cat] for n, (sku, cat) in enumerate(PRODUCTS)],
    )
    session.execute_batch(
        "insert into dim_store values (?, ?, ?)",
        [[n, code, state] for n, (code, state) in enumerate(STORES)],
    )
    products = {
        row[1]: row[0]
        for row in session.execute("select id, sku from dim_product").rows
    }
    stores = {
        row[1]: row[0]
        for row in session.execute("select id, code from dim_store").rows
    }
    return products, stores


def _fact_rows(
    records, products: Dict[str, int], stores: Dict[str, int]
) -> List[List[Any]]:
    """Dimension lookups: resolve each record to a fact row."""
    return [
        [products[sku], stores[code], quantity, cents]
        for sku, code, quantity, cents in records
    ]


def _arm(label: str, rows: int, seconds: float) -> Dict[str, Any]:
    return {
        "arm": label,
        "rows": rows,
        "seconds": seconds,
        "rows_per_second": rows / seconds if seconds else float("inf"),
    }


def _run_local(facts: int) -> Dict[str, Any]:
    from repro.engine.durability import open_database

    records = _records(facts)
    arms = {}
    for label in ("per_row", "batch"):
        base = tempfile.mkdtemp(prefix="bench_bulk_")
        db = open_database(
            base, name="bulk", group_window=0.005, group_size=16,
            checkpoint_interval=0,
        )
        try:
            session = db.create_session(autocommit=True)
            for ddl in SCHEMA:
                session.execute(ddl)
            products, stores = _load_dimensions(session)
            start = time.perf_counter()
            fact_rows = _fact_rows(records, products, stores)
            if label == "batch":
                session.execute_batch(FACT_INSERT, fact_rows)
            else:
                for row in fact_rows:
                    session.execute(FACT_INSERT, row)
            elapsed = time.perf_counter() - start
            [[count]] = session.execute(
                "select count(*) from fact_sales"
            ).rows
            assert count == facts, (count, facts)
            arms[label] = _arm(label, facts, elapsed)
        finally:
            db.close()
            shutil.rmtree(base, ignore_errors=True)
    speedup = (
        arms["batch"]["rows_per_second"]
        / arms["per_row"]["rows_per_second"]
    )
    return {"arms": list(arms.values()), "speedup": speedup}


def _run_remote(facts: int) -> Dict[str, Any]:
    import repro
    from repro.server import ReproServer

    records = _records(facts)
    arms = {}
    for label in ("per_row", "batch"):
        base = tempfile.mkdtemp(prefix="bench_bulk_srv_")
        server = ReproServer(
            data_dir=base,
            group_window=0.005,
            group_size=16,
            checkpoint_interval=0,
        ).start_background()
        try:
            url = f"repro://127.0.0.1:{server.port}/bulk"
            conn = repro.connect(url)
            cur = conn.cursor()
            for ddl in SCHEMA:
                cur.execute(ddl)
            products, stores = _load_dimensions(conn.session)
            prepared = conn.prepare_statement(FACT_INSERT)
            start = time.perf_counter()
            fact_rows = _fact_rows(records, products, stores)
            if label == "batch":
                cur.executemany(FACT_INSERT, fact_rows)
            else:
                for product_id, store_id, quantity, cents in fact_rows:
                    prepared.set_int(1, product_id)
                    prepared.set_int(2, store_id)
                    prepared.set_int(3, quantity)
                    prepared.set_int(4, cents)
                    prepared.execute_update()
            elapsed = time.perf_counter() - start
            cur.execute("select count(*) from fact_sales")
            assert cur.fetchone() == (facts,)
            conn.close()
            arms[label] = _arm(label, facts, elapsed)
        finally:
            server.stop_background()
            repro.registry.clear()
            shutil.rmtree(base, ignore_errors=True)
    speedup = (
        arms["batch"]["rows_per_second"]
        / arms["per_row"]["rows_per_second"]
    )
    return {"arms": list(arms.values()), "speedup": speedup}


def bench_bulk_load(facts: int) -> Dict[str, Any]:
    """Run both paths; ``speedup`` is the weaker of the two ratios."""
    local = _run_local(facts)
    remote = _run_remote(facts)
    return {
        "experiment": "bulk_load",
        "facts": facts,
        "local": local,
        "remote": remote,
        "speedup_local": local["speedup"],
        "speedup_remote": remote["speedup"],
        "speedup": min(local["speedup"], remote["speedup"]),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--facts", type=int, default=2000)
    args = parser.parse_args(argv)
    result = bench_bulk_load(args.facts)
    json.dump(result, sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
