"""From-scratch in-memory relational engine.

This package is the substrate standing in for the commercial DBMSs
(Oracle, Sybase ASA, DB2, ...) the paper's SQLJ implementations targeted.
It provides a SQL lexer/parser, a catalog with tables, views, routines and
user-defined types, an iterator-model executor, session transactions and a
privilege system — everything the SQLJ layers above need to behave as the
paper describes.
"""

from repro.engine.database import Database, Session
from repro.engine.dialects import DIALECTS, Dialect
from repro.engine.persistence import load_database, save_database

__all__ = [
    "Database",
    "Session",
    "Dialect",
    "DIALECTS",
    "save_database",
    "load_database",
]
