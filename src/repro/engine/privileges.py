"""Privilege bookkeeping (GRANT / REVOKE).

The paper's Part 1 and Part 2 sections use four privilege surfaces:

* table privileges (SELECT/INSERT/UPDATE/DELETE),
* EXECUTE on the SQL names of external routines,
* USAGE on installed archives (``grant usage on routines1_jar to smith``),
* USAGE on datatypes (``grant usage on datatype addr to public``).

Owners implicitly hold every privilege on their objects, the database
administrator holds everything, and the pseudo-grantee ``public`` reaches
all users.  Routines run with definer's rights (the paper: "Methods run
with 'definer's rights'"), implemented by
:meth:`repro.engine.database.Session.impersonate`.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Set, Tuple

from repro import errors

__all__ = ["PrivilegeManager", "TABLE_PRIVILEGES"]

TABLE_PRIVILEGES = ("SELECT", "INSERT", "UPDATE", "DELETE")

_VALID = {
    "TABLE": set(TABLE_PRIVILEGES) | {"ALL"},
    "ROUTINE": {"EXECUTE"},
    "DATATYPE": {"USAGE"},
    "PAR": {"USAGE"},
}


class PrivilegeManager:
    """Tracks grants per (object kind, object name)."""

    def __init__(self, admin_user: str) -> None:
        self.admin_user = admin_user
        # (kind, object) -> privilege -> set of grantees.  Mutation is
        # serialized by the lock; `holds` checks read granted sets with
        # frozen copies so concurrent GRANT/REVOKE never corrupts them.
        self._grants: Dict[Tuple[str, str], Dict[str, Set[str]]] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _validate(self, privilege: str, kind: str) -> List[str]:
        if kind not in _VALID:
            raise errors.CatalogError(f"unknown object kind {kind!r}")
        if privilege not in _VALID[kind]:
            raise errors.CatalogError(
                f"privilege {privilege} cannot be granted on a {kind}"
            )
        if privilege == "ALL":
            return list(TABLE_PRIVILEGES)
        return [privilege]

    def grant(
        self,
        privilege: str,
        kind: str,
        object_name: str,
        grantees: List[str],
        grantor: str,
        owner: str,
    ) -> None:
        if grantor not in (owner, self.admin_user):
            raise errors.PrivilegeError(
                f"user {grantor!r} may not grant on {object_name!r} "
                f"(owner {owner!r})"
            )
        with self._lock:
            for actual in self._validate(privilege, kind):
                slot = self._grants.setdefault((kind, object_name), {})
                holders = slot.get(actual, frozenset())
                slot[actual] = holders | set(grantees)

    def revoke(
        self,
        privilege: str,
        kind: str,
        object_name: str,
        grantees: List[str],
        revoker: str,
        owner: str,
    ) -> None:
        if revoker not in (owner, self.admin_user):
            raise errors.PrivilegeError(
                f"user {revoker!r} may not revoke on {object_name!r}"
            )
        with self._lock:
            for actual in self._validate(privilege, kind):
                slot = self._grants.get((kind, object_name), {})
                holders = slot.get(actual)
                if holders:
                    slot[actual] = holders - set(grantees)

    # ------------------------------------------------------------------
    def holds(
        self,
        user: str,
        privilege: str,
        kind: str,
        object_name: str,
        owner: str,
    ) -> bool:
        if user in (owner, self.admin_user):
            return True
        # Lock-free read: grant/revoke replace the holder set wholesale
        # (copy-on-write above), so this sees a consistent snapshot.
        holders = self._grants.get((kind, object_name), {}).get(
            privilege, frozenset()
        )
        return user in holders or "public" in holders

    def require(
        self,
        user: str,
        privilege: str,
        kind: str,
        object_name: str,
        owner: str,
    ) -> None:
        if not self.holds(user, privilege, kind, object_name, owner):
            raise errors.PrivilegeError(
                f"user {user!r} lacks {privilege} on {kind.lower()} "
                f"{object_name!r}"
            )

    def drop_object(self, kind: str, object_name: str) -> None:
        """Forget grants when an object is dropped."""
        with self._lock:
            self._grants.pop((kind, object_name), None)
