"""Query planner: AST → compiled operator tree.

Responsible for name resolution (FROM-clause shapes, select-list aliases,
star expansion), aggregate rewriting (GROUP BY keys and aggregate calls
become columns of an intermediate shape), ORDER BY alias/position
substitution, and privilege checks on referenced relations.

The planner is rule-based (no cost model), but no longer "scans feed
nested-loop joins" only.  Three rewrites build the fast path:

* **predicate pushdown** — WHERE conjuncts are routed to the deepest
  operator that can evaluate them: onto individual scans, through the
  projections of simple derived tables, and into the inputs of joins
  (with the standard outer-join restrictions: only the non-null-padded
  side of an outer join may be filtered early);
* **index selection** — a pushed-down sargable conjunct (``col = v``,
  ``col < v``, ``col BETWEEN a AND b`` …) over an indexed column turns
  its SeqScan into an :class:`IndexScan` point/range probe;
* **hash joins** — equality join conjuncts whose two sides come from
  the two join inputs (from ON or from pushed WHERE conjuncts) become
  :class:`HashJoin` keys; non-equi joins and type-incompatible keys
  fall back to :class:`NestedLoopJoin`.

All three are gated by :class:`PlannerOptions`
(``database.planner_options``) so benchmarks can A/B them; with every
option off the planner reproduces the original scans-feed-nested-loops
plans.  Plans remain deterministic for the benchmark harness.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, List, Optional, Sequence, Set, Tuple

from repro import errors
from repro.engine import ast
from repro.engine.catalog import Table, View
from repro.engine.executor import (
    AggregateSpec,
    Distinct,
    Filter,
    GroupAggregate,
    HashJoin,
    IndexScan,
    Limit,
    NestedLoopJoin,
    Operator,
    Project,
    QueryPlan,
    SeqScan,
    SingleRow,
    Sort,
    UnionOp,
)
from repro.engine.expressions import (
    ColumnInfo,
    Compiled,
    ExpressionCompiler,
    RowShape,
)
from repro.engine.virtual import VirtualScan, VirtualTable
from repro.sqltypes import (
    DecimalType,
    DoubleType,
    IntegerType,
    TypeDescriptor,
    common_supertype,
)
from repro.sqltypes import typecodes

__all__ = [
    "plan_query",
    "table_shape",
    "PlannerOptions",
    "DEFAULT_PLANNER_OPTIONS",
    "COST_SEQ_IO",
    "COST_RANDOM_IO",
]

#: Cost units, after the classic System R shape: touching a row in heap
#: order costs 1, touching a row through an index costs 4 (the probe is
#: "random I/O" — bucket lookup plus version-chain chase).  The absolute
#: numbers only matter relative to each other; the seqscan-vs-IndexScan
#: crossover sits at selectivity = COST_SEQ_IO / COST_RANDOM_IO = 25%.
COST_SEQ_IO = 1.0
COST_RANDOM_IO = 4.0

#: Selectivity guessed for predicates statistics cannot estimate.
_GUESS_SELECTIVITY = 1.0 / 3.0

#: Building a hash-table entry costs about twice probing one; this is
#: the asymmetry that makes the smaller input the better build side.
_HASH_BUILD_FACTOR = 2.0


@dataclasses.dataclass(frozen=True)
class PlannerOptions:
    """Feature switches for the planner's fast-path rewrites.

    ``cost_based`` gates the ANALYZE-statistics cost model: the
    seqscan-vs-IndexScan crossover, HashJoin build-side selection, and
    greedy join reordering.  Tables that have never been ANALYZEd have
    no statistics, so with ``cost_based`` on but no stats the planner
    makes exactly the rule-based choices it always made.
    """

    predicate_pushdown: bool = True
    index_scans: bool = True
    hash_joins: bool = True
    cost_based: bool = True


DEFAULT_PLANNER_OPTIONS = PlannerOptions()


def _options(session: Any) -> PlannerOptions:
    database = getattr(session, "database", None)
    options = getattr(database, "planner_options", None)
    return options if options is not None else DEFAULT_PLANNER_OPTIONS


def _predicate_summary(expression: ast.Expression) -> Optional[str]:
    """Short SQL rendering of a predicate for EXPLAIN's Filter lines."""
    from repro.engine.render import render_expression

    try:
        text = render_expression(expression)
    except errors.SQLException:
        return None
    if len(text) > 60:
        text = text[:57] + "..."
    return text


def _conjuncts_summary(
    conjuncts: Sequence[ast.Expression],
) -> Optional[str]:
    """EXPLAIN text for exactly the conjuncts an operator enforces.

    Built per-operator so a pushed-down predicate is summarised on the
    operator it actually landed on, not on the WHERE clause's original
    position.
    """
    parts = [_predicate_summary(c) for c in conjuncts]
    kept = [p for p in parts if p]
    return " AND ".join(kept) if kept else None


def table_shape(table: Table, alias: Optional[str] = None) -> RowShape:
    """Row shape of a base table (optionally under an alias)."""
    qualifier = alias or table.name
    return RowShape(
        [
            ColumnInfo(qualifier, column.name, column.descriptor)
            for column in table.columns
        ]
    )


# ---------------------------------------------------------------------------
# AST utilities
# ---------------------------------------------------------------------------

_SUBQUERY_FIELDS = (ast.ScalarSubquery, ast.Exists, ast.InSubquery)


def _walk(node: Any, visit: Callable[[ast.Node], bool]) -> None:
    """Depth-first walk; ``visit`` returns False to stop descending.

    Does not descend into nested query expressions — their aggregates and
    references belong to the inner query level.
    """
    if not isinstance(node, ast.Node):
        return
    if not visit(node):
        return
    if isinstance(node, _SUBQUERY_FIELDS):
        return
    if not dataclasses.is_dataclass(node):
        return
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if isinstance(value, ast.Node):
            _walk(value, visit)
        elif isinstance(value, list):
            for item in value:
                _walk(item, visit)


def _transform(
    node: Any, replace: Callable[[ast.Node], Optional[ast.Node]]
) -> Any:
    """Bottom-up-ish rewrite: ``replace`` may substitute any node."""
    if not isinstance(node, ast.Node):
        return node
    replacement = replace(node)
    if replacement is not None:
        return replacement
    if isinstance(node, _SUBQUERY_FIELDS) or not dataclasses.is_dataclass(
        node
    ):
        return node
    changes = {}
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if isinstance(value, ast.Node):
            new_value = _transform(value, replace)
            if new_value is not value:
                changes[field.name] = new_value
        elif isinstance(value, list):
            new_list = [
                _transform(item, replace) if isinstance(item, ast.Node)
                else item
                for item in value
            ]
            if any(a is not b for a, b in zip(new_list, value)):
                changes[field.name] = new_list
    if changes:
        return dataclasses.replace(node, **changes)
    return node


def _collect_aggregates(node: Any, found: List[ast.AggregateCall]) -> None:
    def visit(candidate: ast.Node) -> bool:
        if isinstance(candidate, ast.AggregateCall):
            if not any(candidate == existing for existing in found):
                found.append(candidate)
            return False
        return True

    _walk(node, visit)


def _contains_aggregate(node: Any) -> bool:
    found: List[ast.AggregateCall] = []
    _collect_aggregates(node, found)
    return bool(found)


# ---------------------------------------------------------------------------
# Predicate pushdown: conjunct splitting and source attribution
# ---------------------------------------------------------------------------


def _split_conjuncts(expression: ast.Expression) -> List[ast.Expression]:
    """Flatten a predicate's top-level AND chain into conjuncts."""
    if isinstance(expression, ast.Binary) and expression.op == "AND":
        return _split_conjuncts(expression.left) + _split_conjuncts(
            expression.right
        )
    return [expression]


def _and_all(conjuncts: Sequence[ast.Expression]) -> ast.Expression:
    expression = conjuncts[0]
    for conjunct in conjuncts[1:]:
        expression = ast.Binary("AND", expression, conjunct)
    return expression


class _Scope:
    """Name footprint of one FROM item, computed without planning it."""

    __slots__ = ("aliases", "columns", "opaque")

    def __init__(
        self, aliases: Set[str], columns: Set[str], opaque: bool
    ) -> None:
        self.aliases = aliases
        self.columns = columns
        # An opaque scope's column set is unknown (star-expanding derived
        # table, unresolvable relation …): unqualified names can never be
        # attributed with confidence while one is present.
        self.opaque = opaque


def _query_output_names(query: ast.Node) -> Optional[List[str]]:
    """Output column names of a query expression, or None if unknown."""
    if isinstance(query, ast.SetOperation):
        return _query_output_names(query.left)
    if not isinstance(query, ast.Select):
        return None
    names: List[str] = []
    for position, item in enumerate(query.items):
        if not isinstance(item, ast.SelectItem):
            return None  # star expansion needs the inner shape
        names.append(_output_name(item.expression, item.alias, position))
    return names


def _ref_scope(ref: ast.TableRef, session: Any) -> _Scope:
    if isinstance(ref, ast.TableName):
        alias = ref.alias or ref.name
        try:
            relation = session.catalog.get_relation(ref.name)
        except errors.SQLException:
            # Planning the item will raise the real error; until then the
            # scope is opaque so nothing is routed by guesswork.
            return _Scope({alias}, set(), True)
        if isinstance(relation, View):
            names = relation.column_names or _query_output_names(
                relation.query
            )
            if names is None:
                return _Scope({alias}, set(), True)
            return _Scope({alias}, set(names), False)
        return _Scope({alias}, {c.name for c in relation.columns}, False)
    if isinstance(ref, ast.SubqueryRef):
        names = _query_output_names(ref.query)
        if names is None:
            return _Scope({ref.alias}, set(), True)
        return _Scope({ref.alias}, set(names), False)
    if isinstance(ref, ast.Join):
        left = _ref_scope(ref.left, session)
        right = _ref_scope(ref.right, session)
        return _Scope(
            left.aliases | right.aliases,
            left.columns | right.columns,
            left.opaque or right.opaque,
        )
    return _Scope(set(), set(), True)


def _attribute_column(
    ref: ast.ColumnRef, scopes: Sequence[_Scope]
) -> Optional[int]:
    """Index of the single scope providing ``ref``, else None.

    None means "cannot attribute": an outer reference, an ambiguous
    name, or a name that an opaque scope might also provide.  Such
    conjuncts stay where the original planner would have evaluated them,
    preserving ambiguity errors.
    """
    if ref.table is not None:
        matches = [
            i for i, s in enumerate(scopes) if ref.table in s.aliases
        ]
        return matches[0] if len(matches) == 1 else None
    matches = [i for i, s in enumerate(scopes) if ref.name in s.columns]
    if len(matches) != 1:
        return None
    if any(s.opaque for i, s in enumerate(scopes) if i != matches[0]):
        return None
    return matches[0]


def _conjunct_sources(
    conjunct: ast.Expression, scopes: Sequence[_Scope]
) -> Tuple[Set[int], bool]:
    """(scope indexes referenced, routable?) for one conjunct.

    Subqueries make a conjunct unroutable: they may be correlated with
    any FROM item, so it is evaluated where the original planner would
    have put it.
    """
    sources: Set[int] = set()
    routable = True

    def visit(node: ast.Node) -> bool:
        nonlocal routable
        if isinstance(node, _SUBQUERY_FIELDS):
            routable = False
            return False
        if isinstance(node, ast.ColumnRef):
            index = _attribute_column(node, scopes)
            if index is None:
                routable = False
            else:
                sources.add(index)
        return True

    _walk(conjunct, visit)
    return sources, routable


# ---------------------------------------------------------------------------
# Index selection and type-family gates
# ---------------------------------------------------------------------------


def _type_family(descriptor: Optional[TypeDescriptor]) -> Optional[Any]:
    code = getattr(descriptor, "type_code", None)
    if code is None:
        return None
    if code == typecodes.BOOLEAN or typecodes.is_numeric(code):
        return "numeric"  # booleans hash and compare as 0/1
    if typecodes.is_character(code):
        return "character"
    if code in (typecodes.PY_OBJECT, typecodes.STRUCT, typecodes.OTHER):
        return None  # no reliable hash or total order
    return code  # temporal/binary families: exact code match only


def _compatible_families(
    left: Optional[TypeDescriptor], right: Optional[TypeDescriptor]
) -> bool:
    """True when values of the two types compare without InvalidCastError.

    :func:`repro.sqltypes.compare_values` *raises* for mismatched scalar
    domains (``1 = 'one'``), so an index probe or hash-join key may only
    replace per-row evaluation when the families are known compatible —
    otherwise the rewrite would silently swallow the error.
    """
    lf, rf = _type_family(left), _type_family(right)
    return lf is not None and lf == rf


def _is_probe_expression(expr: ast.Expression) -> bool:
    """True when ``expr`` can be evaluated once, before the scan starts
    (no column references, subqueries, or aggregates)."""
    ok = True

    def visit(node: ast.Node) -> bool:
        nonlocal ok
        if isinstance(
            node, (ast.ColumnRef, ast.AggregateCall) + _SUBQUERY_FIELDS
        ):
            ok = False
            return False
        return True

    _walk(expr, visit)
    return ok


def _bare_column_position(
    expr: ast.Expression, shape: RowShape
) -> Optional[int]:
    if not isinstance(expr, ast.ColumnRef):
        return None
    try:
        return shape.find(expr.name, expr.table)
    except errors.SQLException:  # pragma: no cover - single-table shape
        return None


_FLIPPED_OPS = {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _sargable_forms(
    conjunct: ast.Expression, shape: RowShape
) -> List[Tuple[int, str, ast.Expression]]:
    """Decompose ``conjunct`` into index-probe forms, if possible.

    Returns ``[(column_position, op, value_expr), ...]`` where every
    entry must be honoured together for the conjunct to be consumed
    (BETWEEN contributes a lower and an upper bound), or ``[]`` when the
    conjunct is not sargable.
    """
    if isinstance(conjunct, ast.Between) and not conjunct.negated:
        position = _bare_column_position(conjunct.operand, shape)
        if (
            position is not None
            and _is_probe_expression(conjunct.low)
            and _is_probe_expression(conjunct.high)
        ):
            return [
                (position, ">=", conjunct.low),
                (position, "<=", conjunct.high),
            ]
        return []
    if not isinstance(conjunct, ast.Binary):
        return []
    if conjunct.op not in ("=", "<", "<=", ">", ">="):
        return []
    for column_side, value_side, op in (
        (conjunct.left, conjunct.right, conjunct.op),
        (conjunct.right, conjunct.left, _FLIPPED_OPS[conjunct.op]),
    ):
        position = _bare_column_position(column_side, shape)
        if position is not None and _is_probe_expression(value_side):
            return [(position, op, value_side)]
    return []


def _probe_type_ok(
    column_descriptor: TypeDescriptor,
    value_expr: ast.Expression,
    compiled: Compiled,
) -> bool:
    if isinstance(value_expr, ast.Parameter):
        # Runtime-typed: a mistyped parameter makes the probe empty
        # rather than raising the per-row InvalidCastError a Filter
        # would (the tolerance SQLite shows).  See docs/PERFORMANCE.md.
        return True
    return _compatible_families(column_descriptor, compiled.descriptor)


# ---------------------------------------------------------------------------
# Cost model (ANALYZE statistics)
# ---------------------------------------------------------------------------


def _table_stats(session: Any, table: Table) -> Any:
    """``TableStatistics`` for ``table`` or None if never ANALYZEd."""
    catalog = getattr(session, "catalog", None)
    getter = getattr(catalog, "get_statistics", None)
    if getter is None:
        return None
    return getter(table.name)


def _annotate(
    operator: Operator,
    rows: Optional[float],
    cost: Optional[float],
) -> Operator:
    """Leave the cost model's estimates on the operator for EXPLAIN."""
    if rows is not None:
        operator.estimated_rows = float(rows)
    if cost is not None:
        operator.estimated_cost = float(cost)
    return operator


def _estimated(operator: Operator) -> Tuple[Optional[float], Optional[float]]:
    return (
        getattr(operator, "estimated_rows", None),
        getattr(operator, "estimated_cost", None),
    )


def _rejected_alternative(
    operator: Operator,
    description: str,
    cost: Optional[float],
    rows: Optional[float] = None,
    reason: str = "higher estimated cost",
) -> None:
    from repro.engine.explain import PlanAlternative

    alternatives = getattr(operator, "rejected", None)
    if alternatives is None:
        alternatives = []
        operator.rejected = alternatives
    alternatives.append(
        PlanAlternative(
            description=description,
            estimated_cost=cost,
            estimated_rows=rows,
            reason=reason,
        )
    )


def _conjunct_selectivity(
    stats: Any,
    table: Table,
    shape: RowShape,
    conjunct: ast.Expression,
) -> float:
    """Estimated fraction of rows satisfying ``conjunct``."""
    forms = _sargable_forms(conjunct, shape)
    if not forms:
        return _GUESS_SELECTIVITY
    selectivity = 1.0
    for position, op, value_expr in forms:
        column = stats.column(table.columns[position].name)
        if column is None:
            selectivity *= _GUESS_SELECTIVITY
        elif op == "=":
            selectivity *= column.eq_selectivity()
        elif isinstance(value_expr, ast.Literal):
            selectivity *= column.range_selectivity(op, value_expr.value)
        else:
            selectivity *= _GUESS_SELECTIVITY
    return min(max(selectivity, 1e-9), 1.0)


def _conjuncts_selectivity(
    stats: Any,
    table: Table,
    shape: RowShape,
    conjuncts: Sequence[ast.Expression],
) -> float:
    selectivity = 1.0
    for conjunct in conjuncts:
        selectivity *= _conjunct_selectivity(stats, table, shape, conjunct)
    return selectivity


def _try_index_scan(
    scan: SeqScan,
    shape: RowShape,
    conjuncts: List[ast.Expression],
    session: Any,
    outer: Optional[ExpressionCompiler],
) -> Tuple[Operator, List[ast.Expression]]:
    """Replace a SeqScan with an IndexScan if the conjuncts allow it.

    Returns the (possibly unchanged) scan operator and the conjuncts a
    Filter above it must still enforce.
    """
    table = scan.table
    compiler = ExpressionCompiler(RowShape([]), session, outer)
    equalities: dict = {}  # column position -> (probe fn, conjunct)
    ranges: dict = {}  # column position -> [(op, probe fn, conjunct)]
    for conjunct in conjuncts:
        forms = _sargable_forms(conjunct, shape)
        if not forms:
            continue
        prepared = []
        for position, op, value_expr in forms:
            try:
                compiled = compiler.compile(value_expr)
            except errors.SQLException:
                prepared = None
                break
            descriptor = table.columns[position].descriptor
            if not _probe_type_ok(descriptor, value_expr, compiled):
                prepared = None
                break
            prepared.append((position, op, compiled.fn))
        if prepared is None:
            continue
        for position, op, fn in prepared:
            if op == "=":
                equalities.setdefault(position, (fn, conjunct))
            else:
                ranges.setdefault(position, []).append((op, fn, conjunct))

    # Full-key equality probe: every index column pinned by `col = v`.
    for index in table.indexes:
        positions = [table.column_position(n) for n in index.column_names]
        if not all(p in equalities for p in positions):
            continue
        used_ids = {id(equalities[p][1]) for p in positions}
        used = [c for c in conjuncts if id(c) in used_ids]
        remaining = [c for c in conjuncts if id(c) not in used_ids]
        operator = IndexScan(
            index,
            table,
            equal=[equalities[p][0] for p in positions],
            description=_conjuncts_summary(used),
        )
        return operator, remaining

    # Range probe over a single-column index.
    for index in table.indexes:
        if len(index.column_names) != 1:
            continue
        position = table.column_position(index.column_names[0])
        entries = ranges.get(position)
        if not entries:
            continue
        lower = upper = None
        lower_inclusive = upper_inclusive = True
        used: List[ast.Expression] = []
        for conjunct in conjuncts:
            forms = [
                (op, fn) for op, fn, c in entries if c is conjunct
            ]
            if not forms:
                continue
            needs_lower = any(op in (">", ">=") for op, _ in forms)
            needs_upper = any(op in ("<", "<=") for op, _ in forms)
            # A conjunct is consumed only if all of its bounds fit the
            # one slot each the probe offers (first bound wins; extra
            # bounds stay in the Filter).
            if (needs_lower and lower is not None) or (
                needs_upper and upper is not None
            ):
                continue
            for op, fn in forms:
                if op == ">":
                    lower, lower_inclusive = fn, False
                elif op == ">=":
                    lower, lower_inclusive = fn, True
                elif op == "<":
                    upper, upper_inclusive = fn, False
                else:
                    upper, upper_inclusive = fn, True
            used.append(conjunct)
        if lower is None and upper is None:
            continue
        remaining = [
            c for c in conjuncts if not any(c is u for u in used)
        ]
        operator = IndexScan(
            index,
            table,
            lower=lower,
            upper=upper,
            lower_inclusive=lower_inclusive,
            upper_inclusive=upper_inclusive,
            description=_conjuncts_summary(used),
        )
        return operator, remaining

    return scan, conjuncts


def _apply_conjuncts(
    operator: Operator,
    shape: RowShape,
    conjuncts: List[ast.Expression],
    session: Any,
    outer: Optional[ExpressionCompiler],
    options: PlannerOptions,
) -> Operator:
    """Enforce ``conjuncts`` on top of ``operator``.

    A SeqScan over an indexed table may become an IndexScan; whatever
    the probe cannot guarantee stays in a Filter whose EXPLAIN text
    lists exactly the conjuncts it enforces.
    """
    if not conjuncts:
        return operator
    remaining = list(conjuncts)
    stats = None
    table = None
    if options.cost_based and isinstance(operator, SeqScan):
        table = operator.table
        stats = _table_stats(session, table)
    if (
        options.index_scans
        and isinstance(operator, SeqScan)
        and operator.table.indexes
    ):
        scan = operator
        candidate, candidate_remaining = _try_index_scan(
            scan, shape, remaining, session, outer
        )
        if candidate is scan:
            pass  # no usable index; nothing to decide
        elif stats is None:
            # Rule-based behaviour: an index probe always wins.
            operator, remaining = candidate, candidate_remaining
        else:
            # Cost the seqscan-vs-IndexScan crossover.  The probe
            # touches est_match rows at random-I/O cost; the seqscan
            # touches every row at sequential cost.
            consumed = [
                c
                for c in remaining
                if not any(c is r for r in candidate_remaining)
            ]
            row_count = float(stats.row_count)
            est_match = row_count * _conjuncts_selectivity(
                stats, table, shape, consumed
            )
            seq_cost = row_count * COST_SEQ_IO
            index_cost = COST_RANDOM_IO * est_match + 1.0
            index_desc = (
                f"IndexScan using {candidate.index.name} "
                f"on {table.name}"
            )
            if index_cost <= seq_cost:
                operator, remaining = candidate, candidate_remaining
                _annotate(operator, est_match, index_cost)
                _rejected_alternative(
                    operator,
                    f"SeqScan on {table.name}",
                    seq_cost,
                    row_count,
                )
            else:
                _annotate(scan, row_count, seq_cost)
                _rejected_alternative(
                    scan, index_desc, index_cost, est_match
                )
    if stats is not None and _estimated(operator)[0] is None:
        row_count = float(stats.row_count)
        _annotate(operator, row_count, row_count * COST_SEQ_IO)
    if not remaining:
        return operator
    compiler = ExpressionCompiler(shape, session, outer)
    filtered = Filter(
        operator,
        compiler.compile_predicate(_and_all(remaining)),
        description=_conjuncts_summary(remaining),
    )
    if stats is not None:
        in_rows, in_cost = _estimated(operator)
        est_out = float(stats.row_count) * _conjuncts_selectivity(
            stats, table, shape, list(conjuncts)
        )
        if in_rows is not None and in_cost is not None:
            _annotate(filtered, est_out, in_cost + in_rows)
        else:
            _annotate(filtered, est_out, None)
    return filtered


def _push_into_query(
    query: ast.Node,
    conjuncts: List[ast.Expression],
    alias: Optional[str],
) -> Tuple[ast.Node, List[ast.Expression]]:
    """Rewrite conjuncts into the WHERE of a simple derived SELECT.

    Only projection-through-rename is attempted: the derived query must
    be a plain SELECT (no DISTINCT / GROUP BY / HAVING / LIMIT), and a
    conjunct is only moved when every column it references maps back to
    a plain column or literal of the inner query — duplicating a
    computed expression could double-evaluate it.  The rewrite never
    mutates shared AST nodes (:func:`_transform` copies).
    """
    if not isinstance(query, ast.Select):
        return query, conjuncts
    if (
        query.distinct
        or query.group_by
        or query.having is not None
        or query.limit is not None
        or query.offset is not None
    ):
        return query, conjuncts
    mapping: dict = {}
    for position, item in enumerate(query.items):
        if not isinstance(item, ast.SelectItem):
            return query, conjuncts
        if _contains_aggregate(item.expression):
            return query, conjuncts
        name = _output_name(item.expression, item.alias, position)
        if name in mapping:
            return query, conjuncts  # duplicate output name: ambiguous
        mapping[name] = item.expression

    pushed_in: List[ast.Expression] = []
    remaining: List[ast.Expression] = []
    for conjunct in conjuncts:
        ok = True

        def replace(node: ast.Node) -> Optional[ast.Node]:
            nonlocal ok
            if isinstance(node, ast.ColumnRef):
                if node.table is not None and node.table != alias:
                    ok = False
                    return None
                inner = mapping.get(node.name)
                if inner is None or not isinstance(
                    inner, (ast.ColumnRef, ast.Literal)
                ):
                    ok = False
                    return None
                return inner
            return None

        rewritten = _transform(conjunct, replace)
        if ok:
            pushed_in.append(rewritten)
        else:
            remaining.append(conjunct)
    if not pushed_in:
        return query, conjuncts
    existing = [query.where] if query.where is not None else []
    new_where = _and_all(existing + pushed_in)
    return dataclasses.replace(query, where=new_where), remaining


# ---------------------------------------------------------------------------
# FROM clause
# ---------------------------------------------------------------------------


def _plan_table_ref(
    ref: ast.TableRef,
    session: Any,
    outer: Optional[ExpressionCompiler],
    pushed: Optional[List[ast.Expression]] = None,
) -> Tuple[Operator, RowShape]:
    """Plan one FROM item, enforcing any pushed-down WHERE conjuncts."""
    pushed = list(pushed or [])
    options = _options(session)
    if isinstance(ref, ast.TableName):
        operator, shape = _plan_named_relation(ref, session)
        operator = _apply_conjuncts(
            operator, shape, pushed, session, outer, options
        )
        return operator, shape
    if isinstance(ref, ast.SubqueryRef):
        query, remaining = ref.query, pushed
        if pushed and options.predicate_pushdown:
            query, remaining = _push_into_query(query, pushed, ref.alias)
        plan, shape = plan_query(query, session, outer=outer)
        shape = shape.with_alias(ref.alias)
        operator = _apply_conjuncts(
            plan.root, shape, remaining, session, outer, options
        )
        return operator, shape
    if isinstance(ref, ast.Join):
        return _plan_join(ref, session, outer, pushed)
    raise errors.FeatureNotSupportedError(
        f"unsupported FROM item {type(ref).__name__}"
    )


def _plan_named_relation(
    ref: ast.TableName, session: Any
) -> Tuple[Operator, RowShape]:
    relation = session.catalog.get_relation(ref.name)
    if isinstance(relation, View):
        session.check_table_privilege("SELECT", ref.name)
        # Views run with definer's rights over their underlying tables.
        with session.impersonate(relation.owner):
            plan, shape = plan_query(relation.query, session)
        if relation.column_names:
            if len(relation.column_names) != len(shape):
                raise errors.CatalogError(
                    f"view {relation.name!r} column list does not match "
                    "its query"
                )
            shape = RowShape(
                [
                    ColumnInfo(None, name, col.descriptor)
                    for name, col in zip(
                        relation.column_names, shape.columns
                    )
                ]
            )
        return plan.root, shape.with_alias(ref.alias or ref.name)
    session.check_table_privilege("SELECT", ref.name)
    if isinstance(relation, VirtualTable):
        # System statistics views: rows are produced at execution time,
        # so even a plan-cache hit reads live numbers.  Pushed conjuncts
        # land in a Filter above the scan (no indexes to exploit).
        return VirtualScan(relation), table_shape(relation, ref.alias)
    scan = SeqScan(relation)
    if _options(session).cost_based:
        stats = _table_stats(session, relation)
        if stats is not None:
            _annotate(
                scan,
                float(stats.row_count),
                float(stats.row_count) * COST_SEQ_IO,
            )
    return scan, table_shape(relation, ref.alias)


def _fold_join(
    kind: str,
    left_op: Operator,
    left_shape: RowShape,
    right_op: Operator,
    right_shape: RowShape,
    conjuncts: List[ast.Expression],
    side_of: Callable[[ast.Expression], Optional[str]],
    session: Any,
    outer: Optional[ExpressionCompiler],
    options: PlannerOptions,
) -> Tuple[Operator, RowShape]:
    """Build the join operator enforcing ``conjuncts``.

    ``side_of(expr)`` classifies an expression as ``"left"``,
    ``"right"`` or neither; equality conjuncts with one pure side each
    (and hash-compatible types on both) become HashJoin keys.  The
    join predicate is always the AND of *all* conjuncts — the hash
    table only pre-filters candidates, it never decides matches.
    """
    merged = left_shape.merge(right_shape)
    compiler = ExpressionCompiler(merged, session, outer)
    left_keys: List[Callable] = []
    right_keys: List[Callable] = []
    if options.hash_joins:
        for conjunct in conjuncts:
            if not isinstance(conjunct, ast.Binary) or conjunct.op != "=":
                continue
            for a, b in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if side_of(a) == "left" and side_of(b) == "right":
                    try:
                        ca = compiler.compile(a)
                        cb = compiler.compile(b)
                    except errors.SQLException:
                        break
                    if _compatible_families(ca.descriptor, cb.descriptor):
                        left_keys.append(ca.fn)
                        right_keys.append(cb.fn)
                    break
    predicate = (
        compiler.compile_predicate(_and_all(conjuncts))
        if conjuncts
        else None
    )
    left_rows, left_cost = _estimated(left_op)
    right_rows, right_cost = _estimated(right_op)
    costed = (
        options.cost_based
        and left_rows is not None
        and right_rows is not None
    )
    if left_keys:
        join_kind = "INNER" if kind == "CROSS" else kind
        build = "right"
        if costed and join_kind == "INNER" and left_rows < right_rows:
            # The smaller input should be materialised into the hash
            # table; the historical rule always built on the right.
            build = "left"
        operator: Operator = HashJoin(
            join_kind,
            left_op,
            right_op,
            left_keys,
            right_keys,
            predicate,
            len(left_shape),
            len(right_shape),
            description=_conjuncts_summary(conjuncts),
            build=build,
        )
        if costed:
            est_out = _hash_join_rows(left_rows, right_rows)
            build_rows = left_rows if build == "left" else right_rows
            probe_rows = right_rows if build == "left" else left_rows
            cost = _hash_join_cost(
                left_cost, right_cost, build_rows, probe_rows, est_out
            )
            _annotate(operator, est_out, cost)
            if build == "left":
                _rejected_alternative(
                    operator,
                    f"HashJoin ({join_kind}) building on the right "
                    f"input (~{right_rows:.0f} rows)",
                    _hash_join_cost(
                        left_cost, right_cost,
                        right_rows, left_rows, est_out,
                    ),
                    est_out,
                )
    else:
        operator = NestedLoopJoin(
            kind,
            left_op,
            right_op,
            predicate,
            len(left_shape),
            len(right_shape),
        )
        if costed:
            if conjuncts:
                est_out = left_rows * right_rows * _GUESS_SELECTIVITY
            else:
                est_out = left_rows * right_rows
            cost = _nested_loop_cost(
                left_cost, right_cost, left_rows, right_rows
            )
            _annotate(operator, est_out, cost)
    return operator, merged


def _hash_join_rows(left_rows: float, right_rows: float) -> float:
    """Equi-join output estimate: the FK-ish ``max(|L|, |R|)`` guess."""
    return max(left_rows, right_rows, 1.0)


def _hash_join_cost(
    left_cost: Optional[float],
    right_cost: Optional[float],
    build_rows: float,
    probe_rows: float,
    out_rows: float,
) -> float:
    return (
        (left_cost or 0.0)
        + (right_cost or 0.0)
        + _HASH_BUILD_FACTOR * build_rows
        + probe_rows
        + out_rows
    )


def _nested_loop_cost(
    left_cost: Optional[float],
    right_cost: Optional[float],
    left_rows: float,
    right_rows: float,
) -> float:
    return (
        (left_cost or 0.0)
        + (right_cost or 0.0)
        + left_rows * max(right_rows, 1.0)
    )


def _plan_join(
    ref: ast.Join,
    session: Any,
    outer: Optional[ExpressionCompiler],
    pushed: Optional[List[ast.Expression]] = None,
) -> Tuple[Operator, RowShape]:
    options = _options(session)
    pushed = list(pushed or [])
    if not options.predicate_pushdown:
        left_op, left_shape = _plan_table_ref(ref.left, session, outer)
        right_op, right_shape = _plan_table_ref(ref.right, session, outer)
        merged = left_shape.merge(right_shape)
        predicate = None
        if ref.condition is not None:
            compiler = ExpressionCompiler(merged, session, outer)
            predicate = compiler.compile_predicate(ref.condition)
        operator: Operator = NestedLoopJoin(
            ref.kind,
            left_op,
            right_op,
            predicate,
            len(left_shape),
            len(right_shape),
        )
        return _apply_conjuncts(
            operator, merged, pushed, session, outer, options
        ), merged

    scopes = [
        _ref_scope(ref.left, session),
        _ref_scope(ref.right, session),
    ]
    kind = ref.kind
    on_conjuncts = (
        _split_conjuncts(ref.condition)
        if ref.condition is not None
        else []
    )
    left_pushed: List[ast.Expression] = []
    right_pushed: List[ast.Expression] = []
    join_list: List[ast.Expression] = []
    above: List[ast.Expression] = []

    # WHERE conjuncts pushed from the enclosing query filter the join's
    # *output*: they may only descend past a side that is never
    # null-extended (an outer join's preserved side keeps them above —
    # filtering early would change which rows get null-extended).
    for conjunct in pushed:
        sources, routable = _conjunct_sources(conjunct, scopes)
        if routable and sources == {0} and kind in (
            "INNER", "CROSS", "LEFT"
        ):
            left_pushed.append(conjunct)
        elif routable and sources == {1} and kind in (
            "INNER", "CROSS", "RIGHT"
        ):
            right_pushed.append(conjunct)
        elif routable and sources and kind in ("INNER", "CROSS"):
            join_list.append(conjunct)
        else:
            above.append(conjunct)

    # ON conjuncts decide *matches*: a one-sided conjunct may descend
    # into the side whose non-matching rows are never emitted (for
    # LEFT, the right input; for RIGHT, the left; both for INNER).
    for conjunct in on_conjuncts:
        sources, routable = _conjunct_sources(conjunct, scopes)
        if routable and sources == {0} and kind in ("INNER", "RIGHT"):
            left_pushed.append(conjunct)
        elif routable and sources == {1} and kind in ("INNER", "LEFT"):
            right_pushed.append(conjunct)
        else:
            join_list.append(conjunct)

    left_op, left_shape = _plan_table_ref(
        ref.left, session, outer, left_pushed
    )
    right_op, right_shape = _plan_table_ref(
        ref.right, session, outer, right_pushed
    )

    def side_of(expr: ast.Expression) -> Optional[str]:
        sources, routable = _conjunct_sources(expr, scopes)
        if not routable or not sources:
            return None
        if sources == {0}:
            return "left"
        if sources == {1}:
            return "right"
        return None

    operator, merged = _fold_join(
        kind,
        left_op,
        left_shape,
        right_op,
        right_shape,
        join_list,
        side_of,
        session,
        outer,
        options,
    )
    return _apply_conjuncts(
        operator, merged, above, session, outer, options
    ), merged


# ---------------------------------------------------------------------------
# SELECT planning
# ---------------------------------------------------------------------------


def _expand_items(
    items: Sequence[ast.Node], shape: RowShape
) -> List[Tuple[ast.Expression, Optional[str]]]:
    """Expand ``*`` / ``t.*`` into explicit column references."""
    expanded: List[Tuple[ast.Expression, Optional[str]]] = []
    for item in items:
        if isinstance(item, ast.StarItem):
            matched = False
            for column in shape.columns:
                if item.table is None or column.alias == item.table:
                    matched = True
                    expanded.append(
                        (
                            ast.ColumnRef(column.name, table=column.alias),
                            column.name,
                        )
                    )
            if not matched:
                raise errors.UndefinedTableError(
                    f"no FROM item called {item.table!r} for "
                    f"{item.table}.*"
                )
        else:
            assert isinstance(item, ast.SelectItem)
            expanded.append((item.expression, item.alias))
    return expanded


def _output_name(
    expr: ast.Expression, alias: Optional[str], position: int
) -> str:
    if alias:
        return alias
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.AttributeRef):
        return expr.attribute
    if isinstance(expr, ast.MethodCall):
        return expr.method
    if isinstance(expr, ast.FunctionCall):
        return expr.name.split(".")[-1]
    if isinstance(expr, ast.AggregateCall):
        return expr.name.lower()
    return f"column{position + 1}"


def _aggregate_result_type(
    call: ast.AggregateCall, argument: Optional[Compiled]
) -> Optional[TypeDescriptor]:
    if call.name == "COUNT":
        return IntegerType()
    arg_type = argument.descriptor if argument else None
    if call.name in ("MIN", "MAX"):
        return arg_type
    if call.name == "SUM":
        if isinstance(arg_type, DecimalType):
            return DecimalType(38, arg_type.scale)
        return arg_type
    # AVG
    if isinstance(arg_type, DecimalType):
        return DecimalType(38, max(arg_type.scale, 6))
    if isinstance(arg_type, DoubleType):
        return DoubleType()
    if arg_type is not None:
        return DecimalType(38, 6)
    return None


def _plan_select(
    select: ast.Select,
    session: Any,
    outer: Optional[ExpressionCompiler],
) -> Tuple[QueryPlan, RowShape]:
    options = _options(session)
    where = select.where
    if where is not None and _contains_aggregate(where):
        raise errors.SQLSyntaxError(
            "aggregates are not allowed in WHERE"
        )

    # 1. FROM (+ WHERE, when pushdown routes its conjuncts itself)
    if select.from_clause:
        if options.predicate_pushdown and where is not None:
            operator, shape = _plan_from_pushdown(
                select, session, outer, options
            )
            where = None  # fully consumed, residual Filters included
        else:
            operator, shape = _plan_table_ref(
                select.from_clause[0], session, outer
            )
            for extra in select.from_clause[1:]:
                right_op, right_shape = _plan_table_ref(
                    extra, session, outer
                )
                operator = NestedLoopJoin(
                    "CROSS", operator, right_op, None, len(shape),
                    len(right_shape),
                )
                shape = shape.merge(right_shape)
    else:
        operator, shape = SingleRow(), RowShape([])

    compiler = ExpressionCompiler(shape, session, outer)

    # 2. WHERE (only when step 1 did not already consume it)
    if where is not None:
        operator = Filter(
            operator,
            compiler.compile_predicate(where),
            description=_predicate_summary(where),
        )

    # 3. Aggregation
    items = _expand_items(select.items, shape)
    needs_aggregation = bool(select.group_by) or select.having is not None \
        or any(_contains_aggregate(expr) for expr, _ in items) \
        or any(_contains_aggregate(o.expression) for o in select.order_by)

    having = select.having
    order_items = list(select.order_by)

    if needs_aggregation:
        operator, shape, items, having, order_items = _plan_aggregation(
            select, session, outer, operator, shape, compiler, items
        )
        compiler = ExpressionCompiler(shape, session, outer)

    # 4. HAVING (already rewritten to post-aggregation shape)
    if having is not None:
        operator = Filter(
            operator,
            compiler.compile_predicate(having),
            description=_predicate_summary(select.having)
            if select.having is not None else None,
        )

    # 5. Projection
    compiled_items = [compiler.compile(expr) for expr, _ in items]
    output_shape = RowShape(
        [
            ColumnInfo(
                expr.table if isinstance(expr, ast.ColumnRef) and alias is
                None else None,
                _output_name(expr, alias, position),
                compiled.descriptor,
            )
            for position, ((expr, alias), compiled) in enumerate(
                zip(items, compiled_items)
            )
        ]
    )

    limit_fn, offset_fn = _compile_limits(select, session)

    if select.distinct:
        operator = Project(operator, [c.fn for c in compiled_items])
        operator = Distinct(operator)
        if order_items:
            rewritten = _substitute_order_targets(
                order_items, items, output_shape
            )
            out_compiler = ExpressionCompiler(output_shape, session, outer)
            keys = [
                (out_compiler.compile_sort_key(o.expression),
                 o.ascending)
                for o in rewritten
            ]
            operator = Sort(operator, keys)
    else:
        if order_items:
            keys = []
            for order in order_items:
                target = _order_source_expression(order.expression, items)
                keys.append(
                    (compiler.compile_sort_key(target), order.ascending)
                )
            operator = Sort(operator, keys)
        operator = Project(operator, [c.fn for c in compiled_items])

    if limit_fn is not None or offset_fn is not None:
        operator = Limit(operator, limit_fn, offset_fn)

    return QueryPlan(operator, output_shape), output_shape


def _from_item_estimates(
    from_clause: Sequence[ast.TableRef],
    routed: Sequence[Sequence[ast.Expression]],
    session: Any,
) -> Optional[List[Tuple[float, float]]]:
    """Per-FROM-item ``(estimated rows out, scan cost)``.

    Returns None unless *every* item is a base table with ANALYZE
    statistics — join reordering only runs with full information, so a
    query over un-ANALYZEd tables plans exactly as it always did.
    """
    estimates: List[Tuple[float, float]] = []
    for ref, conjuncts in zip(from_clause, routed):
        if not isinstance(ref, ast.TableName):
            return None
        try:
            relation = session.catalog.get_relation(ref.name)
        except errors.SQLException:
            return None
        if not isinstance(relation, Table) or isinstance(
            relation, VirtualTable
        ):
            return None
        stats = _table_stats(session, relation)
        if stats is None:
            return None
        shape = table_shape(relation, ref.alias)
        selectivity = _conjuncts_selectivity(
            stats, relation, shape, conjuncts
        )
        estimates.append(
            (
                max(stats.row_count * selectivity, 1e-3),
                stats.row_count * COST_SEQ_IO,
            )
        )
    return estimates


def _joinable(
    candidate: int, placed: Set[int], join_sources: Sequence[Set[int]]
) -> bool:
    """True when a join conjunct ties ``candidate`` to the placed set."""
    merged = placed | {candidate}
    return any(
        candidate in sources and sources <= merged
        for sources in join_sources
    )


def _greedy_join_order(
    estimates: Sequence[Tuple[float, float]],
    join_sources: Sequence[Set[int]],
) -> List[int]:
    """Greedy smallest-intermediate-first join order.

    Start from the item with the fewest estimated rows, then repeatedly
    add the item producing the smallest estimated intermediate,
    preferring items connected by a join conjunct (an unconnected item
    is a cross product) — the classic greedy heuristic, deterministic
    by construction (ties break on the original FROM position).
    """
    n = len(estimates)
    remaining = set(range(n))
    start = min(remaining, key=lambda i: (estimates[i][0], i))
    order = [start]
    placed = {start}
    rows = estimates[start][0]
    remaining.discard(start)
    while remaining:
        def score(j: int) -> Tuple[int, float, int]:
            connected = _joinable(j, placed, join_sources)
            out = (
                max(rows, estimates[j][0], 1.0)
                if connected
                else rows * estimates[j][0]
            )
            return (0 if connected else 1, out, j)

        best = min(remaining, key=score)
        connected = _joinable(best, placed, join_sources)
        rows = (
            max(rows, estimates[best][0], 1.0)
            if connected
            else rows * estimates[best][0]
        )
        order.append(best)
        placed.add(best)
        remaining.discard(best)
    return order


def _simulate_order_cost(
    order: Sequence[int],
    estimates: Sequence[Tuple[float, float]],
    join_sources: Sequence[Set[int]],
) -> float:
    """Estimated cost of folding the FROM items in ``order``.

    Applies the same formulas :func:`_fold_join` uses when it builds
    real operators, so the cost recorded for a rejected order is
    comparable with the chosen plan's annotations.
    """
    first = order[0]
    placed = {first}
    rows = estimates[first][0]
    total = estimates[first][1]
    for position in order[1:]:
        item_rows, scan_cost = estimates[position]
        total += scan_cost
        if _joinable(position, placed, join_sources):
            out = _hash_join_rows(rows, item_rows)
            total += (
                _HASH_BUILD_FACTOR * min(rows, item_rows)
                + max(rows, item_rows)
                + out
            )
        else:
            out = rows * item_rows
            total += rows * max(item_rows, 1.0)
        rows = out
        placed.add(position)
    return total


def _from_item_label(ref: ast.TableRef) -> str:
    if isinstance(ref, ast.TableName):
        return ref.alias or ref.name
    alias = getattr(ref, "alias", None)
    return alias or type(ref).__name__


def _restore_from_order(
    operator: Operator,
    order: Sequence[int],
    item_shapes: dict,
) -> Tuple[Operator, RowShape]:
    """Permute a reordered join's output columns back to FROM order."""
    widths = {
        position: len(shape) for position, shape in item_shapes.items()
    }
    offsets: dict = {}
    offset = 0
    for position in order:
        offsets[position] = offset
        offset += widths[position]
    items: List[Callable] = []
    original = sorted(item_shapes)
    for position in original:
        for column in range(widths[position]):
            source = offsets[position] + column
            items.append(lambda env, index=source: env.row[index])
    shape: Optional[RowShape] = None
    for position in original:
        shape = (
            item_shapes[position]
            if shape is None
            else shape.merge(item_shapes[position])
        )
    project = Project(operator, items)
    rows, cost = _estimated(operator)
    _annotate(project, rows, cost)
    rejected = getattr(operator, "rejected", None)
    if rejected:
        project.rejected = list(rejected)
        operator.rejected = []
    return project, shape


def _plan_from_pushdown(
    select: ast.Select,
    session: Any,
    outer: Optional[ExpressionCompiler],
    options: PlannerOptions,
) -> Tuple[Operator, RowShape]:
    """Plan FROM and WHERE together, routing conjuncts to their sources.

    Single-source conjuncts descend into the FROM item they reference
    (enabling index scans); conjuncts spanning several items attach to
    the join step that first brings those items together (enabling hash
    joins for comma-list joins); everything else — subqueries, outer
    references, ambiguous names — stays in a Filter over the full row,
    exactly where the original planner put the whole WHERE clause.
    """
    from_clause = select.from_clause
    scopes = [_ref_scope(ref, session) for ref in from_clause]
    conjuncts = _split_conjuncts(select.where)
    routed: List[List[ast.Expression]] = [[] for _ in from_clause]
    join_conjuncts: List[Tuple[Set[int], ast.Expression]] = []
    residual: List[ast.Expression] = []
    for conjunct in conjuncts:
        sources, routable = _conjunct_sources(conjunct, scopes)
        if not routable or not sources:
            residual.append(conjunct)
        elif len(sources) == 1:
            routed[next(iter(sources))].append(conjunct)
        else:
            join_conjuncts.append((sources, conjunct))

    # Greedy cost-based join reordering: with ANALYZE statistics for
    # every FROM item, fold the relations smallest-intermediate-first
    # instead of in FROM order.  Output columns are restored to FROM
    # order by a permutation Project so results are indistinguishable
    # from the rule-based plan.
    order = list(range(len(from_clause)))
    estimates: Optional[List[Tuple[float, float]]] = None
    join_sources = [set(s) for s, _ in join_conjuncts]
    if options.cost_based and len(from_clause) >= 3:
        estimates = _from_item_estimates(
            from_clause, routed, session
        )
        if estimates is not None:
            candidate = _greedy_join_order(estimates, join_sources)
            # Adopt the greedy order only when the model says it is
            # actually cheaper than folding in FROM order — with tiny
            # inputs a cross product can legitimately win.
            if _simulate_order_cost(
                candidate, estimates, join_sources
            ) < _simulate_order_cost(order, estimates, join_sources):
                order = candidate

    operator: Optional[Operator] = None
    shape: Optional[RowShape] = None
    planned: Set[int] = set()
    item_shapes: dict = {}
    for position in order:
        ref = from_clause[position]
        right_op, right_shape = _plan_table_ref(
            ref, session, outer, routed[position]
        )
        item_shapes[position] = right_shape
        if operator is None:
            operator, shape = right_op, right_shape
            planned = {position}
            continue
        merged_now = planned | {position}
        here = [c for s, c in join_conjuncts if s <= merged_now]
        join_conjuncts = [
            (s, c) for s, c in join_conjuncts if not s <= merged_now
        ]
        previous = set(planned)

        def side_of(
            expr: ast.Expression,
            previous: Set[int] = previous,
            position: int = position,
        ) -> Optional[str]:
            sources, routable = _conjunct_sources(expr, scopes)
            if not routable or not sources:
                return None
            if sources <= previous:
                return "left"
            if sources == {position}:
                return "right"
            return None

        operator, shape = _fold_join(
            "INNER" if here else "CROSS",
            operator,
            shape,
            right_op,
            right_shape,
            here,
            side_of,
            session,
            outer,
            options,
        )
        planned = merged_now

    leftovers = residual + [c for _, c in join_conjuncts]
    if leftovers:
        compiler = ExpressionCompiler(shape, session, outer)
        filtered = Filter(
            operator,
            compiler.compile_predicate(_and_all(leftovers)),
            description=_conjuncts_summary(leftovers),
        )
        rows, cost = _estimated(operator)
        if rows is not None:
            _annotate(
                filtered,
                rows * _GUESS_SELECTIVITY ** len(leftovers),
                (cost + rows) if cost is not None else None,
            )
        operator = filtered

    if order != sorted(order):
        operator, shape = _restore_from_order(
            operator, order, item_shapes
        )
        if estimates is not None:
            chosen_cost = _estimated(operator)[1]
            original_cost = _simulate_order_cost(
                list(range(len(from_clause))), estimates, join_sources
            )
            names = ", ".join(
                _from_item_label(ref) for ref in from_clause
            )
            _rejected_alternative(
                operator,
                f"join in FROM order ({names})",
                original_cost,
                reason="rule-based join order; higher estimated cost",
            )
            if chosen_cost is None:
                _annotate(
                    operator,
                    None,
                    _simulate_order_cost(order, estimates, join_sources),
                )
    return operator, shape


def _compile_limits(select: ast.Select, session: Any):
    empty_compiler = ExpressionCompiler(RowShape([]), session)
    limit_fn = (
        empty_compiler.compile(select.limit).fn
        if select.limit is not None
        else None
    )
    offset_fn = (
        empty_compiler.compile(select.offset).fn
        if select.offset is not None
        else None
    )
    return limit_fn, offset_fn


def _order_source_expression(
    expr: ast.Expression,
    items: List[Tuple[ast.Expression, Optional[str]]],
) -> ast.Expression:
    """Resolve ORDER BY aliases and positions to source expressions."""
    if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
        position = expr.value
        if not 1 <= position <= len(items):
            raise errors.SQLSyntaxError(
                f"ORDER BY position {position} is out of range"
            )
        return items[position - 1][0]
    if isinstance(expr, ast.ColumnRef) and expr.table is None:
        for item_expr, alias in items:
            if alias == expr.name:
                return item_expr
    return expr


def _substitute_order_targets(
    order_items: List[ast.OrderItem],
    items: List[Tuple[ast.Expression, Optional[str]]],
    output_shape: RowShape,
) -> List[ast.OrderItem]:
    """For the DISTINCT path, rewrite positions to output column refs."""
    rewritten: List[ast.OrderItem] = []
    for order in order_items:
        expr = order.expression
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value
            if not 1 <= position <= len(output_shape):
                raise errors.SQLSyntaxError(
                    f"ORDER BY position {position} is out of range"
                )
            expr = ast.ColumnRef(output_shape.columns[position - 1].name)
            rewritten.append(ast.OrderItem(expr, order.ascending))
        else:
            rewritten.append(order)
    return rewritten


def _plan_aggregation(
    select: ast.Select,
    session: Any,
    outer: Optional[ExpressionCompiler],
    operator: Operator,
    shape: RowShape,
    compiler: ExpressionCompiler,
    items: List[Tuple[ast.Expression, Optional[str]]],
):
    """Insert a GroupAggregate and rewrite downstream expressions.

    Returns (operator, post_shape, rewritten_items, rewritten_having,
    rewritten_order_items).
    """
    # Collect every distinct aggregate call at this query level.
    aggregates: List[ast.AggregateCall] = []
    for expr, _alias in items:
        _collect_aggregates(expr, aggregates)
    if select.having is not None:
        _collect_aggregates(select.having, aggregates)
    for order in select.order_by:
        _collect_aggregates(order.expression, aggregates)

    # Compile group keys and aggregate arguments against the input shape.
    key_columns: List[ColumnInfo] = []
    key_fns = []
    replacements: List[Tuple[ast.Expression, ast.Expression]] = []
    for index, key_expr in enumerate(select.group_by):
        compiled = compiler.compile(key_expr)
        key_fns.append(compiled.fn)
        if isinstance(key_expr, ast.ColumnRef):
            info = ColumnInfo(key_expr.table, key_expr.name,
                              compiled.descriptor)
            replacement = ast.ColumnRef(key_expr.name, table=key_expr.table)
        else:
            info = ColumnInfo(None, f"$grp{index}", compiled.descriptor)
            replacement = ast.ColumnRef(f"$grp{index}")
        key_columns.append(info)
        replacements.append((key_expr, replacement))

    agg_columns: List[ColumnInfo] = []
    agg_specs: List[AggregateSpec] = []
    for index, call in enumerate(aggregates):
        argument = (
            compiler.compile(call.argument)
            if call.argument is not None
            else None
        )
        agg_specs.append(
            AggregateSpec(
                call.name,
                argument.fn if argument else None,
                call.distinct,
            )
        )
        agg_columns.append(
            ColumnInfo(
                None, f"$agg{index}", _aggregate_result_type(call, argument)
            )
        )
        replacements.append((call, ast.ColumnRef(f"$agg{index}")))

    operator = GroupAggregate(operator, key_fns, agg_specs)
    post_shape = RowShape(key_columns + agg_columns)

    def replace(node: ast.Node) -> Optional[ast.Node]:
        for pattern, replacement in replacements:
            if type(node) is type(pattern) and node == pattern:
                return replacement
        return None

    rewritten_items = [
        (_transform(expr, replace), alias) for expr, alias in items
    ]
    rewritten_having = (
        _transform(select.having, replace)
        if select.having is not None
        else None
    )
    rewritten_order = [
        ast.OrderItem(_transform(o.expression, replace), o.ascending)
        for o in select.order_by
    ]

    # Validate: non-aggregated plain columns must be group keys.
    post_compiler = ExpressionCompiler(post_shape, session, outer)
    for expr, _alias in rewritten_items:
        _check_grouped(expr, post_compiler)
    if rewritten_having is not None:
        _check_grouped(rewritten_having, post_compiler)

    return operator, post_shape, rewritten_items, rewritten_having, \
        rewritten_order


def _check_grouped(
    expr: ast.Expression, post_compiler: ExpressionCompiler
) -> None:
    """Compiling against the post-aggregation shape surfaces ungrouped
    column references as UndefinedColumnError with a clearer message."""
    try:
        post_compiler.compile(expr)
    except errors.UndefinedColumnError as exc:
        raise errors.SQLSyntaxError(
            f"{exc.message}; columns used outside aggregates must appear "
            "in GROUP BY"
        ) from None


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def plan_query(
    query: ast.Node,
    session: Any,
    outer: Optional[ExpressionCompiler] = None,
) -> Tuple[QueryPlan, RowShape]:
    """Plan a query expression; returns the plan and its output shape."""
    if isinstance(query, ast.Select):
        return _plan_select(query, session, outer)
    if isinstance(query, ast.SetOperation):
        return _plan_set_operation(query, session, outer)
    raise errors.FeatureNotSupportedError(
        f"cannot plan {type(query).__name__}"
    )


def _plan_set_operation(
    op: ast.SetOperation,
    session: Any,
    outer: Optional[ExpressionCompiler],
) -> Tuple[QueryPlan, RowShape]:
    left_plan, left_shape = plan_query(op.left, session, outer)
    right_plan, right_shape = plan_query(op.right, session, outer)
    if len(left_shape) != len(right_shape):
        raise errors.SQLSyntaxError(
            f"{op.op} operands must have the same number of columns"
        )
    columns: List[ColumnInfo] = []
    for left_col, right_col in zip(left_shape.columns, right_shape.columns):
        descriptor = left_col.descriptor
        if descriptor is not None and right_col.descriptor is not None:
            descriptor = common_supertype(descriptor, right_col.descriptor)
        columns.append(ColumnInfo(None, left_col.name, descriptor))
    shape = RowShape(columns)
    operator: Operator = UnionOp(
        left_plan.root, right_plan.root, op.all, op.op
    )
    if op.order_by:
        out_compiler = ExpressionCompiler(shape, session, outer)
        keys = []
        for order in op.order_by:
            expr = order.expression
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                position = expr.value
                if not 1 <= position <= len(shape):
                    raise errors.SQLSyntaxError(
                        f"ORDER BY position {position} is out of range"
                    )
                expr = ast.ColumnRef(shape.columns[position - 1].name)
            keys.append(
                (out_compiler.compile_sort_key(expr), order.ascending)
            )
        operator = Sort(operator, keys)
    return QueryPlan(operator, shape), shape
