"""Unit tests for the SQL tokenizer."""

import pytest

from repro import errors
from repro.engine.lexer import Token, tokenize


def kinds_and_values(sql):
    return [(t.kind, t.value) for t in tokenize(sql) if t.kind != Token.EOF]


class TestBasicTokens:
    def test_keywords_fold_upper(self):
        assert kinds_and_values("select FROM Where") == [
            ("KEYWORD", "SELECT"),
            ("KEYWORD", "FROM"),
            ("KEYWORD", "WHERE"),
        ]

    def test_identifiers_fold_lower(self):
        assert kinds_and_values("Emps SaLes") == [
            ("IDENT", "emps"),
            ("IDENT", "sales"),
        ]

    def test_non_reserved_words_are_keywords_at_lex_level(self):
        # NAME is a (non-reserved) keyword; the parser decides whether it
        # may serve as an identifier.
        assert kinds_and_values("name") == [("KEYWORD", "NAME")]

    def test_numbers(self):
        assert kinds_and_values("1 2.5 .5 1e3 1.5E-2") == [
            ("NUMBER", "1"),
            ("NUMBER", "2.5"),
            ("NUMBER", ".5"),
            ("NUMBER", "1e3"),
            ("NUMBER", "1.5E-2"),
        ]

    def test_string_literal(self):
        assert kinds_and_values("'hello'") == [("STRING", "hello")]

    def test_string_with_escaped_quote(self):
        assert kinds_and_values("'it''s'") == [("STRING", "it's")]

    def test_empty_string(self):
        assert kinds_and_values("''") == [("STRING", "")]

    def test_delimited_identifier_keeps_case(self):
        assert kinds_and_values('"MixedCase"') == [("IDENT", "MixedCase")]

    def test_delimited_identifier_with_quote(self):
        assert kinds_and_values('"a""b"') == [("IDENT", 'a"b')]

    def test_eof_token_present(self):
        tokens = tokenize("select")
        assert tokens[-1].kind == Token.EOF


class TestOperators:
    def test_shift_operator_single_token(self):
        # The Part 2 attribute accessor must lex as one token.
        assert kinds_and_values("a>>b") == [
            ("IDENT", "a"),
            ("OP", ">>"),
            ("IDENT", "b"),
        ]

    def test_comparison_operators(self):
        assert [v for _k, v in kinds_and_values("< <= > >= <> != =")] == [
            "<", "<=", ">", ">=", "<>", "!=", "=",
        ]

    def test_concat(self):
        assert kinds_and_values("a || b")[1] == ("OP", "||")

    def test_parameter_marker(self):
        assert ("OP", "?") in kinds_and_values("x = ?")

    def test_greater_then_greater(self):
        # ``a > > b`` is two comparisons, not an attribute ref.
        assert [v for _k, v in kinds_and_values("a > > b")] == \
            ["a", ">", ">", "b"]


class TestCommentsAndErrors:
    def test_line_comment(self):
        assert kinds_and_values("select -- comment\n 1") == [
            ("KEYWORD", "SELECT"),
            ("NUMBER", "1"),
        ]

    def test_block_comment(self):
        assert kinds_and_values("select /* x \n y */ 1") == [
            ("KEYWORD", "SELECT"),
            ("NUMBER", "1"),
        ]

    def test_unterminated_block_comment(self):
        with pytest.raises(errors.SQLParseError):
            tokenize("select /* oops")

    def test_unterminated_string(self):
        with pytest.raises(errors.SQLParseError):
            tokenize("select 'oops")

    def test_unexpected_character(self):
        with pytest.raises(errors.SQLParseError):
            tokenize("select @")

    def test_empty_delimited_identifier(self):
        with pytest.raises(errors.SQLParseError):
            tokenize('select ""')


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("select\n  sales")
        token = [t for t in tokens if t.value == "sales"][0]
        assert token.line == 2
        assert token.column == 3

    def test_absolute_positions(self):
        sql = "select Sales"
        tokens = tokenize(sql)
        token = [t for t in tokens if t.value == "sales"][0]
        assert sql[token.pos: token.pos + 5] == "Sales"
