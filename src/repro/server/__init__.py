"""Network server for PySQLJ: serve a durable engine over TCP.

The paper's deployment model is client programs talking to a *remote*
DBMS through a portable driver layer; this package supplies the server
half of that boundary.  :class:`ReproServer` listens on a TCP port,
speaks the versioned framed protocol in :mod:`repro.server.protocol`,
and multiplexes client sessions onto one in-process engine per database
name (durable via ``registry.get_or_open_durable`` when a data
directory is configured).

Clients connect with ``repro.connect("repro://host:port/dbname")`` — the
remote driver in :mod:`repro.dbapi.remote` — and get back the same
DB-API surface as a local connection.

Run a server from the command line::

    python -m repro.server --port 7878 --data-dir /var/lib/mydata

See ``docs/SERVER.md`` for the protocol reference and a deployment
guide, and ``docs/ARCHITECTURE.md`` for where this layer sits in the
stack.
"""

from __future__ import annotations

from repro.server.protocol import DEFAULT_PORT, PROTOCOL_VERSION
from repro.server.server import ReproServer

__all__ = ["ReproServer", "DEFAULT_PORT", "PROTOCOL_VERSION"]
