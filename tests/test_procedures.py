"""Tests for SQLJ Part 1: archives, routines, invocation, paths."""

import os

import pytest

from repro import errors
from repro import DriverManager
from repro.procedures import build_par, build_par_bytes, read_par
from repro.procedures.archives import url_to_path
from repro.procedures.descriptors import (
    DeploymentDescriptor,
    split_sql_statements,
)
from repro.procedures.paths import parse_path_spec, pattern_matches
from repro.procedures.sqlstate import to_sql_exception
from repro.sqltypes import typecodes


class TestArchives:
    def test_roundtrip(self, tmp_path):
        path = build_par(
            str(tmp_path / "x.par"),
            {"mod_a": "A = 1\n", "pkg.mod_b": "B = 2\n"},
            descriptor="SQLActions[ ] = { BEGIN INSTALL END INSTALL, "
                       "BEGIN REMOVE END REMOVE }",
        )
        modules, descriptor = read_par(path)
        assert set(modules) == {"mod_a", "pkg.mod_b"}
        assert "BEGIN INSTALL" in descriptor

    def test_bytes_roundtrip(self):
        payload = build_par_bytes({"m": "x = 1\n"})
        modules, descriptor = read_par(payload)
        assert modules == {"m": "x = 1\n"}
        assert descriptor is None

    def test_empty_par_rejected(self):
        with pytest.raises(errors.ParInstallationError):
            build_par_bytes({})

    def test_missing_file(self):
        with pytest.raises(errors.ParInstallationError):
            read_par("/nonexistent/whatever.par")

    def test_not_a_zip(self, tmp_path):
        bogus = tmp_path / "bogus.par"
        bogus.write_bytes(b"not a zip at all")
        with pytest.raises(errors.ParInstallationError):
            read_par(str(bogus))

    def test_file_url(self, tmp_path):
        path = build_par(str(tmp_path / "u.par"), {"m": "x = 1\n"})
        modules, _d = read_par(f"file:{path}")
        assert "m" in modules

    def test_url_to_path_expands_home(self):
        assert url_to_path("file:~/x.par").startswith(
            os.path.expanduser("~")
        )


class TestPaths:
    def test_parse_path_spec(self):
        entries = parse_path_spec(
            "(property.*, property_par) (project.*, project_par)"
        )
        assert entries == [
            ("property.*", "property_par"),
            ("project.*", "project_par"),
        ]

    def test_parse_paper_slash_spelling(self):
        entries = parse_path_spec("(property/*, property_jar)")
        assert entries == [("property.*", "property_jar")]

    def test_star_matches_everything(self):
        assert pattern_matches("*", "anything.at.all")

    def test_prefix_pattern(self):
        assert pattern_matches("property.*", "property.utils")
        assert not pattern_matches("property.*", "project.utils")

    def test_malformed_spec(self):
        with pytest.raises(errors.PathResolutionError):
            parse_path_spec("not a path spec")

    def test_cross_archive_import(self, session, tmp_path):
        helper = build_par(
            str(tmp_path / "helper.par"),
            {"helper_mod": "def helping():\n    return 41\n"},
        )
        app = build_par(
            str(tmp_path / "app.par"),
            {
                "app_mod": (
                    "import helper_mod\n"
                    "def answer():\n"
                    "    return helper_mod.helping() + 1\n"
                )
            },
        )
        session.execute(f"call sqlj.install_par('{helper}', 'helper_par')")
        session.execute(f"call sqlj.install_par('{app}', 'app_par')")
        session.execute(
            "call sqlj.alter_module_path('app_par', '(*, helper_par)')"
        )
        session.execute(
            "create function answer() returns integer no sql "
            "external name 'app_par:app_mod.answer' "
            "language python parameter style python"
        )
        assert session.execute("select answer()").rows == [[42]]

    def test_unresolved_import_is_lazy_like_class_loading(
        self, session, tmp_path
    ):
        # Install succeeds (paths may be configured afterwards); using a
        # routine from the unresolvable module fails.
        app = build_par(
            str(tmp_path / "broken.par"),
            {"broken_mod": "import missing_helper\ndef f():\n    pass\n"},
        )
        session.execute(f"call sqlj.install_par('{app}', 'broken_par')")
        assert "broken_par" in session.catalog.pars
        with pytest.raises(errors.SQLException):
            session.execute(
                "create procedure f() no sql external name "
                "'broken_par:broken_mod.f' language python "
                "parameter style python"
            )

    def test_syntax_error_fails_at_install(self, session, tmp_path):
        app = build_par(
            str(tmp_path / "app2.par"),
            {"app2_mod": "def broken(:\n"},
        )
        with pytest.raises(errors.SQLException):
            session.execute(f"call sqlj.install_par('{app}', 'app2')")
        assert "app2" not in session.catalog.pars


class TestInstallRemoveReplace:
    def test_install_registers_archive(self, session, routines_par):
        session.execute(
            f"call sqlj.install_par('{routines_par}', 'rp')"
        )
        par = session.catalog.get_par("rp")
        assert set(par.modules) == {"routines1", "routines2", "routines3"}
        assert par.owner == "dba"

    def test_double_install_rejected(self, session, routines_par):
        session.execute(f"call sqlj.install_par('{routines_par}', 'rp')")
        with pytest.raises(errors.ParInstallationError):
            session.execute(
                f"call sqlj.install_par('{routines_par}', 'rp')"
            )

    def test_remove(self, session, routines_par):
        session.execute(f"call sqlj.install_par('{routines_par}', 'rp')")
        session.execute("call sqlj.remove_par('rp')")
        assert "rp" not in session.catalog.pars

    def test_remove_blocked_by_dependent_routine(self, payroll):
        with pytest.raises(errors.ParInstallationError):
            payroll.execute("call sqlj.remove_par('routines_par')")

    def test_remove_unknown(self, session):
        with pytest.raises(errors.UndefinedParError):
            session.execute("call sqlj.remove_par('ghost')")

    def test_replace_changes_behaviour(self, session, tmp_path):
        v1 = build_par(
            str(tmp_path / "v1.par"),
            {"vmod": "def version():\n    return 1\n"},
        )
        v2 = build_par(
            str(tmp_path / "v2.par"),
            {"vmod": "def version():\n    return 2\n"},
        )
        session.execute(f"call sqlj.install_par('{v1}', 'vp')")
        session.execute(
            "create function v() returns integer no sql "
            "external name 'vp:vmod.version' "
            "language python parameter style python"
        )
        assert session.execute("select v()").rows == [[1]]
        session.execute(f"call sqlj.replace_par('{v2}', 'vp')")
        assert session.execute("select v()").rows == [[2]]

    def test_replace_rolls_back_on_resolution_failure(
        self, session, tmp_path
    ):
        v1 = build_par(
            str(tmp_path / "w1.par"),
            {"wmod": "def w():\n    return 1\n"},
        )
        bad = build_par(
            str(tmp_path / "w2.par"),
            {"wmod": "def other_name():\n    return 2\n"},
        )
        session.execute(f"call sqlj.install_par('{v1}', 'wp')")
        session.execute(
            "create function w() returns integer no sql "
            "external name 'wp:wmod.w' language python "
            "parameter style python"
        )
        with pytest.raises(errors.SQLException):
            session.execute(f"call sqlj.replace_par('{bad}', 'wp')")
        assert session.execute("select w()").rows == [[1]]

    def test_only_owner_administers_par(self, db, routines_par):
        installer = db.create_session(user="installer", autocommit=True)
        installer.execute(
            f"call sqlj.install_par('{routines_par}', 'mine')"
        )
        other = db.create_session(user="other", autocommit=True)
        with pytest.raises(errors.PrivilegeError):
            other.execute("call sqlj.remove_par('mine')")


class TestCreateRoutine:
    def test_function_registration(self, payroll):
        routine = payroll.catalog.get_routine("region_of")
        assert routine.kind == "FUNCTION"
        assert routine.par_name == "routines_par"
        assert routine.callable is not None

    def test_unknown_par(self, session):
        with pytest.raises(errors.UndefinedParError):
            session.execute(
                "create function f() returns integer no sql "
                "external name 'nopar:m.f' language python "
                "parameter style python"
            )

    def test_unknown_member(self, session, routines_par):
        session.execute(f"call sqlj.install_par('{routines_par}', 'rp')")
        with pytest.raises(errors.RoutineResolutionError):
            session.execute(
                "create function f() returns integer no sql "
                "external name 'rp:routines1.missing' "
                "language python parameter style python"
            )

    def test_arity_mismatch_detected_at_create(self, session,
                                               routines_par):
        session.execute(f"call sqlj.install_par('{routines_par}', 'rp')")
        with pytest.raises(errors.RoutineResolutionError):
            session.execute(
                "create function f(a integer, b integer) "
                "returns integer no sql "
                "external name 'rp:routines1.region' "
                "language python parameter style python"
            )

    def test_function_with_out_param_rejected(self, session):
        with pytest.raises(errors.SQLSyntaxError):
            session.execute(
                "create function f(out x integer) returns integer "
                "no sql external name 'a.b' language python "
                "parameter style python"
            )

    def test_external_name_required(self, session):
        with pytest.raises(errors.SQLSyntaxError):
            session.execute(
                "create procedure p() language python "
                "parameter style python"
            )

    def test_direct_module_external_name(self, session):
        # Module importable from the ordinary Python path.
        session.execute(
            "create function strip_it(s varchar(100)) "
            "returns varchar(100) no sql "
            "external name 'tests.paper_assets.region_of' "
            "language python parameter style python"
        )
        # region_of('CA') -> 3, coerced to VARCHAR? No: declared returns
        # varchar, int 3 is not a str -> InvalidCast at call time.
        with pytest.raises(errors.InvalidCastError):
            session.execute("select strip_it('CA')")

    def test_duplicate_routine_rejected(self, payroll):
        with pytest.raises(errors.DuplicateObjectError):
            payroll.execute(
                "create function region_of(state char(20)) "
                "returns integer no sql "
                "external name 'routines_par:routines1.region' "
                "language python parameter style python"
            )

    def test_drop_function(self, payroll):
        payroll.execute("drop function region_of")
        with pytest.raises(errors.UndefinedRoutineError):
            payroll.execute("select region_of('CA')")

    def test_drop_wrong_kind(self, payroll):
        with pytest.raises(errors.UndefinedRoutineError):
            payroll.execute("drop procedure region_of")


class TestInvocation:
    def test_function_in_expression(self, payroll):
        result = payroll.execute(
            "select name, region_of(state) as region from emps "
            "where region_of(state) = 3 order by name"
        )
        assert [r[0] for r in result.rows] == ["Alice", "Carol", "Hank"]

    def test_function_result_coerced(self, payroll):
        result = payroll.execute("select region_of('CA')")
        assert result.rows == [[3]]

    def test_procedure_updates_data(self, payroll):
        payroll.execute(
            "insert into emps values ('Pat', 'E9', 'CAL', 1)"
        )
        payroll.execute("call correct_states('CAL', 'CA')")
        assert payroll.execute(
            "select state from emps where name = 'Pat'"
        ).rows[0][0].strip() == "CA"

    def test_call_function_rejected(self, payroll):
        with pytest.raises(errors.SQLSyntaxError):
            payroll.execute("call region_of('CA')")

    def test_select_procedure_rejected(self, payroll):
        # A procedure is not visible as a function in expressions.
        with pytest.raises(errors.UndefinedRoutineError):
            payroll.execute("select correct_states('A', 'B')")

    def test_call_arity_checked(self, payroll):
        with pytest.raises(errors.SQLSyntaxError):
            payroll.execute("call correct_states('only-one')")

    def test_uncaught_exception_becomes_sqlstate(self, session, tmp_path):
        par = build_par(
            str(tmp_path / "boom.par"),
            {
                "boom": (
                    "def explode():\n"
                    "    raise RuntimeError('the message text')\n"
                    "def divide():\n"
                    "    return 1 // 0\n"
                )
            },
        )
        session.execute(f"call sqlj.install_par('{par}', 'bp')")
        session.execute(
            "create procedure explode() no sql "
            "external name 'bp:boom.explode' language python "
            "parameter style python"
        )
        session.execute(
            "create function divide() returns integer no sql "
            "external name 'bp:boom.divide' language python "
            "parameter style python"
        )
        with pytest.raises(errors.ExternalRoutineError) as info:
            session.execute("call explode()")
        assert info.value.message == "the message text"
        assert info.value.sqlstate == "38000"
        with pytest.raises(errors.SQLException) as info:
            session.execute("select divide()")
        assert info.value.sqlstate == "22012"

    def test_char_params_arrive_trimmed(self, payroll):
        # region_of declared as char(20); host code sees 'CA', not padded.
        assert payroll.execute(
            "select region_of(state) from emps where name = 'Alice'"
        ).rows == [[3]]


class TestOutParameters:
    def test_best2_via_callable_statement(self, payroll, db):
        conn = DriverManager.get_connection(
            "pydbc:standard:x", database=db
        )
        stmt = conn.prepare_call("{call best2(?,?,?,?,?,?,?,?,?)}")
        for i in (1, 2, 5, 6):
            stmt.register_out_parameter(i, typecodes.VARCHAR)
        for i in (3, 7):
            stmt.register_out_parameter(i, typecodes.INTEGER)
        for i in (4, 8):
            stmt.register_out_parameter(i, typecodes.DECIMAL)
        stmt.set_int(9, 2)
        stmt.execute()
        # Region > 2 employees by sales: Alice (100.50), Hank (99.99).
        assert stmt.get_string(1) == "Alice"
        assert stmt.get_int(3) == 3
        assert str(stmt.get_decimal(4)) == "100.50"
        assert stmt.get_string(5) == "Hank"

    def test_unregistered_out_access_rejected(self, payroll, db):
        conn = DriverManager.get_connection(
            "pydbc:standard:x", database=db
        )
        stmt = conn.prepare_call("{call best2(?,?,?,?,?,?,?,?,?)}")
        stmt.set_int(9, 2)
        stmt.execute()
        with pytest.raises(errors.DataError):
            stmt.get_string(1)

    def test_register_non_marker_rejected(self, payroll, db):
        conn = DriverManager.get_connection(
            "pydbc:standard:x", database=db
        )
        stmt = conn.prepare_call("{call correct_states('A', ?)}")
        with pytest.raises(errors.DataError):
            stmt.register_out_parameter(2, typecodes.VARCHAR)
        # marker 1 is the second argument; registering it is fine
        stmt.register_out_parameter(1, typecodes.VARCHAR)

    def test_callable_requires_call(self, payroll, db):
        conn = DriverManager.get_connection(
            "pydbc:standard:x", database=db
        )
        with pytest.raises(errors.SQLSyntaxError):
            conn.prepare_call("select 1")

    def test_out_value_coerced_to_declared_type(self, session, tmp_path):
        par = build_par(
            str(tmp_path / "outs.par"),
            {
                "outs": (
                    "def fill(container):\n"
                    "    container[0] = '  padded'\n"
                )
            },
        )
        session.execute(f"call sqlj.install_par('{par}', 'op')")
        session.execute(
            "create procedure fill(out x char(10)) no sql "
            "external name 'op:outs.fill' language python "
            "parameter style python"
        )
        result = session.execute("call fill(?)")
        assert result.out_values[0] == "  padded  "  # CHAR(10) padded


class TestDynamicResultSets:
    def test_ranked_emps(self, payroll, db):
        conn = DriverManager.get_connection(
            "pydbc:standard:x", database=db
        )
        stmt = conn.prepare_call("{call ranked_emps(?)}")
        stmt.set_int(1, 2)
        assert stmt.execute() is True
        rs = stmt.get_result_set()
        names = []
        while rs.next():
            names.append(
                (rs.get_string("name"), rs.get_int("region"))
            )
        assert names == [
            ("Alice", 3), ("Hank", 3), ("Carol", 3),
        ]
        assert stmt.get_more_results() is False

    def test_multiple_result_sets(self, session, emps, tmp_path):
        par = build_par(
            str(tmp_path / "multi.par"),
            {
                "multi": (
                    "from repro import DriverManager\n"
                    "def two_sets(rs1, rs2):\n"
                    "    conn = DriverManager.get_connection("
                    "'DBAPI:DEFAULT:CONNECTION')\n"
                    "    s = conn.create_statement()\n"
                    "    rs1[0] = s.execute_query("
                    "\"select name from emps where state = 'CA'\")\n"
                    "    s2 = conn.create_statement()\n"
                    "    rs2[0] = s2.execute_query("
                    "\"select name from emps where state = 'MN'\")\n"
                )
            },
        )
        session.execute(f"call sqlj.install_par('{par}', 'mp')")
        session.execute(
            "create procedure two_sets() dynamic result sets 2 "
            "reads sql data external name 'mp:multi.two_sets' "
            "language python parameter style python"
        )
        result = session.execute("call two_sets()")
        assert len(result.result_sets) == 2
        assert result.result_sets[0].rows == [["Alice"]]
        assert result.result_sets[1].rows == [["Bob"]]


class TestDeploymentDescriptors:
    DESCRIPTOR = """
    SQLActions[ ] = {
      BEGIN INSTALL
        create function region_of(state char(20)) returns integer
          no sql external name 'dd_par:routines1.region'
          language python parameter style python;
        grant execute on region_of to public;
      END INSTALL,
      BEGIN REMOVE
        drop function region_of;
      END REMOVE
    }
    """

    def test_parse(self):
        descriptor = DeploymentDescriptor.parse(self.DESCRIPTOR)
        assert len(descriptor.install_actions) == 2
        assert len(descriptor.remove_actions) == 1
        assert descriptor.install_actions[1].startswith("grant execute")

    def test_render_roundtrip(self):
        descriptor = DeploymentDescriptor.parse(self.DESCRIPTOR)
        again = DeploymentDescriptor.parse(descriptor.render())
        assert again.install_actions == descriptor.install_actions
        assert again.remove_actions == descriptor.remove_actions

    def test_missing_header(self):
        with pytest.raises(errors.ParInstallationError):
            DeploymentDescriptor.parse("BEGIN INSTALL END INSTALL")

    def test_split_statements_honours_strings(self):
        statements = split_sql_statements(
            "insert into t values ('a;b'); delete from t"
        )
        assert statements == [
            "insert into t values ('a;b')",
            "delete from t",
        ]

    def test_split_statements_strips_comments(self):
        statements = split_sql_statements(
            "-- leading comment\nselect 1; -- trailing\nselect 2"
        )
        assert statements == ["select 1", "select 2"]

    def test_install_runs_descriptor_actions(
        self, emps, tmp_path
    ):
        from tests import paper_assets

        par = build_par(
            str(tmp_path / "dd.par"),
            {"routines1": paper_assets.ROUTINES1_SOURCE},
            descriptor=self.DESCRIPTOR,
        )
        emps.execute(f"call sqlj.install_par('{par}', 'dd_par')")
        # The descriptor's CREATE FUNCTION ran implicitly.
        assert emps.execute("select region_of('MN')").rows == [[1]]

    def test_remove_runs_descriptor_actions(self, emps, tmp_path):
        from tests import paper_assets

        par = build_par(
            str(tmp_path / "dd2.par"),
            {"routines1": paper_assets.ROUTINES1_SOURCE},
            descriptor=self.DESCRIPTOR.replace("dd_par", "dd2_par"),
        )
        emps.execute(f"call sqlj.install_par('{par}', 'dd2_par')")
        emps.execute("call sqlj.remove_par('dd2_par')")
        with pytest.raises(errors.UndefinedRoutineError):
            emps.execute("select region_of('MN')")
        assert "dd2_par" not in emps.catalog.pars


class TestSqlStateMapping:
    @pytest.mark.parametrize(
        "exc, state",
        [
            (ZeroDivisionError("z"), "22012"),
            (ValueError("v"), "22023"),
            (TypeError("t"), "39004"),
            (KeyError("k"), "22023"),
            (RuntimeError("r"), "38000"),
        ],
    )
    def test_mapping(self, exc, state):
        assert to_sql_exception(exc).sqlstate == state

    def test_sql_exception_passthrough(self):
        original = errors.UndefinedTableError("t")
        assert to_sql_exception(original) is original


class TestNestedProcedureCalls:
    NESTED = '''
from repro import DriverManager


def leaf(amount):
    conn = DriverManager.get_connection("DBAPI:DEFAULT:CONNECTION")
    stmt = conn.prepare_statement(
        "update emps set sales = sales + ? where sales is not null")
    stmt.set_int(1, amount)
    stmt.execute_update()


def trunk(amount):
    # "Callable ... from other SQL stored procedures" (the paper):
    # a procedure CALLing another procedure through its own connection.
    conn = DriverManager.get_connection("DBAPI:DEFAULT:CONNECTION")
    stmt = conn.prepare_call("{call leaf_proc(?)}")
    stmt.set_int(1, amount)
    stmt.execute()
    stmt2 = conn.prepare_call("{call leaf_proc(?)}")
    stmt2.set_int(1, amount)
    stmt2.execute()
'''

    def test_procedure_calls_procedure(self, emps, tmp_path):
        session = emps
        par = build_par(
            str(tmp_path / "nested.par"), {"nestedmod": self.NESTED}
        )
        session.execute(f"call sqlj.install_par('{par}', 'np')")
        session.execute(
            "create procedure leaf_proc(amount integer) "
            "modifies sql data external name 'np:nestedmod.leaf' "
            "language python parameter style python"
        )
        session.execute(
            "create procedure trunk_proc(amount integer) "
            "modifies sql data external name 'np:nestedmod.trunk' "
            "language python parameter style python"
        )
        before = session.execute(
            "select sales from emps where name = 'Alice'"
        ).rows[0][0]
        session.execute("call trunk_proc(10)")
        after = session.execute(
            "select sales from emps where name = 'Alice'"
        ).rows[0][0]
        assert after == before + 20  # leaf ran twice

    def test_function_inside_procedure_query(self, payroll):
        # ranked_emps's internal query itself calls region_of: external
        # function invocation nested inside an external procedure.
        result = payroll.execute("call ranked_emps(0)")
        assert result.result_sets
        assert result.result_sets[0].rows
