"""DriverManager and the database registry.

``DriverManager.get_connection(url)`` resolves PyDBC URLs:

* ``pydbc:<dialect>:<name>`` — connect to the registered database
  ``<name>`` (creating it on first use with the given dialect, the way a
  test JDBC driver would spin up an embedded database),
* ``DBAPI:DEFAULT:CONNECTION`` / ``JDBC:DEFAULT:CONNECTION`` — inside an
  external routine, a connection sharing the invoking session (paper,
  Part 1 examples).

``get_connection(url, pooled=True)`` routes the checkout through a
process-wide :class:`repro.dbapi.pool.ConnectionPool` shared by every
pooled caller of the same ``(url, user)`` — closing such a connection
returns its session to the pool instead of discarding it.
``DriverManager.get_pool`` exposes the pool itself (for tuning and
gauges); ``DriverManager.shutdown_pools`` drains them (tests).
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional, Tuple

from repro import errors
from repro.dbapi.connection import Connection
from repro.engine.database import Database

__all__ = ["DriverManager", "DatabaseRegistry", "registry"]

_DEFAULT_URLS = ("dbapi:default:connection", "jdbc:default:connection")


class DatabaseRegistry:
    """Process-wide registry of embedded databases, keyed by name."""

    def __init__(self) -> None:
        self._databases: Dict[str, Database] = {}
        self._lock = threading.Lock()

    def register(self, database: Database) -> Database:
        with self._lock:
            self._databases[database.name] = database
        return database

    def get_or_create(self, name: str, dialect: str) -> Database:
        with self._lock:
            database = self._databases.get(name)
            if database is None:
                database = Database(name=name, dialect=dialect)
                self._databases[name] = database
            elif database.dialect.name != dialect:
                raise errors.ConnectionError_(
                    f"database {name!r} runs dialect "
                    f"{database.dialect.name!r}, not {dialect!r}"
                )
            return database

    def get_or_open_durable(
        self,
        name: str,
        dialect: str,
        directory: str,
        **durability_options,
    ) -> Database:
        """Open (or share) the durable database ``name`` at ``directory``.

        The first call runs crash recovery via
        :func:`repro.engine.durability.open_database`; later calls with
        the same name share the already-open instance, so every
        ``repro.connect`` against the same data directory sees one
        engine.  Clashes are errors: a same-named in-memory database, a
        different directory for the same name, or a dialect mismatch all
        raise :class:`repro.errors.ConnectionError_`.
        """
        directory = os.path.abspath(directory)
        with self._lock:
            database = self._databases.get(name)
            if database is not None:
                manager = database.durability
                if manager is None:
                    raise errors.ConnectionError_(
                        f"database {name!r} is already open in-memory; "
                        "close it before reopening durably"
                    )
                if os.path.abspath(str(manager.directory)) != directory:
                    raise errors.ConnectionError_(
                        f"database {name!r} is already open from "
                        f"{manager.directory!r}, not {directory!r}"
                    )
                if database.dialect.name != dialect:
                    raise errors.ConnectionError_(
                        f"database {name!r} runs dialect "
                        f"{database.dialect.name!r}, not {dialect!r}"
                    )
                return database
            from repro.engine.durability import open_database

            database = open_database(
                directory,
                name=name,
                dialect=dialect,
                **durability_options,
            )
            self._databases[database.name] = database
            return database

    def lookup(self, name: str) -> Optional[Database]:
        with self._lock:
            return self._databases.get(name)

    def drop(self, name: str) -> None:
        with self._lock:
            database = self._databases.pop(name, None)
        self._close_durable(database)

    def clear(self) -> None:
        with self._lock:
            databases = list(self._databases.values())
            self._databases.clear()
        for database in databases:
            self._close_durable(database)

    @staticmethod
    def _close_durable(database: Optional[Database]) -> None:
        """Best-effort final checkpoint + WAL close for durable dbs."""
        if database is None or database.durability is None:
            return
        try:
            database.close()
        except errors.ReproError:  # pragma: no cover - best effort
            pass


#: Default process-wide registry used by DriverManager.
registry = DatabaseRegistry()


class DriverManager:
    """Entry point mirroring ``java.sql.DriverManager``."""

    _pools: Dict[Tuple[str, Optional[str]], "ConnectionPool"] = {}
    _pools_lock = threading.Lock()

    @staticmethod
    def get_connection(
        url: str,
        user: Optional[str] = None,
        database: Optional[Database] = None,
        pooled: bool = False,
    ) -> Connection:
        """Open a connection for ``url``.

        ``database`` short-circuits the registry (used by tests and by the
        SQLJ runtime when a connection context wraps an existing engine
        instance).  ``pooled`` checks the connection out of the shared
        pool for ``(url, user)`` instead of opening a fresh session.
        """
        if url.lower() in _DEFAULT_URLS:
            from repro.procedures.invocation import (
                default_connection_session,
            )

            session = default_connection_session()
            return Connection(session, url=url, owns_session=False)

        if pooled:
            return DriverManager.get_pool(
                url, user=user, database=database
            ).checkout()

        if database is not None:
            session = database.create_session(user=user, autocommit=True)
            return Connection(session, url=url)

        target = DriverManager._resolve_database(url)
        session = target.create_session(user=user, autocommit=True)
        return Connection(session, url=url)

    @staticmethod
    def get_pool(
        url: str,
        user: Optional[str] = None,
        database: Optional[Database] = None,
        **pool_options,
    ) -> "ConnectionPool":
        """Shared pool for ``(url, user)``, created on first use.

        ``pool_options`` (``min_size``, ``max_size``,
        ``checkout_timeout``, ``max_age``, ...) only take effect on the
        call that creates the pool; later callers share it as-is.
        """
        from repro.dbapi.pool import ConnectionPool

        key = (url.lower(), user)
        with DriverManager._pools_lock:
            pool = DriverManager._pools.get(key)
            if pool is None or pool.closed:
                if database is None:
                    database = DriverManager._resolve_database(url)
                pool = ConnectionPool(
                    database, user=user, url=url, **pool_options
                )
                DriverManager._pools[key] = pool
            return pool

    @staticmethod
    def shutdown_pools() -> None:
        """Close and forget every shared pool (test isolation)."""
        with DriverManager._pools_lock:
            pools = list(DriverManager._pools.values())
            DriverManager._pools.clear()
        for pool in pools:
            pool.close()

    @staticmethod
    def _resolve_database(url: str):
        """Resolve ``url`` to a session factory.

        ``pydbc:`` URLs resolve to a registered embedded
        :class:`Database`; ``repro://host:port/name`` URLs resolve to a
        :class:`repro.dbapi.remote.RemoteTarget`, whose sessions speak
        the network protocol.  Both expose ``create_session``, so every
        caller (plain connections, pools, connection contexts) is
        location-transparent.
        """
        if url.lower().startswith("repro:"):
            from repro.dbapi.remote import RemoteTarget

            return RemoteTarget.from_url(url)
        parts = url.split(":")
        if len(parts) != 3 or parts[0].lower() != "pydbc":
            raise errors.ConnectionError_(
                f"malformed PyDBC URL {url!r}; expected "
                "'pydbc:<dialect>:<name>' or 'repro://host:port/<name>'"
            )
        _scheme, dialect, name = parts
        return registry.get_or_create(name, dialect.lower())
