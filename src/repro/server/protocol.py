"""Wire protocol shared by :mod:`repro.server` and the remote driver.

Every message is one *frame*::

    +----------------+-----------+------------------------+
    | length (u32 LE)| type (u8) | payload (pickle)       |
    +----------------+-----------+------------------------+

``length`` counts the payload bytes only (the type byte is excluded), so
an empty payload is a 5-byte frame.  Payloads are Python objects
serialised with :mod:`pickle`; the protocol is versioned through the
HELLO/WELCOME handshake, and a server refuses clients whose
``PROTOCOL_VERSION`` it does not speak.

The conversation is strict request/response from the client's point of
view, with two exceptions: CANCEL may be sent while an EXECUTE is
outstanding (the reply to the EXECUTE then becomes an ERROR with
SQLSTATE 57014), and the server may send an unsolicited GOODBYE when it
is shutting down and the session has no request in flight.

Message types and their payload dictionaries:

==============  ======  ====================================================
message         dir     payload
==============  ======  ====================================================
HELLO           c->s    magic, version, database, dialect, user, auth,
                        autocommit
WELCOME         s->c    server_version, protocol, database, dialect,
                        session_id, page_size
EXECUTE         c->s    sql, params, trace (optional trace-context dict)
RESULT          s->c    kind, update_count, out_values, result_sets,
                        function_value, columns, shape, rows (first page),
                        row_count, cursor (id or None), in_txn
FETCH           c->s    cursor, max_rows
ROWS            s->c    rows, done
CLOSE_CURSOR    c->s    cursor
COMMIT          c->s    --
ROLLBACK        c->s    --
AUTOCOMMIT      c->s    value
PING            c->s    --
OK              s->c    in_txn
CANCEL          c->s    -- (out of band)
GOODBYE         both    reason
ERROR           s->c    error (class name), sqlstate, message, vendor_code
==============  ======  ====================================================

Security note: payloads are pickled, so the wire format is only suitable
for trusted networks — the same trust model as the engine itself, which
executes external routines from installed archives.  The optional
``auth`` token in HELLO gates the handshake, not the serialisation.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Dict, Optional, Tuple

from repro import errors, faultpoints

__all__ = [
    "PROTOCOL_VERSION",
    "MAGIC",
    "DEFAULT_PORT",
    "MAX_FRAME",
    "MSG_HELLO",
    "MSG_WELCOME",
    "MSG_EXECUTE",
    "MSG_RESULT",
    "MSG_FETCH",
    "MSG_ROWS",
    "MSG_CLOSE_CURSOR",
    "MSG_COMMIT",
    "MSG_ROLLBACK",
    "MSG_AUTOCOMMIT",
    "MSG_PING",
    "MSG_OK",
    "MSG_CANCEL",
    "MSG_GOODBYE",
    "MSG_ERROR",
    "MESSAGE_NAMES",
    "encode_frame",
    "decode_payload",
    "recv_frame",
    "send_frame",
    "error_payload",
    "rebuild_error",
]

PROTOCOL_VERSION = 1
MAGIC = "pysqlj"
DEFAULT_PORT = 7878

#: Upper bound on a single frame's payload; a peer announcing more is
#: treated as garbage (a torn frame read as a length, or an attack).
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct("<IB")  # payload length, message type

MSG_HELLO = 1
MSG_WELCOME = 2
MSG_EXECUTE = 3
MSG_RESULT = 4
MSG_FETCH = 5
MSG_ROWS = 6
MSG_CLOSE_CURSOR = 7
MSG_COMMIT = 8
MSG_ROLLBACK = 9
MSG_AUTOCOMMIT = 10
MSG_PING = 11
MSG_OK = 12
MSG_CANCEL = 13
MSG_GOODBYE = 14
MSG_ERROR = 15

MESSAGE_NAMES = {
    MSG_HELLO: "HELLO",
    MSG_WELCOME: "WELCOME",
    MSG_EXECUTE: "EXECUTE",
    MSG_RESULT: "RESULT",
    MSG_FETCH: "FETCH",
    MSG_ROWS: "ROWS",
    MSG_CLOSE_CURSOR: "CLOSE_CURSOR",
    MSG_COMMIT: "COMMIT",
    MSG_ROLLBACK: "ROLLBACK",
    MSG_AUTOCOMMIT: "AUTOCOMMIT",
    MSG_PING: "PING",
    MSG_OK: "OK",
    MSG_CANCEL: "CANCEL",
    MSG_GOODBYE: "GOODBYE",
    MSG_ERROR: "ERROR",
}


def encode_frame(msg_type: int, payload: Any = None) -> bytes:
    """Serialise one message to its on-wire bytes."""
    body = b"" if payload is None else pickle.dumps(
        payload, protocol=pickle.HIGHEST_PROTOCOL
    )
    if len(body) > MAX_FRAME:
        raise errors.ProtocolError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{MAX_FRAME}-byte limit"
        )
    return _HEADER.pack(len(body), msg_type) + body


def decode_payload(body: bytes) -> Any:
    if not body:
        return None
    return pickle.loads(body)


def parse_header(header: bytes) -> Tuple[int, int]:
    """Return ``(payload_length, msg_type)``, validating the length."""
    length, msg_type = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise errors.ProtocolError(
            f"peer announced a {length}-byte frame "
            f"(limit {MAX_FRAME}); stream is corrupt"
        )
    return length, msg_type


HEADER_SIZE = _HEADER.size


# ---------------------------------------------------------------------------
# Blocking-socket helpers (client side)
# ---------------------------------------------------------------------------


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except OSError as exc:
            raise errors.ConnectionLostError(
                f"connection lost while reading: {exc}"
            ) from exc
        if not chunk:
            raise errors.ConnectionLostError(
                f"peer closed the connection mid-frame "
                f"({n - remaining} of {n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Tuple[int, Any]:
    """Read one frame from a blocking socket.

    Returns ``(msg_type, payload)``.  Raises
    :class:`~repro.errors.ConnectionLostError` on EOF or a torn frame
    and :class:`~repro.errors.ProtocolError` on an invalid header.
    """
    faultpoints.trigger("net.read")
    length, msg_type = parse_header(_recv_exact(sock, HEADER_SIZE))
    body = _recv_exact(sock, length) if length else b""
    try:
        return msg_type, decode_payload(body)
    except errors.ReproError:
        raise
    except Exception as exc:
        raise errors.ProtocolError(
            f"undecodable {MESSAGE_NAMES.get(msg_type, msg_type)} payload: "
            f"{exc}"
        ) from exc


def send_frame(sock: socket.socket, msg_type: int, payload: Any = None) -> None:
    """Write one frame to a blocking socket.

    The encoded bytes pass through the ``net.write`` faultpoint, so a
    test plan can truncate them (torn frame) or delay them (slow peer).
    A *modified* payload means the plan tore the frame mid-write; since
    the stream is now desynchronised, that is reported as a lost
    connection — exactly what a real half-written frame becomes.
    """
    data = encode_frame(msg_type, payload)
    sent = faultpoints.pipe("net.write", data)
    try:
        sock.sendall(sent)
    except OSError as exc:
        raise errors.ConnectionLostError(
            f"connection lost while writing: {exc}"
        ) from exc
    if sent != data:
        raise errors.ConnectionLostError(
            "connection torn mid-frame (fault injected)"
        )


# ---------------------------------------------------------------------------
# Error frames
# ---------------------------------------------------------------------------


def error_payload(exc: BaseException) -> Dict[str, Any]:
    """Flatten an exception into an ERROR frame payload.

    Non-:class:`~repro.errors.ReproError` exceptions (a bug in the
    server, an unpicklable value) are reported as internal errors so the
    client always receives a typed, SQLSTATE-carrying exception.
    """
    if isinstance(exc, errors.ReproError):
        return {
            "error": type(exc).__name__,
            "sqlstate": exc.sqlstate,
            "message": exc.message,
            "vendor_code": exc.vendor_code,
        }
    return {
        "error": "OperatorExecutionError",
        "sqlstate": "XX000",
        "message": f"{type(exc).__name__}: {exc}",
        "vendor_code": 0,
    }


def rebuild_error(payload: Optional[Dict[str, Any]]) -> errors.ReproError:
    """Reconstruct a typed exception from an ERROR frame payload.

    The class is looked up by name in :mod:`repro.errors`; unknown names
    (a newer server) degrade to :class:`~repro.errors.SQLException`
    carrying the original SQLSTATE, so error *codes* survive version
    skew even when error *classes* do not.
    """
    payload = payload or {}
    cls = getattr(errors, payload.get("error", ""), None)
    if not (isinstance(cls, type) and issubclass(cls, errors.ReproError)):
        cls = errors.SQLException
    message = payload.get("message", "unknown server error")
    try:
        error = cls(
            message,
            sqlstate=payload.get("sqlstate") or None,
            vendor_code=payload.get("vendor_code", 0),
        )
    except TypeError:
        # Subclasses with bespoke constructors (position-carrying parse
        # errors, ...) still take the message; restore the wire codes on
        # the instance afterwards.
        error = cls(message)
        if payload.get("sqlstate"):
            error.sqlstate = payload["sqlstate"]
        error.vendor_code = payload.get("vendor_code", 0)
    return error
