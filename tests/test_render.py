"""Tests for the dialect-aware SQL renderer (used by customizers)."""

import pytest

from repro import errors
from repro.engine.dialects import ACME, STANDARD, ZENITH
from repro.engine.parser import parse_statement
from repro.engine.render import render_statement


def roundtrip(sql, dialect=STANDARD):
    """parse -> render -> parse; returns the two ASTs for comparison."""
    first = parse_statement(sql)
    rendered = render_statement(first, dialect)
    second = parse_statement(rendered, dialect)
    return first, second, rendered


CORPUS = [
    "SELECT name, year FROM people",
    "SELECT DISTINCT a, b FROM t WHERE a > 1 ORDER BY b DESC",
    "SELECT a FROM t WHERE a BETWEEN 1 AND 10 AND b IN (1, 2, 3)",
    "SELECT a FROM t WHERE name LIKE 'A%' ESCAPE '!'",
    "SELECT a FROM t WHERE a IS NOT NULL",
    "SELECT state, COUNT(*) FROM emps GROUP BY state HAVING COUNT(*) > 1",
    "SELECT a FROM t JOIN u ON t.x = u.x LEFT OUTER JOIN v ON u.y = v.y",
    "SELECT a FROM (SELECT a FROM t) AS sub",
    "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
    "SELECT CAST(a AS DECIMAL(6,2)) FROM t",
    "SELECT upper(name), sales * 2 FROM emps WHERE sales >= ?",
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = t.x)",
    "SELECT a FROM t WHERE a = (SELECT MAX(b) FROM u)",
    "SELECT name, home_addr>>zip FROM emps WHERE home_addr>>zip <> '9'",
    "SELECT addr>>contiguous(a, b) FROM t",
    "INSERT INTO emps VALUES ('A', 'E1', 'CA', 1.5)",
    "INSERT INTO emps (name, id) VALUES (?, ?)",
    "INSERT INTO t SELECT a FROM u",
    "UPDATE emps SET sales = sales * 2 WHERE state = 'CA'",
    "UPDATE emps SET home_addr>>zip = '99123' WHERE name = 'Bob'",
    "DELETE FROM emps WHERE sales IS NULL",
    "CALL correct_states('CAL', 'CA')",
    "CALL best2(?, ?, ?)",
    "COMMIT",
    "ROLLBACK",
    "SELECT a FROM t UNION ALL SELECT b FROM u",
    "SELECT a FROM t INTERSECT SELECT b FROM u",
    "SELECT a FROM t EXCEPT ALL SELECT b FROM u",
    "SELECT 'it''s' FROM t",
    "SELECT -a, NOT (b = 1) FROM t",
    "SELECT NEW addr('s', 'z') FROM t",
    "SELECT COUNT(DISTINCT state) FROM emps",
]


class TestRoundTrip:
    @pytest.mark.parametrize("sql", CORPUS)
    def test_standard_roundtrip_is_stable(self, sql):
        first, second, _rendered = roundtrip(sql)
        assert first == second

    @pytest.mark.parametrize("sql", CORPUS)
    def test_rendered_text_reparses_in_acme(self, sql):
        first = parse_statement(sql)
        rendered = render_statement(first, ACME)
        parse_statement(rendered, ACME)  # must not raise

    @pytest.mark.parametrize("sql", CORPUS)
    def test_rendered_text_reparses_in_zenith(self, sql):
        first = parse_statement(sql)
        rendered = render_statement(first, ZENITH)
        parse_statement(rendered, ZENITH)


class TestDialectSpellings:
    def test_limit_becomes_top_for_acme(self):
        stmt = parse_statement("select a from t limit 5")
        assert "TOP 5" in render_statement(stmt, ACME)
        assert "LIMIT" not in render_statement(stmt, ACME)

    def test_limit_becomes_fetch_first_for_zenith(self):
        stmt = parse_statement("select a from t limit 5")
        rendered = render_statement(stmt, ZENITH)
        assert "FETCH FIRST 5 ROWS ONLY" in rendered

    def test_concat_becomes_plus_for_acme(self):
        stmt = parse_statement("select a || b from t")
        rendered = render_statement(stmt, ACME)
        assert "||" not in rendered
        assert "+" in rendered

    def test_concat_stays_for_zenith(self):
        stmt = parse_statement("select a || b from t")
        assert "||" in render_statement(stmt, ZENITH)

    def test_standard_keeps_limit(self):
        stmt = parse_statement("select a from t limit 5 offset 2")
        rendered = render_statement(stmt, STANDARD)
        assert "LIMIT 5" in rendered
        assert "OFFSET 2" in rendered

    def test_parameters_preserved(self):
        stmt = parse_statement("select a from t where a = ? and b = ?")
        assert render_statement(stmt, ACME).count("?") == 2

    def test_string_literal_escaping(self):
        stmt = parse_statement("select 'it''s' from t")
        assert "'it''s'" in render_statement(stmt, STANDARD)
