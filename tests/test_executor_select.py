"""Integration tests for SELECT execution through the engine."""

import decimal

import pytest

from repro import errors

D = decimal.Decimal


def rows(session, sql, params=()):
    return session.execute(sql, params).rows


class TestProjectionAndFilter:
    def test_projection(self, emps):
        result = emps.execute("select name from emps order by name")
        assert [r[0] for r in result.rows] == [
            "Alice", "Bob", "Carol", "Dan", "Eve", "Frank", "Grace",
            "Hank",
        ]

    def test_star_expansion(self, emps):
        result = emps.execute("select * from emps limit 1")
        assert result.column_names() == ["name", "id", "state", "sales"]

    def test_where_filters(self, emps):
        assert rows(emps, "select name from emps where state = 'CA'") == \
            [["Alice"]]

    def test_char_comparison_ignores_padding(self, emps):
        # state is CHAR(20): stored padded, compared trimmed.
        assert rows(emps, "select name from emps where state = 'MN'") == \
            [["Bob"]]

    def test_parameters(self, emps):
        result = rows(
            emps, "select name from emps where sales > ?", [D("100")]
        )
        assert sorted(r[0] for r in result) == ["Alice", "Dan", "Grace"]

    def test_null_never_matches_comparison(self, emps):
        assert rows(emps, "select name from emps where sales <> 0") != []
        names = [r[0] for r in rows(
            emps, "select name from emps where sales <> 0")]
        assert "Frank" not in names  # NULL sales: unknown, filtered

    def test_is_null(self, emps):
        assert rows(emps, "select name from emps where sales is null") == \
            [["Frank"]]

    def test_arithmetic_in_projection(self, emps):
        result = rows(
            emps,
            "select sales * 2 from emps where name = 'Alice'",
        )
        assert result == [[D("201.00")]]

    def test_between(self, emps):
        names = [r[0] for r in rows(
            emps,
            "select name from emps where sales between 50 and 101 "
            "order by name",
        )]
        assert names == ["Alice", "Bob", "Carol", "Hank"]

    def test_in_list(self, emps):
        names = [r[0] for r in rows(
            emps,
            "select name from emps where state in ('CA', 'MN') "
            "order by name",
        )]
        assert names == ["Alice", "Bob"]

    def test_like(self, emps):
        names = [r[0] for r in rows(
            emps, "select name from emps where name like '%a%'"
        )]
        assert sorted(names) == ["Carol", "Dan", "Frank", "Grace", "Hank"]

    def test_case_expression(self, emps):
        result = rows(
            emps,
            "select name, case when sales >= 100 then 'high' "
            "when sales is null then 'none' else 'low' end "
            "from emps order by name",
        )
        by_name = {r[0]: r[1] for r in result}
        assert by_name["Alice"] == "high"
        assert by_name["Bob"] == "low"
        assert by_name["Frank"] == "none"

    def test_functions(self, emps):
        assert rows(
            emps,
            "select upper(name), length(name) from emps "
            "where name = 'Bob'",
        ) == [["BOB", 3]]

    def test_concat_operator(self, emps):
        assert rows(
            emps,
            "select name || '!' from emps where name = 'Bob'",
        ) == [["Bob!"]]

    def test_select_without_from(self, session):
        assert rows(session, "select 1 + 2") == [[3]]

    def test_unknown_column_fails(self, emps):
        with pytest.raises(errors.UndefinedColumnError):
            emps.execute("select wages from emps")

    def test_unknown_table_fails(self, session):
        with pytest.raises(errors.UndefinedTableError):
            session.execute("select * from nowhere")

    def test_type_mismatch_comparison_fails_at_plan_time(self, emps):
        with pytest.raises(errors.InvalidCastError):
            emps.execute("select name from emps where sales = 'lots'")

    def test_division_by_zero(self, emps):
        with pytest.raises(errors.DivisionByZeroError):
            emps.execute("select sales / 0 from emps")

    def test_integer_division_truncates_toward_zero(self, session):
        assert rows(session, "select 7 / 2")[0][0] == 3
        assert rows(session, "select -7 / 2")[0][0] == -3


class TestOrderingAndLimits:
    def test_order_desc(self, emps):
        result = rows(
            emps,
            "select name from emps where sales is not null "
            "order by sales desc",
        )
        assert result[0] == ["Dan"]
        assert result[-1] == ["Eve"]

    def test_nulls_sort_last(self, emps):
        result = rows(emps, "select name from emps order by sales")
        assert result[-1] == ["Frank"]

    def test_order_by_position(self, emps):
        result = rows(
            emps,
            "select name, sales from emps where sales is not null "
            "order by 2 desc",
        )
        assert result[0][0] == "Dan"

    def test_order_by_alias(self, emps):
        result = rows(
            emps, "select sales * 2 as double_sales from emps "
            "where sales is not null order by double_sales desc limit 1"
        )
        assert result == [[D("400.00")]]

    def test_multi_key_order(self, emps):
        emps.execute(
            "insert into emps values ('Zoe', 'E9', 'CA', 100.50)"
        )
        result = rows(
            emps,
            "select name from emps where sales = 100.50 "
            "order by sales desc, name",
        )
        assert result == [["Alice"], ["Zoe"]]

    def test_limit(self, emps):
        assert len(rows(emps, "select name from emps limit 3")) == 3

    def test_limit_offset(self, emps):
        all_names = rows(emps, "select name from emps order by name")
        page = rows(
            emps, "select name from emps order by name limit 2 offset 2"
        )
        assert page == all_names[2:4]

    def test_limit_zero(self, emps):
        assert rows(emps, "select name from emps limit 0") == []

    def test_negative_limit_rejected(self, emps):
        with pytest.raises(errors.DataError):
            emps.execute("select name from emps limit ?", [-1])

    def test_distinct(self, emps):
        emps.execute("insert into emps values ('Al2', 'E9', 'CA', 1)")
        states = rows(
            emps, "select distinct state from emps order by state"
        )
        assert len(states) == len({r[0] for r in states})

    def test_distinct_with_order(self, emps):
        result = rows(
            emps,
            "select distinct state from emps order by state desc limit 2",
        )
        assert [r[0].strip() for r in result] == ["VT", "TX"]


class TestAggregation:
    def test_count_star(self, emps):
        assert rows(emps, "select count(*) from emps") == [[8]]

    def test_count_column_skips_nulls(self, emps):
        assert rows(emps, "select count(sales) from emps") == [[7]]

    def test_sum_avg_min_max(self, emps):
        result = rows(
            emps,
            "select sum(sales), min(sales), max(sales) from emps",
        )[0]
        assert result[0] == D("656.49")
        assert result[1] == D("10.00")
        assert result[2] == D("200.00")

    def test_avg(self, emps):
        result = rows(emps, "select avg(sales) from emps")[0][0]
        assert abs(result - D("656.49") / 7) < D("0.0001")

    def test_empty_input_aggregates(self, session):
        session.execute("create table empty_t (a integer)")
        assert rows(session, "select count(*), sum(a) from empty_t") == \
            [[0, None]]

    def test_group_by(self, emps):
        result = rows(
            emps,
            "select state, count(*) from emps group by state "
            "order by state",
        )
        by_state = {r[0].strip(): r[1] for r in result}
        assert by_state["CA"] == 1
        assert len(result) == 8

    def test_group_by_with_having(self, emps):
        emps.execute("insert into emps values ('Ann', 'E9', 'CA', 5)")
        result = rows(
            emps,
            "select state, count(*) as n from emps group by state "
            "having count(*) > 1",
        )
        assert [r[0].strip() for r in result] == ["CA"]
        assert result[0][1] == 2

    def test_group_key_null_forms_group(self, emps):
        emps.execute("insert into emps values ('Nil', 'E9', 'CA', null)")
        result = rows(
            emps,
            "select sales, count(*) from emps where sales is null "
            "group by sales",
        )
        assert result == [[None, 2]]

    def test_count_distinct(self, emps):
        emps.execute("insert into emps values ('Dup', 'E9', 'CA', 1)")
        assert rows(
            emps, "select count(distinct state) from emps"
        ) == [[8]]

    def test_ungrouped_column_rejected(self, emps):
        with pytest.raises(errors.SQLSyntaxError):
            emps.execute("select name, count(*) from emps group by state")

    def test_aggregate_in_where_rejected(self, emps):
        with pytest.raises(errors.SQLSyntaxError):
            emps.execute("select name from emps where count(*) > 1")

    def test_order_by_aggregate(self, emps):
        result = rows(
            emps,
            "select state from emps where sales is not null "
            "group by state order by sum(sales) desc limit 1",
        )
        assert result[0][0].strip() == "FL"

    def test_expression_over_aggregates(self, emps):
        result = rows(
            emps,
            "select max(sales) - min(sales) from emps",
        )
        assert result == [[D("190.00")]]


class TestJoins:
    @pytest.fixture
    def regions(self, emps):
        emps.execute(
            "create table regions (state char(20), region integer)"
        )
        for state, region in [
            ("CA", 3), ("MN", 1), ("NV", 3), ("FL", 2), ("VT", 1),
            ("GA", 2), ("AZ", 3),
        ]:
            emps.execute(
                f"insert into regions values ('{state}', {region})"
            )
        return emps

    def test_inner_join(self, regions):
        result = rows(
            regions,
            "select e.name, r.region from emps e "
            "join regions r on e.state = r.state order by e.name",
        )
        assert ["Frank"] not in [[r[0]] for r in result]  # TX unmatched
        by_name = {r[0]: r[1] for r in result}
        assert by_name["Alice"] == 3

    def test_left_join_keeps_unmatched(self, regions):
        result = rows(
            regions,
            "select e.name, r.region from emps e "
            "left join regions r on e.state = r.state "
            "where r.region is null",
        )
        assert [r[0] for r in result] == ["Frank"]

    def test_right_join(self, regions):
        regions.execute("insert into regions values ('HI', 5)")
        result = rows(
            regions,
            "select e.name, r.state from emps e "
            "right join regions r on e.state = r.state "
            "where e.name is null",
        )
        assert [r[1].strip() for r in result] == ["HI"]

    def test_full_join(self, regions):
        regions.execute("insert into regions values ('HI', 5)")
        result = rows(
            regions,
            "select e.name, r.state from emps e "
            "full join regions r on e.state = r.state",
        )
        names = [r[0] for r in result]
        states = [r[1].strip() if r[1] else None for r in result]
        assert None in names  # unmatched region HI
        assert "Frank" in names and None in states  # unmatched emp TX

    def test_cross_join_cardinality(self, regions):
        result = rows(
            regions, "select count(*) from emps cross join regions"
        )
        assert result == [[8 * 7]]

    def test_implicit_cross_join(self, regions):
        result = rows(
            regions,
            "select count(*) from emps e, regions r "
            "where e.state = r.state",
        )
        assert result == [[7]]

    def test_ambiguous_column_rejected(self, regions):
        with pytest.raises(errors.CatalogError):
            regions.execute(
                "select state from emps join regions "
                "on emps.state = regions.state"
            )

    def test_self_join_with_aliases(self, emps):
        result = rows(
            emps,
            "select a.name, b.name from emps a join emps b "
            "on a.sales < b.sales where a.name = 'Eve' and "
            "b.name = 'Dan'",
        )
        assert result == [["Eve", "Dan"]]


class TestSubqueries:
    def test_scalar_subquery(self, emps):
        result = rows(
            emps,
            "select name from emps "
            "where sales = (select max(sales) from emps)",
        )
        assert result == [["Dan"]]

    def test_scalar_subquery_cardinality_error(self, emps):
        with pytest.raises(errors.CardinalityError):
            emps.execute(
                "select name from emps "
                "where sales = (select sales from emps "
                "where sales is not null)"
            )

    def test_in_subquery(self, emps):
        emps.execute("create table vips (vip_name varchar(50))")
        emps.execute("insert into vips values ('Alice'), ('Dan')")
        result = rows(
            emps,
            "select name from emps where name in "
            "(select vip_name from vips) order by name",
        )
        assert result == [["Alice"], ["Dan"]]

    def test_correlated_exists(self, emps):
        emps.execute("create table bonus (emp_name varchar(50))")
        emps.execute("insert into bonus values ('Bob')")
        result = rows(
            emps,
            "select name from emps e where exists "
            "(select 1 from bonus b where b.emp_name = e.name)",
        )
        assert result == [["Bob"]]

    def test_correlated_scalar(self, emps):
        result = rows(
            emps,
            "select name from emps e where sales > "
            "(select avg(sales) from emps x where x.state <> e.state) "
            "order by name",
        )
        assert "Dan" in [r[0] for r in result]

    def test_not_in_with_null_subquery_is_empty(self, emps):
        # NULL in the subquery makes NOT IN unknown for every row.
        result = rows(
            emps,
            "select name from emps where name not in "
            "(select state from emps where sales is null "
            "union all select null)",
        )
        assert result == []


class TestUnion:
    def test_union_removes_duplicates(self, emps):
        result = rows(
            emps,
            "select state from emps union select state from emps",
        )
        assert len(result) == 8

    def test_union_all_keeps_duplicates(self, emps):
        result = rows(
            emps,
            "select state from emps union all select state from emps",
        )
        assert len(result) == 16

    def test_union_column_count_mismatch(self, emps):
        with pytest.raises(errors.SQLSyntaxError):
            emps.execute(
                "select name, state from emps union select name from emps"
            )

    def test_union_order_by(self, emps):
        result = rows(
            emps,
            "select name from emps where state = 'CA' union "
            "select name from emps where state = 'MN' order by 1 desc",
        )
        assert result == [["Bob"], ["Alice"]]


class TestViews:
    def test_view_query(self, emps):
        emps.execute(
            "create view high_rollers as "
            "select name, sales from emps where sales > 90"
        )
        result = rows(
            emps, "select name from high_rollers order by name"
        )
        assert result == [["Alice"], ["Dan"], ["Grace"], ["Hank"]]

    def test_view_with_column_names(self, emps):
        emps.execute(
            "create view v2 (who, amount) as select name, sales from emps"
        )
        assert rows(
            emps, "select who from v2 where amount = 200.00"
        ) == [["Dan"]]

    def test_view_sees_later_inserts(self, emps):
        emps.execute("create view all_emps as select name from emps")
        before = len(rows(emps, "select * from all_emps"))
        emps.execute("insert into emps values ('New', 'E9', 'CA', 1)")
        assert len(rows(emps, "select * from all_emps")) == before + 1

    def test_view_of_view(self, emps):
        emps.execute("create view v1 as select name, sales from emps")
        emps.execute(
            "create view v2 as select name from v1 where sales > 100"
        )
        assert sorted(r[0] for r in rows(emps, "select * from v2")) == \
            ["Alice", "Dan", "Grace"]

    def test_duplicate_view_name_rejected(self, emps):
        emps.execute("create view dup_v as select 1")
        with pytest.raises(errors.DuplicateObjectError):
            emps.execute("create view dup_v as select 2")


class TestIntersectExcept:
    @pytest.fixture
    def two_sets(self, session):
        session.execute("create table a (v integer)")
        session.execute("create table b (v integer)")
        session.execute(
            "insert into a values (1), (2), (2), (3), (3), (3)"
        )
        session.execute("insert into b values (2), (3), (3), (4)")
        return session

    def q(self, session, sql):
        return sorted(r[0] for r in session.execute(sql).rows)

    def test_intersect_distinct(self, two_sets):
        assert self.q(
            two_sets, "select v from a intersect select v from b"
        ) == [2, 3]

    def test_intersect_all_keeps_min_count(self, two_sets):
        assert self.q(
            two_sets, "select v from a intersect all select v from b"
        ) == [2, 3, 3]

    def test_except_distinct(self, two_sets):
        assert self.q(
            two_sets, "select v from a except select v from b"
        ) == [1]

    def test_except_all_keeps_surplus(self, two_sets):
        assert self.q(
            two_sets, "select v from a except all select v from b"
        ) == [1, 2, 3]

    def test_intersect_binds_tighter_than_union(self, two_sets):
        # a UNION (b INTERSECT b) — INTERSECT evaluated first.
        result = self.q(
            two_sets,
            "select v from a union select v from b "
            "intersect select v from b",
        )
        assert result == [1, 2, 3, 4]

    def test_except_with_order_by(self, two_sets):
        result = [
            r[0] for r in two_sets.execute(
                "select v from b except select v from a order by v desc"
            ).rows
        ]
        assert result == [4]

    def test_explain_shows_operator(self, two_sets):
        lines = [
            r[0] for r in two_sets.execute(
                "explain select v from a intersect select v from b"
            ).rows
        ]
        assert lines[0] == "Intersect"

    def test_arity_mismatch(self, two_sets):
        with pytest.raises(errors.SQLSyntaxError):
            two_sets.execute(
                "select v, v from a intersect select v from b"
            )


class TestMultiKeyGrouping:
    @pytest.fixture
    def sales_facts(self, session):
        session.execute(
            "create table facts (region varchar(5), product varchar(5), "
            "amount integer)"
        )
        for region, product, amount in [
            ("east", "ax", 10), ("east", "ax", 5), ("east", "bx", 1),
            ("west", "ax", 7), ("west", "bx", 2), ("west", "bx", 3),
        ]:
            session.execute(
                f"insert into facts values ('{region}', '{product}', "
                f"{amount})"
            )
        return session

    def test_two_group_keys(self, sales_facts):
        result = sales_facts.execute(
            "select region, product, sum(amount) from facts "
            "group by region, product order by region, product"
        ).rows
        assert result == [
            ["east", "ax", 15], ["east", "bx", 1],
            ["west", "ax", 7], ["west", "bx", 5],
        ]

    def test_group_by_expression(self, sales_facts):
        result = sales_facts.execute(
            "select upper(region), count(*) from facts "
            "group by upper(region) order by 1"
        ).rows
        assert result == [["EAST", 3], ["WEST", 3]]

    def test_having_on_second_key(self, sales_facts):
        result = sales_facts.execute(
            "select region, product from facts group by region, product "
            "having sum(amount) > 5 order by region, product"
        ).rows
        assert result == [["east", "ax"], ["west", "ax"]]


class TestScalarSubqueryInProjection:
    def test_uncorrelated(self, emps):
        result = rows(
            emps,
            "select name, (select max(sales) from emps) from emps "
            "where name = 'Bob'",
        )
        assert result == [["Bob", D("200.00")]]

    def test_correlated_in_projection(self, emps):
        result = rows(
            emps,
            "select name, (select count(*) from emps x "
            "where x.sales > e.sales) from emps e "
            "where name in ('Dan', 'Eve') order by name",
        )
        assert result == [["Dan", 0], ["Eve", 6]]


class TestDuplicateEliminationAtScale:
    """Regression tests for the hashed-with-fallback duplicate detector.

    ``_RowSet`` (DISTINCT / set operations) and the GROUP BY key table
    used to degrade to a single linear list as soon as a row held one
    unhashable value, turning 5k rows into ~12.5M comparisons.  Rows now
    bucket by the skeleton of their hashable values, so workloads at
    this scale must finish in interactive time.
    """

    N = 5000

    @pytest.fixture
    def big(self, session):
        session.execute("create table big (grp integer, val integer)")
        table = session.catalog.get_table("big")
        # Bulk-load through the storage layer: 5k INSERT statements are
        # parser-bound and would dominate the measurement.  The rows
        # setter wraps each row as a bootstrap (committed) version.
        table.rows = [[i % 50, i % 10] for i in range(self.N)]
        return session

    def test_distinct_5k_duplicates(self, big):
        import time

        start = time.perf_counter()
        result = rows(big, "select distinct grp, val from big")
        elapsed = time.perf_counter() - start
        assert len(result) == 50 * 10 // 10  # grp % 50 pairs with val % 10
        assert elapsed < 5.0

    def test_group_by_5k_duplicates(self, big):
        import time

        start = time.perf_counter()
        result = rows(
            big, "select grp, count(*) from big group by grp"
        )
        elapsed = time.perf_counter() - start
        assert len(result) == 50
        assert all(count == self.N // 50 for _grp, count in result)
        assert elapsed < 5.0

    def test_unhashable_values_bucket_by_skeleton(self):
        """5k rows with an unhashable value each: near-linear, correct."""
        import time

        from repro.engine.executor import _RowSet

        class Point:  # __eq__ without __hash__: unhashable
            def __init__(self, x):
                self.x = x

            def __eq__(self, other):
                return isinstance(other, Point) and self.x == other.x

            __hash__ = None

        detector = _RowSet()
        start = time.perf_counter()
        added = sum(
            detector.add((i % 1000, Point(i % 5))) for i in range(5000)
        )
        elapsed = time.perf_counter() - start
        # 5 divides 1000, so (i % 1000, i % 5) repeats with period 1000:
        # exactly 1000 distinct rows, the other 4000 are duplicates.
        assert added == 1000
        assert elapsed < 5.0
