"""Secondary indexes: DDL, transactional maintenance, and IndexScan.

Covers the CREATE INDEX / DROP INDEX statements, index upkeep through
INSERT / UPDATE / DELETE and rollback, plan selection (point and range
probes in EXPLAIN), the type-compatibility gate that keeps IndexScan
from swallowing InvalidCastError, ALTER TABLE interactions, hash-join
planning, and persistence round-trips.
"""

from __future__ import annotations

import pytest

from repro import errors, observability
from repro import Database


def _explain(session, sql):
    return [row[0] for row in session.execute("explain " + sql).rows]


def _norm(rows):
    # NULLs sort last so outer-join results compare deterministically.
    return sorted(
        (tuple(row) for row in rows),
        key=lambda row: tuple((value is None, value) for value in row),
    )


@pytest.fixture
def indexed(session):
    session.execute(
        "create table t (id integer, grp integer, name varchar(20))"
    )
    for i in range(50):
        session.execute(
            f"insert into t values ({i}, {i % 5}, 'name{i}')"
        )
    session.execute("create index t_id on t (id)")
    return session


class TestIndexDDL:
    def test_create_and_drop(self, indexed):
        table = indexed.catalog.get_table("t")
        assert [i.name for i in table.indexes] == ["t_id"]
        indexed.execute("drop index t_id")
        assert table.indexes == []
        assert "t_id" not in indexed.catalog.indexes

    def test_duplicate_name_rejected(self, indexed):
        with pytest.raises(errors.DuplicateObjectError):
            indexed.execute("create index t_id on t (grp)")

    def test_unknown_table_rejected(self, session):
        with pytest.raises(errors.UndefinedTableError):
            session.execute("create index nope on missing (x)")

    def test_unknown_column_rejected(self, indexed):
        with pytest.raises(errors.SQLException):
            indexed.execute("create index bad on t (missing)")

    def test_duplicate_column_rejected(self, indexed):
        with pytest.raises(errors.SQLSyntaxError):
            indexed.execute("create index bad on t (id, id)")

    def test_drop_missing_index(self, session):
        with pytest.raises(errors.UndefinedObjectError):
            session.execute("drop index nothing")

    def test_non_owner_cannot_create_or_drop(self, db, indexed):
        other = db.create_session(user="intruder", autocommit=True)
        with pytest.raises(errors.PrivilegeError):
            other.execute("create index theirs on t (grp)")
        with pytest.raises(errors.PrivilegeError):
            other.execute("drop index t_id")

    def test_object_column_rejected(self, address_types):
        session = address_types
        session.execute("create table homes (a addr)")
        with pytest.raises(errors.FeatureNotSupportedError):
            session.execute("create index ha on homes (a)")

    def test_multi_column_index(self, indexed):
        indexed.execute("create index t_grp_id on t (grp, id)")
        index = indexed.catalog.get_index("t_grp_id")
        assert index.column_names == ["grp", "id"]
        assert len(index) == 50


class TestIndexMaintenance:
    def test_insert_visible_through_index(self, indexed):
        indexed.execute("insert into t values (99, 9, 'new')")
        rows = indexed.execute("select name from t where id = 99").rows
        assert rows == [["new"]]

    def test_update_moves_row_between_buckets(self, indexed):
        indexed.execute("update t set id = 1000 where id = 7")
        assert indexed.execute(
            "select * from t where id = 7").rows == []
        assert indexed.execute(
            "select name from t where id = 1000").rows == [["name7"]]

    def test_delete_removes_entries_after_vacuum(self, indexed):
        indexed.execute("delete from t where id = 3")
        assert indexed.execute("select * from t where id = 3").rows == []
        # The dead version stays indexed (older snapshots may need it)
        # until vacuum physically reclaims it.
        assert len(indexed.catalog.get_index("t_id")) == 50
        indexed.database.vacuum()
        assert len(indexed.catalog.get_index("t_id")) == 49
        assert indexed.execute("select * from t where id = 3").rows == []

    def test_rollback_restores_index(self, db):
        session = db.create_session()  # manual transactions
        session.execute("create table u (k integer)")
        session.execute("create index uk on u (k)")
        session.execute("insert into u values (1)")
        session.execute("commit")
        session.execute("insert into u values (2)")
        session.execute("update u set k = 10 where k = 1")
        session.execute("delete from u where k = 2")
        session.execute("rollback")
        index = session.catalog.get_index("uk")
        assert len(index) == 1
        assert session.execute(
            "select k from u where k = 1").rows == [[1]]
        assert session.execute("select * from u where k = 10").rows == []

    def test_statement_level_rollback_on_failure(self, indexed):
        # Second row violates nothing here, so force a mid-statement
        # failure through a unique column instead.
        indexed.execute(
            "create table v (k integer unique)"
        )
        indexed.execute("create index vk on v (k)")
        indexed.execute("insert into v values (1)")
        with pytest.raises(errors.UniqueViolationError):
            indexed.execute("insert into v values (1)")
        assert len(indexed.catalog.get_index("vk")) == 1

    def test_failed_statement_on_fresh_index_same_txn(self, db):
        """Regression: a statement that fails mid-way must undo its
        index entries in an index created *earlier in the same
        transaction* — the undo actions have to consult the table's
        live index list, not the set of indexes that existed when the
        row went in."""
        session = db.create_session()  # manual transactions
        session.execute("create table w (k integer unique, v integer)")
        session.execute("insert into w values (1, 10)")
        session.execute("commit")
        # Same txn: fresh index, then a multi-row INSERT whose last row
        # fails the unique check after earlier rows were indexed.
        session.execute("create index wv on w (v)")
        with pytest.raises(errors.UniqueViolationError):
            session.execute(
                "insert into w values (2, 20), (3, 30), (1, 99)"
            )
        index = session.catalog.get_index("wv")
        index.verify_against_heap()
        assert len(index) == 1
        session.execute("rollback")
        index.verify_against_heap()
        assert session.execute("select * from w").rows == [[1, 10]]

    def test_rollback_unwinds_inserts_indexed_after_the_fact(self, db):
        """Rows inserted before CREATE INDEX in the same transaction
        are picked up by the index build; rolling the transaction back
        must remove them from that index too."""
        session = db.create_session()
        session.execute("create table x (k integer)")
        session.execute("insert into x values (1), (2)")
        session.execute("create index xk on x (k)")
        index = session.catalog.get_index("xk")
        assert len(index) == 2  # uncommitted versions are indexed
        session.execute("rollback")
        index.verify_against_heap()
        assert len(index) == 0
        assert session.execute("select * from x").rows == []


class TestIndexScanPlanning:
    def test_point_lookup_uses_index(self, indexed):
        lines = _explain(indexed, "select name from t where id = 7")
        assert any("IndexScan using t_id on t" in line for line in lines)
        assert not any("Filter" in line for line in lines)
        assert indexed.execute(
            "select name from t where id = 7").rows == [["name7"]]

    def test_range_scan_uses_index(self, indexed):
        lines = _explain(
            indexed, "select id from t where id > 44 and id <= 47"
        )
        assert any("IndexScan" in line for line in lines)
        rows = indexed.execute(
            "select id from t where id > 44 and id <= 47").rows
        assert _norm(rows) == [(45,), (46,), (47,)]

    def test_between_uses_index(self, indexed):
        lines = _explain(
            indexed, "select id from t where id between 10 and 12"
        )
        assert any("IndexScan" in line for line in lines)
        rows = indexed.execute(
            "select id from t where id between 10 and 12").rows
        assert _norm(rows) == [(10,), (11,), (12,)]

    def test_extra_conjunct_stays_in_filter(self, indexed):
        lines = _explain(
            indexed, "select id from t where id = 7 and grp = 2"
        )
        assert any("IndexScan" in line for line in lines)
        assert any("Filter (grp = 2)" in line for line in lines)
        assert indexed.execute(
            "select id from t where id = 7 and grp = 2").rows == [[7]]
        assert indexed.execute(
            "select id from t where id = 7 and grp = 3").rows == []

    def test_multi_column_full_key_probe(self, indexed):
        indexed.execute("create index t_both on t (grp, id)")
        lines = _explain(
            indexed, "select name from t where grp = 2 and id = 7"
        )
        assert any("IndexScan using" in line for line in lines)
        assert indexed.execute(
            "select name from t where grp = 2 and id = 7"
        ).rows == [["name7"]]

    def test_parameter_probe(self, indexed):
        rows = indexed.execute(
            "select name from t where id = ?", (5,)).rows
        assert rows == [["name5"]]
        lines = _explain(indexed, "select name from t where id = ?")
        assert any("IndexScan" in line for line in lines)

    def test_null_probe_returns_nothing(self, indexed):
        indexed.execute("insert into t values (null, 1, 'ghost')")
        assert indexed.execute(
            "select * from t where id = ?", (None,)).rows == []

    def test_flipped_operands(self, indexed):
        lines = _explain(indexed, "select name from t where 7 = id")
        assert any("IndexScan" in line for line in lines)
        assert indexed.execute(
            "select name from t where 7 = id").rows == [["name7"]]

    def test_incompatible_literal_keeps_error(self, indexed):
        # 'x' cannot equal an INTEGER column: the planner must not turn
        # this into an (empty) index probe — the comparison error the
        # seed raised must survive, index or no index.
        with pytest.raises(errors.InvalidCastError):
            indexed.execute("select * from t where id = 'x'")
        with pytest.raises(errors.InvalidCastError):
            indexed.execute("explain select * from t where id = 'x'")

    def test_index_lookups_counted(self, indexed):
        before = observability.snapshot()["counters"].get(
            "index.lookups", 0
        )
        indexed.execute("select name from t where id = 3")
        after = observability.snapshot()["counters"].get(
            "index.lookups", 0
        )
        assert after == before + 1

    def test_results_match_seqscan(self, indexed):
        queries = [
            "select * from t where id = 25",
            "select * from t where id > 40",
            "select * from t where id between 5 and 9",
            "select * from t where id >= 48 or id = 0",
            "select * from t where id < 3 and grp = 1",
        ]
        with_index = [
            _norm(indexed.execute(q).rows) for q in queries
        ]
        indexed.execute("drop index t_id")
        without = [_norm(indexed.execute(q).rows) for q in queries]
        assert with_index == without


class TestAlterTableInteraction:
    def test_add_column_rebuilds_index(self, indexed):
        indexed.execute("alter table t add column extra integer")
        assert indexed.execute(
            "select name from t where id = 7").rows == [["name7"]]

    def test_drop_other_column_rebuilds_positions(self, indexed):
        indexed.execute("alter table t drop column grp")
        # id moved positions? (it was first; drop one after it)
        assert indexed.execute(
            "select name from t where id = 7").rows == [["name7"]]

    def test_drop_indexed_column_drops_index(self, indexed):
        indexed.execute("alter table t drop column id")
        assert "t_id" not in indexed.catalog.indexes
        assert indexed.catalog.get_table("t").indexes == []


class TestHashJoinPlanning:
    def setup_tables(self, session):
        session.execute("create table a (x integer, tag varchar(5))")
        session.execute("create table b (y integer, tag varchar(5))")
        for i in range(20):
            session.execute(
                f"insert into a values ({i % 7}, 'a{i}')"
            )
            session.execute(
                f"insert into b values ({i % 5}, 'b{i}')"
            )

    def test_equi_join_is_hash_join_and_matches_nl(self, session):
        self.setup_tables(session)
        sql = "select a.tag, b.tag from a join b on a.x = b.y"
        lines = _explain(session, sql)
        assert any("HashJoin (INNER)" in line for line in lines)
        hashed = _norm(session.execute(sql).rows)
        session.database.planner_options = (
            session.database.planner_options.__class__(hash_joins=False)
        )
        session.database.plan_cache.clear()
        lines = _explain(session, sql)
        assert any("NestedLoopJoin" in line for line in lines)
        assert _norm(session.execute(sql).rows) == hashed

    @pytest.mark.parametrize("kind", ["left", "right", "full"])
    def test_outer_hash_joins_match_nested_loop(self, session, kind):
        self.setup_tables(session)
        session.execute("insert into a values (100, 'only')")
        session.execute("insert into b values (200, 'lone')")
        session.execute("insert into a values (null, 'anull')")
        session.execute("insert into b values (null, 'bnull')")
        sql = (
            f"select a.tag, b.tag from a {kind} join b on a.x = b.y"
        )
        hashed = _norm(session.execute(sql).rows)
        session.database.planner_options = (
            session.database.planner_options.__class__(hash_joins=False)
        )
        session.database.plan_cache.clear()
        assert _norm(session.execute(sql).rows) == hashed

    def test_implicit_join_where_equality(self, session):
        self.setup_tables(session)
        sql = "select a.tag, b.tag from a, b where a.x = b.y"
        lines = _explain(session, sql)
        assert any("HashJoin (INNER)" in line for line in lines)
        explicit = _norm(session.execute(
            "select a.tag, b.tag from a join b on a.x = b.y").rows)
        assert _norm(session.execute(sql).rows) == explicit

    def test_residual_conjunct_checked(self, session):
        self.setup_tables(session)
        sql = (
            "select a.tag, b.tag from a join b "
            "on a.x = b.y and a.x > 3"
        )
        rows = session.execute(sql).rows
        assert rows
        assert all(
            int(tag_a[1:]) % 7 > 3 for tag_a, _ in rows
        )

    def test_join_predicate_pushdown_reaches_index(self, session):
        self.setup_tables(session)
        session.execute("create index ax on a (x)")
        sql = (
            "select a.tag, b.tag from a join b on a.x = b.y "
            "where a.x = 3"
        )
        lines = _explain(session, sql)
        assert any("IndexScan using ax on a" in line for line in lines)


class TestSubqueryPushdown:
    def test_pushes_through_projection(self, session):
        session.execute("create table big (k integer, v varchar(5))")
        for i in range(30):
            session.execute(f"insert into big values ({i}, 'v{i}')")
        session.execute("create index bk on big (k)")
        sql = (
            "select vv from (select k as kk, v as vv from big) d "
            "where d.kk = 12"
        )
        lines = _explain(session, sql)
        assert any("IndexScan using bk on big" in line for line in lines)
        assert session.execute(sql).rows == [["v12"]]

    def test_aggregating_subquery_not_rewritten(self, session):
        session.execute("create table big (k integer, v integer)")
        for i in range(10):
            session.execute(
                f"insert into big values ({i % 3}, {i})"
            )
        sql = (
            "select s from (select k, sum(v) as s from big group by k) d "
            "where d.s > 10"
        )
        rows = session.execute(sql).rows
        assert rows  # evaluated on aggregated output, not pushed inside
        for (s,) in rows:
            assert s > 10


class TestPersistenceRoundTrip:
    def test_indexes_survive_save_load(self, session, tmp_path):
        from repro.engine.persistence import load_database, save_database

        session.execute("create table p (k integer, v varchar(5))")
        for i in range(10):
            session.execute(f"insert into p values ({i}, 'v{i}')")
        session.execute("create index pk on p (k)")
        path = str(tmp_path / "db.img")
        save_database(session.database, path)

        restored = load_database(path)
        new_session = restored.create_session(autocommit=True)
        lines = _explain(new_session, "select v from p where k = 4")
        assert any("IndexScan using pk on p" in line for line in lines)
        assert new_session.execute(
            "select v from p where k = 4").rows == [["v4"]]


class TestPredicateSummaries:
    def test_pushed_conjunct_described_on_its_operator(self, session):
        session.execute("create table l (x integer)")
        session.execute("create table r (y integer)")
        lines = _explain(
            session,
            "select * from l, r where x = 1 and y = 2",
        )
        text = "\n".join(lines)
        assert "Filter (x = 1)" in text
        assert "Filter (y = 2)" in text
