"""Built-in scalar functions.

The registry maps lower-case SQL function names to Python implementations.
Unless a function is registered in :data:`NULL_TOLERANT`, a NULL argument
makes the result NULL (the SQL convention), so implementations may assume
non-null inputs.
"""

from __future__ import annotations

import datetime
import decimal
import math
from typing import Any, Callable, Dict, Optional

from repro import errors

__all__ = ["BUILTINS", "NULL_TOLERANT", "lookup_builtin"]


def _upper(value: str) -> str:
    return str(value).upper()


def _lower(value: str) -> str:
    return str(value).lower()


def _length(value: str) -> int:
    return len(value)


def _substring(value: str, start: int, length: Optional[int] = None) -> str:
    """SQL SUBSTRING with 1-based start; negative starts clamp per ISO."""
    start_index = int(start) - 1
    if length is None:
        return value[max(start_index, 0):]
    if length < 0:
        raise errors.DataError("negative length in SUBSTRING")
    end_index = start_index + int(length)
    return value[max(start_index, 0): max(end_index, 0)]


def _trim(value: str) -> str:
    return value.strip(" ")


def _ltrim(value: str) -> str:
    return value.lstrip(" ")


def _rtrim(value: str) -> str:
    return value.rstrip(" ")


def _replace(value: str, target: str, replacement: str) -> str:
    return value.replace(target, replacement)


def _position(needle: str, haystack: str) -> int:
    """1-based position of ``needle`` in ``haystack``; 0 when absent."""
    return haystack.find(needle) + 1


def _concat(*parts: Any) -> str:
    return "".join(str(p) for p in parts)


def _abs(value: Any) -> Any:
    return abs(value)


def _mod(left: Any, right: Any) -> Any:
    if right == 0:
        raise errors.DivisionByZeroError("MOD by zero")
    return left % right


def _round(value: Any, places: int = 0) -> Any:
    if isinstance(value, decimal.Decimal):
        quantum = decimal.Decimal(1).scaleb(-int(places))
        return value.quantize(quantum, rounding=decimal.ROUND_HALF_UP)
    return round(float(value), int(places))


def _floor(value: Any) -> int:
    return math.floor(value)


def _ceiling(value: Any) -> int:
    return math.ceil(value)


def _power(base: Any, exponent: Any) -> float:
    return float(base) ** float(exponent)


def _sqrt(value: Any) -> float:
    if value < 0:
        raise errors.DataError("SQRT of negative value")
    return math.sqrt(value)


def _sign(value: Any) -> int:
    if value > 0:
        return 1
    if value < 0:
        return -1
    return 0


def _coalesce(*values: Any) -> Any:
    for value in values:
        if value is not None:
            return value
    return None


def _nullif(left: Any, right: Any) -> Any:
    return None if left == right else left


def _current_date() -> datetime.date:
    return datetime.date.today()


def _current_time() -> datetime.time:
    return datetime.datetime.now().time()


def _current_timestamp() -> datetime.datetime:
    return datetime.datetime.now()


#: name -> implementation.  All names lower case.
BUILTINS: Dict[str, Callable[..., Any]] = {
    "upper": _upper,
    "lower": _lower,
    "length": _length,
    "char_length": _length,
    "character_length": _length,
    "substring": _substring,
    "substr": _substring,
    "trim": _trim,
    "ltrim": _ltrim,
    "rtrim": _rtrim,
    "replace": _replace,
    "position": _position,
    "concat": _concat,
    "abs": _abs,
    "mod": _mod,
    "round": _round,
    "floor": _floor,
    "ceiling": _ceiling,
    "ceil": _ceiling,
    "power": _power,
    "sqrt": _sqrt,
    "sign": _sign,
    "coalesce": _coalesce,
    "nullif": _nullif,
    "current_date": _current_date,
    "current_time": _current_time,
    "current_timestamp": _current_timestamp,
}

#: Built-ins that receive NULL arguments instead of short-circuiting.
NULL_TOLERANT = frozenset(["coalesce", "nullif", "concat"])


def lookup_builtin(name: str) -> Optional[Callable[..., Any]]:
    """Return the built-in implementation for ``name`` or None."""
    return BUILTINS.get(name.lower())
