"""Engine-level LRU plan cache.

Parsing and planning dominate the cost of small queries (the per-row
work of a point lookup is a couple of dict probes, the plan for it is a
few thousand lines of Python), so repeated statements pay for the same
plan over and over.  This cache keys compiled query plans by
``(sql, dialect, user)`` and tags each entry with the catalog version
*and statistics version* it was planned under:

* **sql** — byte-exact statement text (no normalisation; two spellings
  of the same query are two entries);
* **dialect** — dialect name, since it changes how the text parses;
* **user** — privilege checks run at plan time, so a plan is only valid
  for the user it was planned for;
* **catalog version** — :class:`repro.engine.catalog.Catalog` bumps a
  monotonic counter on every DDL/GRANT/REVOKE mutation; an entry whose
  version is stale is evicted on lookup and the statement replans.
* **stats version** — ANALYZE bumps the catalog's separate
  ``stats_version`` counter; a cached plan chosen under old statistics
  may be the wrong plan now (seqscan-vs-index crossover, join order),
  so stale-stats entries are evicted and re-costed the same way.

Only SELECT and set-operation statements are cached (by the session
layer): DML re-binds names per execution, EXPLAIN must plan freshly so
EXPLAIN ANALYZE can instrument the tree in place.

Thread safety: lookups and inserts take a private lock; the *plans*
themselves are only executed under the database's reader-writer lock,
and the session layer re-validates the catalog version after acquiring
it, so a plan can never run against a schema it was not built for.

Metrics: ``plan_cache.hits`` / ``plan_cache.misses`` /
``plan_cache.evictions`` (both capacity and staleness evictions).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Optional, Tuple

from repro.observability import metrics as _metrics

__all__ = ["CachedPlan", "PlanCache"]

_HITS = _metrics.registry.counter("plan_cache.hits")
_MISSES = _metrics.registry.counter("plan_cache.misses")
_EVICTIONS = _metrics.registry.counter("plan_cache.evictions")

#: (sql text, dialect name, user)
CacheKey = Tuple[str, str, str]


class CachedPlan:
    """One cached statement: parsed AST, compiled plan, output shape."""

    __slots__ = (
        "statement", "plan", "shape", "catalog_version", "stats_version"
    )

    def __init__(
        self,
        statement: Any,
        plan: Any,
        shape: Any,
        catalog_version: int,
        stats_version: int = 0,
    ) -> None:
        self.statement = statement
        self.plan = plan
        self.shape = shape
        self.catalog_version = catalog_version
        self.stats_version = stats_version


class PlanCache:
    """LRU cache of :class:`CachedPlan` entries."""

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, CachedPlan]" = OrderedDict()
        self._lock = threading.Lock()

    def get(
        self,
        key: CacheKey,
        catalog_version: int,
        stats_version: int = 0,
    ) -> Optional[CachedPlan]:
        """Return a fresh entry for ``key``, or None (counting a miss).

        An entry planned under an older catalog version is evicted here
        (schema, index set, or privileges changed since it was built),
        as is one planned under older ANALYZE statistics.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                _MISSES.increment()
                return None
            if (
                entry.catalog_version != catalog_version
                or entry.stats_version != stats_version
            ):
                del self._entries[key]
                _EVICTIONS.increment()
                _MISSES.increment()
                return None
            self._entries.move_to_end(key)
            _HITS.increment()
            return entry

    def peek(
        self,
        key: CacheKey,
        catalog_version: int,
        stats_version: int = 0,
    ) -> Optional[CachedPlan]:
        """Like :meth:`get`, but absence is not counted as a miss.

        The session layer probes the cache *before parsing*, when the
        statement may turn out not to be cacheable at all (DML, DDL);
        counting those probes as misses would make the hit rate
        meaningless.  The caller reports the miss through :meth:`miss`
        once it knows the statement was a cacheable query.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if (
                entry.catalog_version != catalog_version
                or entry.stats_version != stats_version
            ):
                del self._entries[key]
                _EVICTIONS.increment()
                return None
            self._entries.move_to_end(key)
            _HITS.increment()
            return entry

    def miss(self) -> None:
        """Record a miss for a cacheable statement (see :meth:`peek`)."""
        _MISSES.increment()

    def put(self, key: CacheKey, entry: CachedPlan) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                _EVICTIONS.increment()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
